//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std synchronisation primitives behind parking_lot's
//! result-free API (`lock()` returns the guard directly). Poisoned locks
//! panic, which matches how the workspace treats worker panics: they are
//! fatal to the experiment run anyway.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, panicking if a previous holder panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .expect("mutex poisoned: a previous holder panicked")
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("mutex poisoned: a previous holder panicked"),
        }
    }
}

/// A reader-writer lock whose acquisitions return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard for shared access.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for exclusive access.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .expect("rwlock poisoned: a previous holder panicked")
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .expect("rwlock poisoned: a previous holder panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_guards_shared_counter() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 800);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
