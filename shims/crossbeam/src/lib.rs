//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::scope` for fork/join parallelism;
//! std has provided scoped threads since 1.63, so this shim adapts
//! crossbeam 0.8's call shape — spawn closures receive the scope, and
//! `scope` returns `Err` when a thread panicked — onto
//! [`std::thread::scope`].

#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Panic payload from a scoped thread (matches `crossbeam`'s error type).
pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// A scope handle: spawn threads that may borrow from the enclosing stack
/// frame. Mirrors `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. As in crossbeam, the closure receives the
    /// scope so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a scope; all threads spawned in it are joined before
/// `scope` returns. Returns `Err` with the panic payload if the closure
/// or any spawned thread panicked (crossbeam 0.8 semantics, so callers'
/// `.expect(..)` / `.unwrap()` chains keep working).
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// `crossbeam::thread` module alias, for fully qualified callers.
pub mod thread {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    #[test]
    fn threads_run_and_join_with_borrows() {
        let mut slots = vec![0u64; 16];
        super::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move |_| *slot = i as u64 * 2);
            }
        })
        .unwrap();
        assert_eq!(slots, (0..16).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let result = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let result = super::scope(|scope| {
            let h = scope.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(result, 42);
    }
}
