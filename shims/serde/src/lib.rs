//! Offline stand-in for `serde`.
//!
//! The workspace annotates its data types with `#[derive(Serialize,
//! Deserialize)]` so that a registry-enabled build can substitute the real
//! serde without touching call sites, but nothing in-tree serialises
//! through serde (trace persistence uses `ycsb::fileio`). This shim keeps
//! those derives compiling offline: the traits are empty markers with
//! blanket implementations, and the derive macros emit nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize, Debug, PartialEq)]
    struct Probe {
        a: u64,
    }

    fn assert_serialize<T: super::Serialize>() {}
    fn assert_deserialize<'de, T: super::Deserialize<'de>>() {}

    #[test]
    fn derives_compile_and_traits_blanket() {
        assert_serialize::<Probe>();
        assert_deserialize::<Probe>();
        assert_eq!(Probe { a: 1 }, Probe { a: 1 });
    }
}
