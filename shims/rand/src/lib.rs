//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand`'s API it actually uses: a seedable
//! `StdRng`, `random`/`random_range`/`random_bool`, and slice shuffling.
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for simulation purposes and fully deterministic per seed, which
//! is all the workload generators and noise models require. The streams
//! differ from upstream `rand`'s ChaCha-based `StdRng`, so regenerated
//! traces are not bit-identical to ones made with the real crate; every
//! consumer in this workspace only relies on per-seed determinism and
//! distribution shape, never on exact draws.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro's all-zero state is degenerate; splitmix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng as DefaultRng;

/// Types samplable uniformly from "the standard distribution" (`[0, 1)`
/// for floats, the full value range for integers).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 top bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let u: f64 = Standard::sample(rng);
                self.start + (u as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The convenience sampling methods (`rand` 0.9+ spelling).
pub trait RngExt: RngCore {
    /// A value from the standard distribution of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value uniform over `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_stay_in_range_and_look_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0usize..5)] = true;
            let inc: u16 = rng.random_range(1..=3);
            assert!((1..=3).contains(&inc));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02, "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
