//! Value-generation strategies: ranges, tuples, `Just`, `prop_map`,
//! unions (`prop_oneof!`), and vectors.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
///
/// Object-safe so `prop_oneof!` can box heterogeneous alternatives;
/// `prop_map` is the one combinator callers use and is provided here.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct Union<V> {
    alternatives: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from a non-empty list of alternatives.
    pub fn new(alternatives: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { alternatives }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.alternatives.len() as u64) as usize;
        self.alternatives[pick].generate(rng)
    }
}

/// Strategy for `Vec<T>` (see [`crate::collection::vec`]).
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(
            self.size.start < self.size.end,
            "collection::vec requires a non-empty size range"
        );
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = if span > u64::MAX as u128 {
                    // Spans wider than 2^64 only arise for 128-bit/full-width
                    // ranges; two draws cover the width.
                    (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span
                } else {
                    rng.below(span as u64) as u128
                };
                (self.start as i128 + offset as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy {:?}", self);
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = if span > u64::MAX as u128 {
                    (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span
                } else {
                    rng.below(span as u64) as u128
                };
                (start as i128 + offset as i128) as $ty
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let v = self.start + rng.next_f64() as $ty * (self.end - self.start);
                // Rounding can land exactly on `end`; nudge back inside.
                if v >= self.end { self.start } else { v }
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy {:?}", self);
                start + rng.next_f64() as $ty * (end - start)
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
    (A/0, B/1, C/2, D/3, E/4, F/5);
}
