//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest's surface this workspace uses —
//! `proptest!` test blocks, range/tuple/`Just`/`prop_oneof!`/`prop_map`
//! strategies, `collection::vec`, `bool::ANY`, and the `prop_assert*`
//! family — as a plain random-search harness. Differences from upstream,
//! deliberate for an offline build:
//!
//! * **no shrinking** — a failing case reports the case number and the
//!   assertion message, not a minimised input;
//! * **deterministic seeding** — each test derives its RNG seed from its
//!   module path and name, so failures reproduce exactly and CI never
//!   flakes;
//! * `ProptestConfig` honours `cases` and ignores the rest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy for `Vec<T>` with a length drawn from `size` and
    /// elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Strategies over booleans.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy producing arbitrary booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Arbitrary booleans (50/50).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a `proptest!` block needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert a condition inside a `proptest!` body; failure aborts the case
/// with a message instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case (it does not count towards `cases`) unless
/// the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Choose uniformly between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let alternatives: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::strategy::Union::new(alternatives)
    }};
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` sampled
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] items — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(1000);
            while accepted < config.cases {
                if attempts >= max_attempts {
                    panic!(
                        "proptest '{}': too many rejected cases ({} accepted of {} wanted \
                         after {} attempts)",
                        stringify!($name),
                        accepted,
                        config.cases,
                        attempts
                    );
                }
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome = (move || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(e) if e.is_rejection() => continue,
                    ::core::result::Result::Err(e) => panic!(
                        "proptest '{}' failed on case {}: {}",
                        stringify!($name),
                        accepted + 1,
                        e
                    ),
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 5u64..10, b in 0.25f64..0.75, c in 1u16..=3) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((0.25..0.75).contains(&b));
            prop_assert!((1..=3).contains(&c));
        }

        #[test]
        fn mapped_and_oneof_strategies_compose(
            even in arb_even(),
            pick in prop_oneof![Just(1u8), Just(2u8), 5u8..7],
        ) {
            prop_assert_eq!(even % 2, 0);
            prop_assert!(pick == 1 || pick == 2 || pick == 5 || pick == 6, "pick {}", pick);
        }

        #[test]
        fn vec_and_tuple_strategies(
            items in crate::collection::vec((0u64..4, crate::bool::ANY), 1..50),
        ) {
            prop_assert!(!items.is_empty() && items.len() < 50);
            for (n, _flag) in &items {
                prop_assert!(*n < 4);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

        #[test]
        fn config_and_assume_work(v in 0u64..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_ne!(v % 2, 1);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x::y");
        let mut b = crate::test_runner::TestRng::deterministic("x::y");
        let mut c = crate::test_runner::TestRng::deterministic("x::z");
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(va, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(va, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
    }
}
