//! Minimal test-runner types: config, deterministic RNG, and the
//! per-case error carried by `prop_assert!` / `prop_assume!`.

use std::fmt;

/// Configuration for a `proptest!` block. Only `cases` is honoured;
/// `_non_exhaustive_compat` exists so callers can use struct-update
/// syntax (`..ProptestConfig::default()`) exactly as with upstream.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
    #[doc(hidden)]
    pub _non_exhaustive_compat: (),
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            _non_exhaustive_compat: (),
        }
    }
}

/// Deterministic RNG used to sample strategy values.
///
/// xoshiro256++ seeded via SplitMix64 from an FNV-1a hash of the test's
/// full path, so every test gets an independent but reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from a test identifier (typically `module_path!() :: name`).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }

    /// Seed directly from an integer (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0, 0, 0, 0] {
            s = [1, 2, 3, 4];
        }
        TestRng { s }
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at property-test sample counts.
        self.next_u64() % bound
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property's precondition (`prop_assume!`) did not hold; the
    /// case is discarded without counting against the budget.
    Reject(String),
    /// A `prop_assert!`-family assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }

    /// Whether this is a rejection (as opposed to a failure).
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}
