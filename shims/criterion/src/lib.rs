//! Offline stand-in for `criterion`.
//!
//! Provides the group/bench/throughput API surface the workspace's
//! benches use, backed by a simple wall-clock loop: warm up briefly,
//! time a handful of samples, report the best ns/iter (and elements/s
//! when a throughput is set). No statistics, plots, or saved baselines.
//! When invoked with `--test` (as `cargo test --benches` does), each
//! benchmark body runs once so benches act as smoke tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark id distinguished only by a parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { name }
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher<'a> {
    test_mode: bool,
    result_ns: &'a mut Option<f64>,
}

impl Bencher<'_> {
    /// Time `routine`, storing the best observed ns/iter.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std_black_box(routine());
            *self.result_ns = Some(f64::NAN);
            return;
        }
        // Calibrate: grow the batch until one batch takes >= 10ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || batch >= 1 << 30 {
                break;
            }
            batch = if elapsed < Duration::from_micros(100) {
                batch.saturating_mul(64)
            } else {
                batch.saturating_mul(2)
            };
        }
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            if ns < best {
                best = ns;
            }
        }
        *self.result_ns = Some(best);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim calibrates its own time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Report throughput alongside timings for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        let mut result_ns = None;
        f(&mut Bencher {
            test_mode: self.criterion.test_mode,
            result_ns: &mut result_ns,
        });
        self.criterion.report(&full, result_ns, self.throughput);
        self
    }

    /// Run one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo test --benches` / `cargo bench -- --test` pass --test;
        // run each body once instead of timing it.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut result_ns = None;
        f(&mut Bencher {
            test_mode: self.test_mode,
            result_ns: &mut result_ns,
        });
        let name = id.name.clone();
        self.report(&name, result_ns, None);
        self
    }

    fn report(&mut self, name: &str, result_ns: Option<f64>, throughput: Option<Throughput>) {
        let Some(ns) = result_ns else {
            println!("bench {name:<50} (no measurement: Bencher::iter not called)");
            return;
        };
        if self.test_mode {
            println!("bench {name:<50} ok (test mode)");
            return;
        }
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => format!("  {:>12.0} elem/s", n as f64 * 1e9 / ns),
            Throughput::Bytes(n) => {
                format!("  {:>12.1} MiB/s", n as f64 * 1e9 / ns / (1 << 20) as f64)
            }
        });
        println!(
            "bench {name:<50} {ns:>12.1} ns/iter{}",
            rate.unwrap_or_default()
        );
    }
}

/// Declare a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_roundtrip_in_test_mode() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("shim");
        let mut runs = 0u32;
        group
            .sample_size(10)
            .throughput(Throughput::Elements(128))
            .bench_function("count", |b| b.iter(|| runs += 1));
        let input = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", input.len()), &input, |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        group.finish();
        assert_eq!(runs, 1, "test mode must run the body exactly once");
    }
}
