//! No-op `Serialize`/`Deserialize` derives for the vendored serde shim.
//!
//! The workspace derives the serde traits on its data types so a future
//! (network-enabled) build can swap the real serde back in, but no code
//! path actually serialises through serde today — persistence goes through
//! `ycsb::fileio`'s plain-text format. The shim traits are blanket
//! implemented, so these derives have nothing to emit.

use proc_macro::TokenStream;

/// Derives nothing: `serde::Serialize` is blanket-implemented in the shim.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives nothing: `serde::Deserialize` is blanket-implemented in the shim.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
