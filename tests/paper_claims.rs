//! The paper's headline claims, asserted as executable tests at reduced
//! scale. EXPERIMENTS.md records the full-scale runs; these tests keep
//! the claims from regressing.

use kvsim::StoreKind;
use mnemo::accuracy::{evaluate, ErrorStats, EvalPoint};
use mnemo::advisor::{Advisor, AdvisorConfig, OrderingKind};
use ycsb::WorkloadSpec;

fn scaled_config(trace: &ycsb::Trace) -> AdvisorConfig {
    let mut config = AdvisorConfig::default();
    config.spec.cache.capacity_bytes = (trace.dataset_bytes() / 85).max(1 << 16);
    config
}

/// §I / Fig. 5a: "if a workload heavily accesses 20% of the keys, then a
/// DRAM:NVM capacity ratio of more than 20:80 will give trivial
/// performance improvement."
#[test]
fn hot_set_bounds_useful_fastmem() {
    let trace = WorkloadSpec::trending().scaled(500, 10_000).generate(1);
    let consultation = Advisor::new(AdvisorConfig {
        ordering: OrderingKind::Hotness,
        ..scaled_config(&trace)
    })
    .consult(StoreKind::Redis, &trace)
    .unwrap();
    let curve = &consultation.curve;
    let at20 = curve.row_at_ratio(0.20).est_throughput_ops_s;
    let at100 = curve.fast_only().est_throughput_ops_s;
    let slow = curve.slow_only().est_throughput_ops_s;
    let captured = (at20 - slow) / (at100 - slow);
    assert!(
        captured > 0.70,
        "hot-ordered 20% of capacity must capture most of the gain: {captured:.3}"
    );
}

/// Abstract: "substantial reduction in their hosting costs, at negligible
/// impact on application performance" — the Fig. 9 sweet spot.
#[test]
fn trending_cost_reduction_with_10pct_slo() {
    let trace = WorkloadSpec::trending().scaled(500, 10_000).generate(1);
    let consultation = Advisor::new(AdvisorConfig {
        ordering: OrderingKind::MnemoT,
        ..scaled_config(&trace)
    })
    .consult(StoreKind::Redis, &trace)
    .unwrap();
    let rec = consultation.recommend(0.10).unwrap();
    assert!(
        rec.cost_reduction < 0.55,
        "cost reduction {:.3}",
        rec.cost_reduction
    );
}

/// §V-A: Memcached "is overall non-sensitive to execution over SlowMem,
/// allowing for maximum cost savings, where it runs solely on SlowMem".
#[test]
fn memcached_hits_the_cost_floor() {
    for spec in WorkloadSpec::table3() {
        let trace = spec.scaled(200, 2_500).generate(2);
        let consultation = Advisor::new(scaled_config(&trace))
            .consult(StoreKind::Memcached, &trace)
            .unwrap();
        let rec = consultation.recommend(0.10).unwrap();
        assert!(
            rec.cost_reduction < 0.25,
            "{}: memcached cost {:.3} should be near the 0.20 floor",
            trace.name,
            rec.cost_reduction
        );
    }
}

/// §V-A: "DynamoDB is the most impacted ... tolerating only small
/// amounts of SlowMem capacity", yet still saves 20-30% on some
/// patterns.
#[test]
fn dynamo_saves_least_but_still_saves() {
    let trace = WorkloadSpec::edit_thumbnail()
        .scaled(300, 4_000)
        .generate(3);
    let consult = |store| {
        Advisor::new(scaled_config(&trace))
            .consult(store, &trace)
            .unwrap()
            .recommend(0.10)
            .unwrap()
    };
    let dynamo = consult(StoreKind::Dynamo);
    let redis = consult(StoreKind::Redis);
    assert!(
        dynamo.cost_reduction > redis.cost_reduction,
        "dynamo saves less than redis"
    );
    assert!(
        dynamo.cost_reduction < 0.85,
        "but still saves: {:.3}",
        dynamo.cost_reduction
    );
}

/// §V-A (Fig. 8a): sub-percent median estimate error; the paper reports
/// 0.07% on its noisier physical testbed.
#[test]
fn median_estimate_error_is_subpercent() {
    let trace = WorkloadSpec::trending().scaled(300, 5_000).generate(4);
    let config = scaled_config(&trace);
    let spec = config.spec.clone();
    let consultation = Advisor::new(config)
        .consult(StoreKind::Redis, &trace)
        .unwrap();
    let points = evaluate(
        StoreKind::Redis,
        &trace,
        &consultation,
        &spec,
        hybridmem::clock::NoiseConfig::default_jitter(42),
        9,
    )
    .unwrap();
    let errors: Vec<f64> = points.iter().map(EvalPoint::error_pct).collect();
    let stats = ErrorStats::from_errors(&errors);
    assert!(stats.median < 1.0, "median |error| {:.3}%", stats.median);
}

/// §III's worked example: "sizing FastMem such that it only holds the
/// hot keys will reduce the system's memory cost to be only 36% of the
/// cost of using only FastMem, in return for 31% throughput improvement
/// from the SlowMem-only case, and only 10% less throughput than the
/// ideal case of FastMem-only allocations."
#[test]
fn section3_trending_worked_example() {
    let trace = WorkloadSpec::trending().scaled(1_000, 15_000).generate(7);
    let consultation = Advisor::new(AdvisorConfig {
        ordering: OrderingKind::MnemoT,
        ..scaled_config(&trace)
    })
    .consult(StoreKind::Redis, &trace)
    .unwrap();
    let rec = consultation.recommend(0.10).unwrap();
    // Cost lands near the paper's 36% (generous band for the simulator).
    assert!(
        (0.25..=0.45).contains(&rec.cost_reduction),
        "cost {:.3} should be near the paper's 0.36",
        rec.cost_reduction
    );
    // Improvement over SlowMem-only near the paper's 31%.
    let slow = consultation.curve.slow_only().est_throughput_ops_s;
    let improvement = rec.est_throughput_ops_s / slow - 1.0;
    assert!(
        (0.20..=0.42).contains(&improvement),
        "improvement vs slow {:.3} should be near the paper's 0.31",
        improvement
    );
}

/// §III: "write heavy workloads, such as edit thumbnail are less
/// impacted by the heterogeneity of the memory subsystem".
#[test]
fn write_heavy_less_impacted() {
    let read_heavy = WorkloadSpec::timeline().scaled(300, 4_000).generate(5);
    let write_heavy = WorkloadSpec::edit_thumbnail()
        .scaled(300, 4_000)
        .generate(5);
    let sensitivity = |t: &ycsb::Trace| {
        Advisor::new(scaled_config(t))
            .consult(StoreKind::Redis, t)
            .unwrap()
            .baselines
            .sensitivity()
    };
    let r = sensitivity(&read_heavy);
    let w = sensitivity(&write_heavy);
    assert!(w < r, "write-heavy {w:.3} must be below read-heavy {r:.3}");
}

/// §III: "it is more important for the large records to be allocated in
/// FastMem, compared to small objects" — MnemoT's weight ordering embeds
/// this: among equally hot keys, more total bytes moved = more benefit,
/// and the estimate credits big records more per access.
#[test]
fn large_records_matter_more() {
    let trace = WorkloadSpec::trending_preview()
        .scaled(400, 6_000)
        .generate(6);
    let mut config = scaled_config(&trace);
    config.model = mnemo::ModelKind::SizeAware;
    let consultation = Advisor::new(config)
        .consult(StoreKind::Redis, &trace)
        .unwrap();
    // Per-request promotion benefit must grow with record size.
    let model = mnemo::PerfModel::fit(
        mnemo::ModelKind::SizeAware,
        &consultation.baselines,
        &trace.sizes,
    );
    let small = model.promotion_benefit(ycsb::Op::Read, 1_024);
    let large = model.promotion_benefit(ycsb::Op::Read, 100 * 1024);
    assert!(large > 2.0 * small, "large {large:.0} vs small {small:.0}");
}
