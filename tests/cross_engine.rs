//! Cross-architecture consistency: the single placement-aware server,
//! the paper's two-instance cluster and the sharded cluster must agree
//! on what they measure, for every engine model.

use hybridmem::DetHashSet;
use kvsim::{Placement, Server, ShardedCluster, StoreKind, TwoInstanceCluster};
use ycsb::WorkloadSpec;

fn trace() -> ycsb::Trace {
    WorkloadSpec::timeline().scaled(200, 3_000).generate(17)
}

#[test]
fn all_architectures_agree_on_throughput() {
    let t = trace();
    let fast_keys: DetHashSet<u64> = (0..60).collect();
    for store in [StoreKind::Redis, StoreKind::Memcached, StoreKind::Dynamo] {
        let single = Server::build(store, &t, Placement::FastSet(fast_keys.clone()))
            .unwrap()
            .run(&t)
            .throughput_ops_s();
        let cluster = TwoInstanceCluster::build(store, &t, fast_keys.clone())
            .unwrap()
            .run(&t)
            .throughput_ops_s();
        let sharded = ShardedCluster::build(store, &t, &Placement::FastSet(fast_keys.clone()), 1)
            .unwrap()
            .run(&t)
            .throughput_ops_s();
        let rel = |a: f64, b: f64| (a - b).abs() / a;
        assert!(
            rel(single, cluster) < 0.05,
            "{store}: single {single} vs cluster {cluster}"
        );
        assert!(
            rel(single, sharded) < 0.05,
            "{store}: single {single} vs sharded {sharded}"
        );
    }
}

#[test]
fn sensitivity_ordering_is_stable_across_workloads() {
    // §V-A: DynamoDB > Redis > Memcached in hybrid-memory sensitivity,
    // regardless of workload.
    for spec in [
        WorkloadSpec::trending(),
        WorkloadSpec::timeline(),
        WorkloadSpec::edit_thumbnail(),
    ] {
        let t = spec.scaled(150, 2_000).generate(3);
        let gap = |store: StoreKind| {
            let f = Server::build(store, &t, Placement::AllFast)
                .unwrap()
                .run(&t);
            let s = Server::build(store, &t, Placement::AllSlow)
                .unwrap()
                .run(&t);
            f.throughput_ops_s() / s.throughput_ops_s()
        };
        let (redis, memcached, dynamo) = (
            gap(StoreKind::Redis),
            gap(StoreKind::Memcached),
            gap(StoreKind::Dynamo),
        );
        assert!(
            dynamo > redis && redis > memcached,
            "{}: dynamo {dynamo:.3} redis {redis:.3} memcached {memcached:.3}",
            t.name
        );
    }
}

#[test]
fn per_store_storage_overheads_differ() {
    let t = trace();
    let bytes = |store: StoreKind| {
        let server = Server::build(store, &t, Placement::AllFast).unwrap();
        server.engine().bytes_in(hybridmem::MemTier::Fast)
    };
    let logical = t.dataset_bytes();
    let redis = bytes(StoreKind::Redis);
    let memcached = bytes(StoreKind::Memcached);
    let dynamo = bytes(StoreKind::Dynamo);
    assert!(redis > logical, "redis adds headers");
    assert!(memcached > logical, "memcached slab-rounds");
    assert!(
        dynamo as f64 > logical as f64 * 1.4,
        "dynamo inflates object graphs"
    );
    assert!(dynamo > redis, "dynamo heaviest");
}

#[test]
fn migration_is_equivalent_to_fresh_placement_for_all_stores() {
    let t = trace();
    let placement = Placement::FastSet((0..100).collect());
    for store in [StoreKind::Redis, StoreKind::Memcached, StoreKind::Dynamo] {
        let fresh = Server::build(store, &t, placement.clone()).unwrap().run(&t);
        let mut migrated = Server::build(store, &t, Placement::AllSlow).unwrap();
        migrated.apply_placement(&t, &placement).unwrap();
        let rep = migrated.run(&t);
        let rel =
            (fresh.throughput_ops_s() - rep.throughput_ops_s()).abs() / fresh.throughput_ops_s();
        assert!(rel < 1e-6, "{store}: fresh vs migrated drift {rel}");
    }
}

#[test]
fn repeated_runs_are_identical_without_noise() {
    let t = trace();
    for store in [StoreKind::Redis, StoreKind::Memcached, StoreKind::Dynamo] {
        let mut server = Server::build(store, &t, Placement::AllSlow).unwrap();
        let a = server.run(&t).runtime_ns;
        let b = server.run(&t).runtime_ns;
        assert_eq!(a, b, "{store}: re-running must be bit-identical");
    }
}

#[test]
fn storage_engaged_store_is_least_placement_sensitive() {
    // The RocksLike negative control: most of its traffic is SSD-bound,
    // so its Fast-vs-Slow gap sits below every in-memory store's.
    let t = trace();
    let gap = |store: StoreKind| {
        let f = Server::build(store, &t, Placement::AllFast)
            .unwrap()
            .run(&t);
        let s = Server::build(store, &t, Placement::AllSlow)
            .unwrap()
            .run(&t);
        f.throughput_ops_s() / s.throughput_ops_s()
    };
    assert!(gap(StoreKind::Rocks) < gap(StoreKind::Redis));
    assert!(gap(StoreKind::Rocks) < gap(StoreKind::Dynamo));
}

#[test]
fn capacity_pressure_surfaces_as_engine_error() {
    // A spec too small for the dataset must fail loading, not corrupt
    // state.
    let t = trace();
    let mut spec = hybridmem::HybridSpec::paper_testbed();
    spec.fast_capacity = 1 << 20; // 1 MiB, dataset is ~20 MiB
    let err = Server::build_with(
        StoreKind::Redis,
        spec,
        hybridmem::clock::NoiseConfig::disabled(),
        &t,
        Placement::AllFast,
    )
    .err()
    .expect("overcommitted load must fail");
    assert!(matches!(err, kvsim::EngineError::Memory(_)));
}
