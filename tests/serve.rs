//! Serving-layer integration: transcript determinism across worker
//! counts, multi-tenant isolation, cold-start degradation, crash
//! recovery, crash-safe state round-trips, and journaled kill/restart
//! convergence under storage faults.

use mnemo_serve::chaos::{ChaosConfig, KillKind};
use mnemo_serve::engine::{ServeConfig, ServeEngine};
use mnemo_serve::proto::EventV1;
use mnemo_serve::{journal, run_replay, state};
use mnemo_stream::StreamConfig;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/serve/events.jsonl"
);
const CRASH_PLAN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/serve/crash.toml"
);
const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/serve/replay.jsonl"
);
const GOLDEN_CRASH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/serve/replay-crash.jsonl"
);

/// The exact configuration the CI smoke job runs the fixture with:
/// `--epoch 600 --drift-epoch 300 --budget-kib 16`.
fn fixture_config() -> ServeConfig {
    let mut stream = StreamConfig::with_budget_bytes(16 * 1024);
    stream.drift.epoch_len = 300;
    ServeConfig {
        stream,
        tick_events: 600,
        ..ServeConfig::default()
    }
}

fn fixture_input() -> String {
    std::fs::read_to_string(FIXTURE).expect("fixture present")
}

fn event(tenant: &str, key: u64, bytes: u64) -> EventV1 {
    EventV1 {
        tenant: tenant.to_string(),
        key,
        op: ycsb::Op::Read,
        bytes,
    }
}

#[test]
fn replay_transcript_is_jobs_invariant_and_matches_the_golden() {
    let input = fixture_input();
    mnemo_par::set_jobs(1);
    let jobs1 = run_replay(&input, fixture_config())
        .expect("replay")
        .transcript;
    mnemo_par::set_jobs(4);
    let jobs4 = run_replay(&input, fixture_config())
        .expect("replay")
        .transcript;
    mnemo_par::set_jobs(0);
    assert_eq!(
        jobs1, jobs4,
        "transcripts must be byte-identical for any --jobs N"
    );

    let golden = std::fs::read_to_string(GOLDEN).expect("golden transcript present");
    assert_eq!(
        jobs1, golden,
        "replay transcript drifted from tests/golden/serve/replay.jsonl \
         (regenerate it deliberately if the change is intended)"
    );
}

#[test]
fn a_tenants_flood_does_not_change_anothers_advice() {
    // beta alone, exactly as in the interleaved run below.
    let beta_line = |i: u64| {
        format!(
            "{{\"v\":1,\"tenant\":\"beta\",\"key\":{},\"op\":\"read\",\"bytes\":96}}\n",
            if i % 10 < 8 { i % 6 } else { 500 + i * 7 % 300 }
        )
    };
    let mut alone = String::new();
    for i in 0..1_200 {
        alone.push_str(&beta_line(i));
    }
    // Same beta stream, with alpha flooding three events for each of
    // beta's. Flood traffic is interleaved, so beta is never idle for a
    // whole scheduler epoch — its drift epochs land on the same events.
    let mut flooded = String::new();
    for i in 0..1_200 {
        for f in 0..3 {
            flooded.push_str(&format!(
                "{{\"v\":1,\"tenant\":\"alpha\",\"key\":{},\"op\":\"update\",\"bytes\":4096}}\n",
                (i * 3 + f) % 997
            ));
        }
        flooded.push_str(&beta_line(i));
    }
    let beta_rows = |transcript: &str| {
        transcript
            .lines()
            .filter(|l| l.contains("\"row\":\"advise\"") && l.contains("\"tenant\":\"beta\""))
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    let alone_rows = beta_rows(&run_replay(&alone, fixture_config()).expect("ok").transcript);
    let flooded_rows = beta_rows(
        &run_replay(&flooded, fixture_config())
            .expect("ok")
            .transcript,
    );
    assert!(!alone_rows.is_empty(), "beta must advise at least once");
    assert_eq!(
        alone_rows, flooded_rows,
        "alpha's flood must not perturb beta's advice"
    );
}

#[test]
fn cold_tenant_gets_degraded_advice_not_silence() {
    let mut engine = ServeEngine::new(fixture_config()).expect("engine");
    let row = engine.advise_now("brand-new");
    assert!(row.contains("\"row\":\"advise\""), "{row}");
    assert!(row.contains("\"degraded\":\"empty_curve\""), "{row}");
}

#[test]
fn crash_mid_replay_degrades_and_recovers_matching_the_golden() {
    let plan = mnemo_faults::FaultPlan::load(std::path::Path::new(CRASH_PLAN)).expect("plan");
    let config = ServeConfig {
        faults: Some(plan),
        ..fixture_config()
    };
    let transcript = run_replay(&fixture_input(), config)
        .expect("replay")
        .transcript;
    assert!(
        transcript.contains("\"row\":\"crash\",\"tenant\":\"beta\""),
        "the outage must be reported"
    );
    let beta_advises: Vec<&str> = transcript
        .lines()
        .filter(|l| l.contains("\"row\":\"advise\"") && l.contains("\"tenant\":\"beta\""))
        .collect();
    assert!(
        beta_advises
            .iter()
            .any(|l| l.contains("\"degraded\":\"empty_curve\"")),
        "the crashed tenant answers degraded, never absent: {beta_advises:?}"
    );
    assert!(
        beta_advises
            .iter()
            .any(|l| l.contains("\"trigger\":\"initial\"") && l.contains("\"degraded\":null")),
        "after rebuilding, advice must recover: {beta_advises:?}"
    );
    let golden = std::fs::read_to_string(GOLDEN_CRASH).expect("crash golden present");
    assert_eq!(transcript, golden, "crash replay drifted from its golden");
}

#[test]
fn state_dump_reload_continues_byte_identically() {
    let config = || ServeConfig {
        replan_every: 1_000_000, // consultations are not serialised;
        // keep re-planning out of the comparison window
        ..fixture_config()
    };
    let feed = |engine: &mut ServeEngine, range: std::ops::Range<u64>| {
        let mut rows = Vec::new();
        for i in range {
            for tenant in ["a", "b"] {
                let key = if i % 10 < 7 { i % 9 } else { 200 + i % 333 };
                rows.extend(
                    engine
                        .ingest(event(tenant, key, 64 + i % 128))
                        .expect("ingest"),
                );
            }
        }
        rows
    };

    // First half on the original engine, dumped at a tick boundary
    // (600 offered events per tenant pair = an exact multiple of
    // tick_events, so the bounded queues are empty in the dump).
    let mut original = ServeEngine::new(config()).expect("engine");
    feed(&mut original, 0..600);
    let dir = std::env::temp_dir().join(format!("mnemo-serve-state-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let dump_path = dir.join("serve-state.json");
    state::write_atomic(&dump_path, &state::dump(&original)).expect("dump");

    // A fresh engine warm-restarts from the dump; both continue.
    let mut restored = ServeEngine::new(config()).expect("engine");
    let loaded = state::reload(&mut restored, &dump_path).expect("reload");
    assert_eq!(loaded, 2, "both tenants restored");
    let after_original = feed(&mut original, 600..1_200);
    let after_restored = feed(&mut restored, 600..1_200);
    assert_eq!(
        after_original, after_restored,
        "a reloaded engine must continue exactly where the original would"
    );
    assert_eq!(
        state::dump(&original),
        state::dump(&restored),
        "final states must be byte-identical"
    );
    std::fs::remove_dir_all(&dir).ok();
}

const STORAGE_PLAN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/serve/storage.toml"
);

fn chaos_workdir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mnemo-it-chaos-{tag}-{}", std::process::id()))
}

#[test]
fn chaos_kill_restart_transcripts_are_byte_identical_for_several_seeds() {
    // The full harness on the CI fixture: for each seed, kill the
    // durable session at several seeded indices (plus the anchored
    // mid-dump kill), restart from dump + journal tail, and require the
    // final transcript and state dump to match the uninterrupted run
    // byte for byte.
    for seed in [3u64, 7, 23] {
        let chaos = ChaosConfig {
            seed,
            kills: 4,
            ..ChaosConfig::default()
        };
        let dir = chaos_workdir(&format!("seed{seed}"));
        let report =
            mnemo_serve::chaos::run_chaos(&fixture_input(), fixture_config(), &dir, &chaos)
                .expect("chaos harness");
        assert!(
            report.transcript_identical,
            "seed {seed}: recovered transcript diverged"
        );
        assert!(
            report.state_identical,
            "seed {seed}: recovered state dump diverged"
        );
        assert!(report.converged(), "seed {seed}: {}", report.render());
        assert!(
            report.kills.iter().any(|k| k.kind == KillKind::MidDump),
            "seed {seed}: the mid-dump kill must be anchored"
        );
        assert!(
            report
                .kills
                .iter()
                .map(|k| u64::from(k.replayed > 0))
                .sum::<u64>()
                > 0,
            "seed {seed}: at least one restart must replay journal records"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn chaos_under_the_storage_fault_fixture_converges_with_quarantines() {
    // Same harness, with the checked-in storage-fault plan: torn
    // writes and bit flips strike at every kill, an fsync_fail window
    // holds the durable watermark mid-run, and a dump_corrupt window
    // damages the state file. Recovery must still converge exactly,
    // and the damage must actually register (truncated or quarantined
    // records/segments counted, quarantine files accounted for).
    let plan = mnemo_faults::FaultPlan::load(std::path::Path::new(STORAGE_PLAN)).expect("plan");
    assert!(plan.events.iter().all(mnemo_faults::FaultEvent::is_storage));
    let config = ServeConfig {
        faults: Some(plan),
        ..fixture_config()
    };
    let chaos = ChaosConfig::default(); // 8 kills
    let dir = chaos_workdir("storage");
    let report = mnemo_serve::chaos::run_chaos(&fixture_input(), config, &dir, &chaos)
        .expect("chaos harness");
    assert!(report.kills.len() >= 8, "{} kills", report.kills.len());
    assert!(report.converged(), "{}", report.render());
    let truncated: u64 = report.kills.iter().map(|k| k.truncated).sum();
    assert!(
        truncated + report.quarantined_total > 0,
        "the fault plan must actually tear or corrupt something: {}",
        report.render()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_mid_segment_quarantines_and_recovery_continues_degraded() {
    // Direct corruption injection against the journal's public API: a
    // bit flip in the *middle* of a multi-segment journal quarantines
    // that segment (and everything unreachable past it), never panics,
    // and reports line-numbered corruption errors.
    let dir = chaos_workdir("inject").join("journal");
    let config = journal::JournalConfig {
        segment_bytes: 256,
        sync_every: 1,
    };
    let mut writer = journal::JournalWriter::open(&dir, config, 1, None).expect("open");
    for i in 0..40u64 {
        writer
            .append(u128::from(i) * 1_000, &format!("{{\"v\":1,\"n\":{i}}}"))
            .expect("append");
    }
    drop(writer);
    let mut segments: Vec<_> = std::fs::read_dir(&dir)
        .expect("dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    segments.sort();
    assert!(segments.len() >= 3, "need a multi-segment journal");
    let victim = &segments[segments.len() / 2];
    let mut bytes = std::fs::read(victim).expect("segment");
    let at = bytes.len() / 2;
    bytes[at] ^= 0x40;
    std::fs::write(victim, &bytes).expect("rewrite");

    let recovery = journal::recover(&dir, 0).expect("recovery is total");
    assert!(
        recovery.quarantined > 0,
        "the flipped segment must quarantine"
    );
    assert!(
        !recovery.frames.is_empty(),
        "records before the corruption still replay"
    );
    assert!(
        recovery
            .reports
            .iter()
            .any(|e| { matches!(e, mnemo_serve::ServeError::Corrupt { .. }) }),
        "quarantines carry line-numbered corruption reports: {:?}",
        recovery.reports
    );
    // The journal directory stays consistent: every quarantined segment
    // is renamed, none silently deleted.
    let quarantine_files = std::fs::read_dir(&dir)
        .expect("dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().to_string_lossy().contains(".quarantined"))
        .count() as u64;
    assert_eq!(quarantine_files, recovery.quarantined);
    std::fs::remove_dir_all(dir.parent().expect("parent")).ok();
}
