//! Serving-layer integration: transcript determinism across worker
//! counts, multi-tenant isolation, cold-start degradation, crash
//! recovery, and crash-safe state round-trips.

use mnemo_serve::engine::{ServeConfig, ServeEngine};
use mnemo_serve::proto::EventV1;
use mnemo_serve::{run_replay, state};
use mnemo_stream::StreamConfig;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/serve/events.jsonl"
);
const CRASH_PLAN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/serve/crash.toml"
);
const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/serve/replay.jsonl"
);
const GOLDEN_CRASH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/serve/replay-crash.jsonl"
);

/// The exact configuration the CI smoke job runs the fixture with:
/// `--epoch 600 --drift-epoch 300 --budget-kib 16`.
fn fixture_config() -> ServeConfig {
    let mut stream = StreamConfig::with_budget_bytes(16 * 1024);
    stream.drift.epoch_len = 300;
    ServeConfig {
        stream,
        tick_events: 600,
        ..ServeConfig::default()
    }
}

fn fixture_input() -> String {
    std::fs::read_to_string(FIXTURE).expect("fixture present")
}

fn event(tenant: &str, key: u64, bytes: u64) -> EventV1 {
    EventV1 {
        tenant: tenant.to_string(),
        key,
        op: ycsb::Op::Read,
        bytes,
    }
}

#[test]
fn replay_transcript_is_jobs_invariant_and_matches_the_golden() {
    let input = fixture_input();
    mnemo_par::set_jobs(1);
    let jobs1 = run_replay(&input, fixture_config())
        .expect("replay")
        .transcript;
    mnemo_par::set_jobs(4);
    let jobs4 = run_replay(&input, fixture_config())
        .expect("replay")
        .transcript;
    mnemo_par::set_jobs(0);
    assert_eq!(
        jobs1, jobs4,
        "transcripts must be byte-identical for any --jobs N"
    );

    let golden = std::fs::read_to_string(GOLDEN).expect("golden transcript present");
    assert_eq!(
        jobs1, golden,
        "replay transcript drifted from tests/golden/serve/replay.jsonl \
         (regenerate it deliberately if the change is intended)"
    );
}

#[test]
fn a_tenants_flood_does_not_change_anothers_advice() {
    // beta alone, exactly as in the interleaved run below.
    let beta_line = |i: u64| {
        format!(
            "{{\"v\":1,\"tenant\":\"beta\",\"key\":{},\"op\":\"read\",\"bytes\":96}}\n",
            if i % 10 < 8 { i % 6 } else { 500 + i * 7 % 300 }
        )
    };
    let mut alone = String::new();
    for i in 0..1_200 {
        alone.push_str(&beta_line(i));
    }
    // Same beta stream, with alpha flooding three events for each of
    // beta's. Flood traffic is interleaved, so beta is never idle for a
    // whole scheduler epoch — its drift epochs land on the same events.
    let mut flooded = String::new();
    for i in 0..1_200 {
        for f in 0..3 {
            flooded.push_str(&format!(
                "{{\"v\":1,\"tenant\":\"alpha\",\"key\":{},\"op\":\"update\",\"bytes\":4096}}\n",
                (i * 3 + f) % 997
            ));
        }
        flooded.push_str(&beta_line(i));
    }
    let beta_rows = |transcript: &str| {
        transcript
            .lines()
            .filter(|l| l.contains("\"row\":\"advise\"") && l.contains("\"tenant\":\"beta\""))
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    let alone_rows = beta_rows(&run_replay(&alone, fixture_config()).expect("ok").transcript);
    let flooded_rows = beta_rows(
        &run_replay(&flooded, fixture_config())
            .expect("ok")
            .transcript,
    );
    assert!(!alone_rows.is_empty(), "beta must advise at least once");
    assert_eq!(
        alone_rows, flooded_rows,
        "alpha's flood must not perturb beta's advice"
    );
}

#[test]
fn cold_tenant_gets_degraded_advice_not_silence() {
    let mut engine = ServeEngine::new(fixture_config()).expect("engine");
    let row = engine.advise_now("brand-new");
    assert!(row.contains("\"row\":\"advise\""), "{row}");
    assert!(row.contains("\"degraded\":\"empty_curve\""), "{row}");
}

#[test]
fn crash_mid_replay_degrades_and_recovers_matching_the_golden() {
    let plan = mnemo_faults::FaultPlan::load(std::path::Path::new(CRASH_PLAN)).expect("plan");
    let config = ServeConfig {
        faults: Some(plan),
        ..fixture_config()
    };
    let transcript = run_replay(&fixture_input(), config)
        .expect("replay")
        .transcript;
    assert!(
        transcript.contains("\"row\":\"crash\",\"tenant\":\"beta\""),
        "the outage must be reported"
    );
    let beta_advises: Vec<&str> = transcript
        .lines()
        .filter(|l| l.contains("\"row\":\"advise\"") && l.contains("\"tenant\":\"beta\""))
        .collect();
    assert!(
        beta_advises
            .iter()
            .any(|l| l.contains("\"degraded\":\"empty_curve\"")),
        "the crashed tenant answers degraded, never absent: {beta_advises:?}"
    );
    assert!(
        beta_advises
            .iter()
            .any(|l| l.contains("\"trigger\":\"initial\"") && l.contains("\"degraded\":null")),
        "after rebuilding, advice must recover: {beta_advises:?}"
    );
    let golden = std::fs::read_to_string(GOLDEN_CRASH).expect("crash golden present");
    assert_eq!(transcript, golden, "crash replay drifted from its golden");
}

#[test]
fn state_dump_reload_continues_byte_identically() {
    let config = || ServeConfig {
        replan_every: 1_000_000, // consultations are not serialised;
        // keep re-planning out of the comparison window
        ..fixture_config()
    };
    let feed = |engine: &mut ServeEngine, range: std::ops::Range<u64>| {
        let mut rows = Vec::new();
        for i in range {
            for tenant in ["a", "b"] {
                let key = if i % 10 < 7 { i % 9 } else { 200 + i % 333 };
                rows.extend(
                    engine
                        .ingest(event(tenant, key, 64 + i % 128))
                        .expect("ingest"),
                );
            }
        }
        rows
    };

    // First half on the original engine, dumped at a tick boundary
    // (600 offered events per tenant pair = an exact multiple of
    // tick_events, so the bounded queues are empty in the dump).
    let mut original = ServeEngine::new(config()).expect("engine");
    feed(&mut original, 0..600);
    let dir = std::env::temp_dir().join(format!("mnemo-serve-state-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let dump_path = dir.join("serve-state.json");
    state::write_atomic(&dump_path, &state::dump(&original)).expect("dump");

    // A fresh engine warm-restarts from the dump; both continue.
    let mut restored = ServeEngine::new(config()).expect("engine");
    let loaded = state::reload(&mut restored, &dump_path).expect("reload");
    assert_eq!(loaded, 2, "both tenants restored");
    let after_original = feed(&mut original, 600..1_200);
    let after_restored = feed(&mut restored, 600..1_200);
    assert_eq!(
        after_original, after_restored,
        "a reloaded engine must continue exactly where the original would"
    );
    assert_eq!(
        state::dump(&original),
        state::dump(&restored),
        "final states must be byte-identical"
    );
    std::fs::remove_dir_all(&dir).ok();
}
