//! The telemetry subsystem's cross-crate guarantee: **sim-domain
//! telemetry is byte-identical for every `--jobs` value**. A sharded
//! run records per-shard, merges order-independently, and exports; the
//! exported bytes must not depend on how many workers carried the
//! shards. Wall-clock artifacts (everything under a `timing-` filename
//! prefix) are explicitly outside the guarantee, mirroring the CI
//! exclusion list.
//!
//! `mnemo_par::set_jobs` is process-global, so tests that vary it
//! serialise on one lock, like `tests/determinism.rs`.

use kvsim::{Placement, ShardedCluster, StoreKind};
use mnemo_telemetry::{export, DomainFilter, Snapshot, TimeDomain};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Mutex;
use ycsb::dist::DistKind;
use ycsb::{OpMix, SizeClass, SizeModel, Trace, WorkloadSpec};

/// Serialises tests that touch the process-global worker-count override.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

fn with_jobs<T>(jobs: usize, f: impl FnOnce() -> T) -> T {
    mnemo_par::set_jobs(jobs);
    let out = f();
    mnemo_par::set_jobs(0);
    out
}

fn trace() -> Trace {
    WorkloadSpec {
        name: "telemetry".into(),
        distribution: DistKind::Zipfian { theta: 0.9 },
        ops: OpMix::read_update(0.9),
        sizes: SizeModel::Single(SizeClass::TextPost),
        keys: 96,
        requests: 4_000,
        use_case: String::new(),
    }
    .generate(23)
}

fn telemetered_run(jobs: usize, epoch_len: u64) -> Vec<Snapshot> {
    with_jobs(jobs, || {
        ShardedCluster::build(StoreKind::Redis, &trace(), &Placement::AllFast, 6)
            .unwrap()
            .run_telemetered(&trace(), epoch_len)
            .1
    })
}

/// Every non-`timing-` file under `dir`, as relative path -> bytes.
fn sim_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().to_string();
            if path.is_dir() {
                walk(root, &path, out);
            } else if !name.starts_with("timing-") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .to_string();
                out.insert(rel, std::fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

#[test]
fn sim_domain_export_is_byte_identical_across_jobs() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let sequential = telemetered_run(1, 1_000);
    for jobs in [2, 4] {
        let parallel = telemetered_run(jobs, 1_000);
        assert_eq!(sequential.len(), parallel.len(), "jobs={jobs}");
        // The acceptance criterion, stated on the exported bytes: the
        // JSONL and long-CSV renderings the CI golden gate diffs.
        assert_eq!(
            export::to_jsonl(&sequential, DomainFilter::SimOnly),
            export::to_jsonl(&parallel, DomainFilter::SimOnly),
            "jobs={jobs}"
        );
        assert_eq!(
            export::to_csv(&sequential, DomainFilter::SimOnly),
            export::to_csv(&parallel, DomainFilter::SimOnly),
            "jobs={jobs}"
        );
    }
}

#[test]
fn full_export_directories_differ_only_in_timing_files() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let base = std::env::temp_dir().join(format!("mnemo-tel-int-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let dir_1 = base.join("jobs1");
    let dir_4 = base.join("jobs4");
    export::write_dir(&dir_1, &telemetered_run(1, 1_000)).unwrap();
    export::write_dir(&dir_4, &telemetered_run(4, 1_000)).unwrap();
    let files_1 = sim_files(&dir_1);
    let files_4 = sim_files(&dir_4);
    assert!(
        files_1.contains_key("schema.csv") && files_1.contains_key("telemetry.jsonl"),
        "export layout: {:?}",
        files_1.keys().collect::<Vec<_>>()
    );
    assert_eq!(
        files_1.keys().collect::<Vec<_>>(),
        files_4.keys().collect::<Vec<_>>(),
        "same sim-domain file set"
    );
    for (name, bytes) in &files_1 {
        assert_eq!(bytes, &files_4[name], "file '{name}' differs between jobs");
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn sharded_epochs_cover_every_request_exactly_once() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let t = trace();
    let snaps = telemetered_run(3, 500);
    let total: u64 = snaps.iter().map(|s| s.counter("kv.requests")).sum();
    assert_eq!(total, t.len() as u64);
    let hits: u64 = snaps
        .iter()
        .map(|s| s.counter("kv.tier.fast_hits") + s.counter("kv.tier.slow_hits"))
        .sum();
    assert_eq!(hits, t.len() as u64);
    // Epochs are numbered consecutively from zero.
    for (i, s) in snaps.iter().enumerate() {
        assert_eq!(s.epoch(), i as u64);
    }
    // The service-time histogram is sim-domain, so it survives the
    // export filter; per-request latency is in the columnar schema.
    let schema_covered = snaps
        .iter()
        .any(|s| s.domain_of("kv.request.service_ns") == Some(TimeDomain::Sim));
    assert!(schema_covered);
}
