//! Concurrency behaviour: sharded execution, parallel consultations and
//! determinism under threading.

use kvsim::{Placement, ShardedCluster, StoreKind};
use mnemo::advisor::{Advisor, AdvisorConfig};
use ycsb::WorkloadSpec;

#[test]
fn sharded_cluster_scales_and_conserves_requests() {
    let t = WorkloadSpec::trending().scaled(256, 8_000).generate(2);
    let mut runtimes = Vec::new();
    for shards in [1usize, 2, 4] {
        let cluster =
            ShardedCluster::build(StoreKind::Redis, &t, &Placement::AllFast, shards).unwrap();
        let report = cluster.run(&t);
        assert_eq!(
            report.requests,
            t.len(),
            "{shards} shards must serve every request"
        );
        assert_eq!(report.reads + report.writes, t.len() as u64);
        runtimes.push(report.runtime_ns);
    }
    assert!(runtimes[1] < runtimes[0], "2 shards beat 1");
    assert!(runtimes[2] < runtimes[1], "4 shards beat 2");
}

#[test]
fn sharded_runs_are_deterministic() {
    let t = WorkloadSpec::timeline().scaled(128, 4_000).generate(9);
    let run = || {
        ShardedCluster::build(StoreKind::Dynamo, &t, &Placement::AllSlow, 4)
            .unwrap()
            .run(&t)
            .runtime_ns
    };
    assert_eq!(run(), run(), "threaded execution must stay deterministic");
}

#[test]
fn parallel_consultations_match_sequential() {
    // The harness fans consultations out with crossbeam; results must be
    // identical to sequential runs.
    let specs: Vec<_> = WorkloadSpec::table3()
        .into_iter()
        .map(|w| w.scaled(100, 1_200))
        .collect();
    let sequential: Vec<_> = specs
        .iter()
        .map(|w| {
            let trace = w.generate(4);
            Advisor::new(AdvisorConfig::default())
                .consult(StoreKind::Redis, &trace)
                .unwrap()
                .curve
        })
        .collect();
    let mut parallel: Vec<Option<_>> = specs.iter().map(|_| None).collect();
    crossbeam::scope(|scope| {
        for (slot, w) in parallel.iter_mut().zip(&specs) {
            scope.spawn(move |_| {
                let trace = w.generate(4);
                *slot = Some(
                    Advisor::new(AdvisorConfig::default())
                        .consult(StoreKind::Redis, &trace)
                        .unwrap()
                        .curve,
                );
            });
        }
    })
    .unwrap();
    for (seq, par) in sequential.iter().zip(parallel) {
        assert_eq!(*seq, par.unwrap());
    }
}

#[test]
fn shard_counts_do_not_change_per_request_costs() {
    // Sharding parallelises the *clients*; the per-request service model
    // must be unchanged, so average latencies agree across shard counts.
    let t = WorkloadSpec::trending().scaled(256, 6_000).generate(11);
    let avg = |shards: usize| {
        let cluster =
            ShardedCluster::build(StoreKind::Redis, &t, &Placement::AllFast, shards).unwrap();
        let rep = cluster.run(&t);
        (rep.read_ns_total + rep.write_ns_total) / rep.requests as f64
    };
    let one = avg(1);
    let four = avg(4);
    let rel = (one - four).abs() / one;
    assert!(
        rel < 0.05,
        "avg request cost drifted with sharding: {one} vs {four}"
    );
}
