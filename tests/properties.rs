//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary workload shapes, not just the Table III presets.

use kvsim::StoreKind;
use mnemo::advisor::{Advisor, AdvisorConfig, OrderingKind};
use proptest::prelude::*;
use ycsb::dist::DistKind;
use ycsb::{SizeClass, SizeModel, WorkloadSpec};

/// Arbitrary-but-small workload specs.
fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    let dist = prop_oneof![
        Just(DistKind::Uniform),
        (0.5f64..0.95).prop_map(|t| DistKind::Zipfian { theta: t }),
        (0.5f64..0.95).prop_map(|t| DistKind::ScrambledZipfian { theta: t }),
        ((0.05f64..0.5), (0.5f64..0.95)).prop_map(|(h, o)| DistKind::Hotspot {
            hot_fraction: h,
            hot_op_fraction: o
        }),
        (1u64..20).prop_map(|c| DistKind::Latest {
            theta: 0.9,
            churn_period: c
        }),
    ];
    let sizes = prop_oneof![
        Just(SizeModel::Single(SizeClass::Caption)),
        Just(SizeModel::Single(SizeClass::TextPost)),
        Just(SizeModel::Mixed(vec![
            (SizeClass::TextPost, 1.0),
            (SizeClass::Caption, 2.0)
        ])),
    ];
    (dist, sizes, 20u64..80, 200usize..800, 0.3f64..1.0).prop_map(
        |(distribution, sizes, keys, requests, read_fraction)| WorkloadSpec {
            name: "property".into(),
            distribution,
            ops: ycsb::OpMix::read_update(read_fraction),
            sizes,
            keys,
            requests,
            use_case: String::new(),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn curve_invariants_hold_for_arbitrary_workloads(spec in arb_spec(), seed in 0u64..1000) {
        let trace = spec.generate(seed);
        let consultation = Advisor::new(AdvisorConfig::default())
            .consult(StoreKind::Redis, &trace)
            .unwrap();
        let curve = &consultation.curve;
        // Row count = keys + 1, cost in [p, 1], monotone, throughput
        // improves end to end, and bytes accumulate to the dataset.
        prop_assert_eq!(curve.rows.len(), trace.keys() as usize + 1);
        for w in curve.rows.windows(2) {
            prop_assert!(w[1].cost_reduction >= w[0].cost_reduction - 1e-12);
            prop_assert!(w[1].fast_bytes >= w[0].fast_bytes);
            // Moving any key to FastMem never hurts the estimate.
            prop_assert!(w[1].est_runtime_ns <= w[0].est_runtime_ns + 1e-6);
        }
        prop_assert!(curve.slow_only().cost_reduction >= 0.2 - 1e-12);
        prop_assert!((curve.fast_only().cost_reduction - 1.0).abs() < 1e-12);
        prop_assert_eq!(curve.fast_only().fast_bytes, trace.dataset_bytes());
        // Recommendations exist for any SLO and tighten monotonically.
        let loose = consultation.recommend(0.5).unwrap();
        let tight = consultation.recommend(0.01).unwrap();
        prop_assert!(tight.fast_bytes >= loose.fast_bytes);
        prop_assert!(tight.cost_reduction >= loose.cost_reduction - 1e-12);
    }

    #[test]
    fn orderings_never_change_endpoints(spec in arb_spec(), seed in 0u64..1000) {
        let trace = spec.generate(seed);
        let advisor = Advisor::new(AdvisorConfig::default());
        let base = advisor.consult(StoreKind::Memcached, &trace).unwrap();
        let mut endpoints = Vec::new();
        for ordering in [OrderingKind::TouchOrder, OrderingKind::Hotness, OrderingKind::MnemoT] {
            let config = AdvisorConfig { ordering, ..AdvisorConfig::default() };
            let c = Advisor::new(config)
                .consult_with_baselines(base.baselines.clone(), &trace)
                .unwrap();
            endpoints.push((c.curve.slow_only().est_runtime_ns, c.curve.fast_only().est_runtime_ns));
        }
        for w in endpoints.windows(2) {
            prop_assert!((w[0].0 - w[1].0).abs() < 1e-6);
            prop_assert!((w[0].1 - w[1].1).abs() < 1e-6);
        }
    }

    #[test]
    fn downsampling_preserves_read_fraction_and_dataset(
        spec in arb_spec(),
        factor in 2usize..10,
        seed in 0u64..1000,
    ) {
        let full = spec.generate(seed);
        let sampled = ycsb::sample::downsample(&full, factor, seed ^ 0xABCD);
        prop_assert_eq!(&sampled.sizes, &full.sizes);
        prop_assert!(sampled.len() <= full.len() / factor + full.len() / 100 + 1);
        if full.read_fraction() > 0.05 && full.read_fraction() < 0.95 && !sampled.is_empty() {
            // Binomial sampling noise: allow 4 standard deviations.
            let p = full.read_fraction();
            let tol = 4.0 * (p * (1.0 - p) / sampled.len() as f64).sqrt() + 0.01;
            prop_assert!(
                (sampled.read_fraction() - p).abs() < tol,
                "sampled {} vs full {} (tol {})",
                sampled.read_fraction(), p, tol
            );
        }
    }

    #[test]
    fn trace_cdf_invariants(spec in arb_spec(), seed in 0u64..1000) {
        let trace = spec.generate(seed);
        let cdf = trace.key_cdf();
        let mass = trace.hot_mass_curve();
        prop_assert_eq!(cdf.len(), trace.keys() as usize);
        prop_assert_eq!(mass.len(), trace.keys() as usize);
        // Both end at 1 for nonempty traces and are monotone; the
        // hottest-first mass curve dominates the id-order CDF pointwise.
        if !trace.is_empty() {
            prop_assert!((cdf.last().unwrap() - 1.0).abs() < 1e-9);
            prop_assert!((mass.last().unwrap() - 1.0).abs() < 1e-9);
        }
        for w in cdf.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
        for (m, c) in mass.iter().zip(&cdf) {
            prop_assert!(m + 1e-9 >= *c, "hot-mass must dominate id-order CDF");
        }
    }

    #[test]
    fn trace_file_roundtrip_for_arbitrary_workloads(spec in arb_spec(), seed in 0u64..1000) {
        let trace = spec.generate(seed);
        let text = ycsb::fileio::trace_to_string(&trace);
        let back = ycsb::fileio::trace_from_str(&text).unwrap();
        prop_assert_eq!(trace, back);
    }

    #[test]
    fn engine_service_times_are_sane_for_arbitrary_records(
        bytes in 64u64..500_000,
        store_pick in 0u8..3,
    ) {
        use hybridmem::{CacheConfig, HybridSpec, MemTier};
        let store = [StoreKind::Redis, StoreKind::Memcached, StoreKind::Dynamo]
            [store_pick as usize];
        let mut spec = HybridSpec::paper_testbed();
        spec.cache = CacheConfig::disabled();
        let mut engine = kvsim::server::make_engine(store, spec);
        engine.load(0, bytes, MemTier::Fast).unwrap();
        engine.load(1, bytes, MemTier::Slow).unwrap();
        let fast_get = engine.get(0).unwrap();
        let slow_get = engine.get(1).unwrap();
        let fast_put = engine.put(0).unwrap();
        let slow_put = engine.put(1).unwrap();
        // Positive, finite, ordered by tier for both ops.
        for t in [fast_get, slow_get, fast_put, slow_put] {
            prop_assert!(t.is_finite() && t > 0.0);
        }
        prop_assert!(slow_get > fast_get);
        prop_assert!(slow_put >= fast_put);
        // Writes are less tier-exposed than reads (paper §III).
        prop_assert!(slow_put - fast_put <= slow_get - fast_get + 1e-6);
        // Determinism: repeating the access costs the same (no cache).
        let again = engine.get(1).unwrap();
        prop_assert!((again - slow_get).abs() < 1e-9);
    }

    #[test]
    fn hotness_order_dominates_any_other_order_at_every_prefix(
        seed in 0u64..200,
    ) {
        // Under the global-average model, each key's promotion benefit is
        // proportional to its access count (read-only workload), so the
        // hotness ordering maximises the estimated throughput at *every*
        // prefix count — here verified against the touch ordering.
        // (Weight/density orderings optimise per *byte*, not per prefix,
        // and can legitimately lose at fixed prefix counts when sizes
        // vary.)
        let spec = WorkloadSpec {
            name: "prop-zipf".into(),
            distribution: DistKind::ScrambledZipfian { theta: 0.9 },
            ops: ycsb::OpMix::read_only(),
            sizes: SizeModel::Single(SizeClass::TextPost),
            keys: 60,
            requests: 600,
            use_case: String::new(),
        };
        let trace = spec.generate(seed);
        let advisor = |ordering| {
            Advisor::new(AdvisorConfig { ordering, ..AdvisorConfig::default() })
        };
        let base = advisor(OrderingKind::TouchOrder)
            .consult(StoreKind::Redis, &trace)
            .unwrap();
        let touch = base.curve.clone();
        let hot = advisor(OrderingKind::Hotness)
            .consult_with_baselines(base.baselines.clone(), &trace)
            .unwrap()
            .curve;
        for (h, t) in hot.rows.iter().zip(&touch.rows) {
            prop_assert!(
                h.est_throughput_ops_s >= t.est_throughput_ops_s - 1e-6,
                "prefix {}: hotness {} < touch {}",
                h.prefix, h.est_throughput_ops_s, t.est_throughput_ops_s
            );
        }
    }
}
