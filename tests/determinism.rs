//! The parallel sweep engine's determinism guarantee: for the same seed
//! and input, every `--jobs` value produces **bit-identical** results —
//! curves, shard reports, shared allocations. The worker count tunes
//! wall-clock speed only; it must never leak into any output byte.
//!
//! `mnemo_par::set_jobs` is process-global, so every test that varies it
//! serialises on one lock and restores the unbounded default before
//! releasing it.

use kvsim::{Placement, ShardedCluster, StoreKind};
use mnemo::advisor::{Advisor, AdvisorConfig, OrderingKind};
use mnemo::curve::EstimateCurve;
use proptest::prelude::*;
use std::sync::Mutex;
use ycsb::dist::DistKind;
use ycsb::{OpMix, SizeClass, SizeModel, Trace, WorkloadSpec};

/// Serialises tests that touch the process-global worker-count override.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with the pool bounded to `jobs` workers, restoring the
/// default afterwards. Callers must hold `JOBS_LOCK`.
fn with_jobs<T>(jobs: usize, f: impl FnOnce() -> T) -> T {
    mnemo_par::set_jobs(jobs);
    let out = f();
    mnemo_par::set_jobs(0);
    out
}

fn spec(keys: u64, requests: usize, theta: f64) -> WorkloadSpec {
    WorkloadSpec {
        name: "determinism".into(),
        distribution: DistKind::Zipfian { theta },
        ops: OpMix::read_update(0.9),
        sizes: SizeModel::Single(SizeClass::TextPost),
        keys,
        requests,
        use_case: String::new(),
    }
}

fn curve_for(trace: &Trace, ordering: OrderingKind) -> EstimateCurve {
    let config = AdvisorConfig {
        ordering,
        ..AdvisorConfig::default()
    };
    Advisor::new(config)
        .consult(StoreKind::Redis, trace)
        .unwrap()
        .curve
}

/// Bitwise row equality — `==` on f64 would accept -0.0 vs 0.0 and
/// hides nothing; the guarantee is *byte* identity.
fn assert_rows_bit_identical(a: &EstimateCurve, b: &EstimateCurve, jobs: usize) {
    assert_eq!(a.rows.len(), b.rows.len(), "jobs={jobs}");
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.prefix, rb.prefix, "jobs={jobs}");
        assert_eq!(ra.key, rb.key, "jobs={jobs}");
        assert_eq!(ra.fast_bytes, rb.fast_bytes, "jobs={jobs}");
        assert_eq!(
            ra.cost_reduction.to_bits(),
            rb.cost_reduction.to_bits(),
            "jobs={jobs} prefix={}",
            ra.prefix
        );
        assert_eq!(
            ra.est_runtime_ns.to_bits(),
            rb.est_runtime_ns.to_bits(),
            "jobs={jobs} prefix={}",
            ra.prefix
        );
        assert_eq!(
            ra.est_throughput_ops_s.to_bits(),
            rb.est_throughput_ops_s.to_bits(),
            "jobs={jobs} prefix={}",
            ra.prefix
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn any_jobs_value_yields_identical_curves(
        seed in 0u64..1_000,
        keys in 40u64..150,
        requests in 400usize..2_000,
        theta in 0.55f64..0.95,
        jobs in 2usize..6,
    ) {
        let _guard = JOBS_LOCK.lock().unwrap();
        let trace = spec(keys, requests, theta).generate(seed);
        let sequential = with_jobs(1, || curve_for(&trace, OrderingKind::MnemoT));
        let parallel = with_jobs(jobs, || curve_for(&trace, OrderingKind::MnemoT));
        assert_rows_bit_identical(&sequential, &parallel, jobs);
        // And the CSV artifact — what the CI gate diffs — is equal as a
        // byte string, not merely row-wise.
        prop_assert_eq!(sequential.to_csv(), parallel.to_csv());
    }
}

#[test]
fn every_ordering_is_jobs_invariant() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let trace = spec(120, 2_000, 0.8).generate(77);
    for ordering in [
        OrderingKind::TouchOrder,
        OrderingKind::Hotness,
        OrderingKind::MnemoT,
    ] {
        let sequential = with_jobs(1, || curve_for(&trace, ordering));
        for jobs in [2, 3, 8] {
            let parallel = with_jobs(jobs, || curve_for(&trace, ordering));
            assert_rows_bit_identical(&sequential, &parallel, jobs);
        }
    }
}

#[test]
fn sharded_cluster_report_is_jobs_invariant() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let trace = spec(96, 3_000, 0.9).generate(11);
    let run = |jobs: usize| {
        with_jobs(jobs, || {
            ShardedCluster::build(StoreKind::Redis, &trace, &Placement::AllFast, 6)
                .unwrap()
                .run(&trace)
        })
    };
    let sequential = run(1);
    for jobs in [2, 4] {
        let parallel = run(jobs);
        assert_eq!(parallel.requests, sequential.requests);
        assert_eq!(
            parallel.runtime_ns.to_bits(),
            sequential.runtime_ns.to_bits(),
            "jobs={jobs}"
        );
        assert_eq!(
            parallel.read_ns_total.to_bits(),
            sequential.read_ns_total.to_bits()
        );
        assert_eq!(
            parallel.write_ns_total.to_bits(),
            sequential.write_ns_total.to_bits()
        );
    }
}

#[test]
fn shared_allocation_is_jobs_invariant() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let consult = |jobs: usize| {
        with_jobs(jobs, || {
            let tenants: Vec<_> = [3u64, 9]
                .iter()
                .map(|&seed| {
                    let trace = spec(80, 1_200, 0.85).generate(seed);
                    Advisor::new(AdvisorConfig::default())
                        .consult(StoreKind::Dynamo, &trace)
                        .unwrap()
                })
                .collect();
            let budget: u64 = tenants.iter().map(|c| c.curve.total_bytes).sum::<u64>() / 3;
            mnemo::multi::allocate_shared(&tenants, budget)
        })
    };
    let sequential = consult(1);
    let parallel = consult(5);
    assert_eq!(sequential.used_bytes, parallel.used_bytes);
    for (s, p) in sequential.tenants.iter().zip(&parallel.tenants) {
        assert_eq!(s.keys, p.keys);
        assert_eq!(s.fast_bytes, p.fast_bytes);
        assert_eq!(s.est_runtime_ns.to_bits(), p.est_runtime_ns.to_bits());
    }
}
