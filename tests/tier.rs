//! N-tier integration tests: the `mnemo-tier` policy/hierarchy layer
//! against the legacy two-tier pipeline and the `tier_matrix` bench.
//!
//! The heart of the suite is the bit-identity guarantee: at N=2 with
//! the paper's hierarchy and the greedy policy, a [`TieredServer`] run
//! must be **byte-identical** to the legacy [`Server`] with the Pattern
//! Engine's `fill_capacity` FastSet — on the same inputs the paper
//! figures (fig1's trending replay, fig5's Table III suite over the
//! Table I testbed) are generated from. This is what lets the N-tier
//! subsystem ship without regenerating a single golden artifact.

use hybridmem::clock::NoiseConfig;
use hybridmem::stack::StackSpec;
use hybridmem::{HybridSpec, TierId};
use kvsim::tiered::{trace_stats, trace_windows, TieredServer};
use kvsim::{Placement, Server, StoreKind};
use mnemo::pattern::PatternEngine;
use mnemo::tiering::MnemoT;
use mnemo_tier::{GreedyPolicy, KeyStat, PolicyKind, TieringPolicy};
use proptest::prelude::*;
use std::sync::Mutex;
use ycsb::{Trace, WorkloadSpec};

/// Serialises tests that touch the process-global worker-count override.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

/// The paper testbed with FastMem shrunk so placement is a real
/// decision on a test-sized trace. Placement is planned against the
/// returned budget while the device keeps slack for the per-value
/// store header, so neither server ever overflows FastMem (the legacy
/// path cannot spill). Capacity never enters the charge math, so the
/// slack cannot perturb bit-identity.
fn tight_testbed(trace: &Trace) -> (HybridSpec, u64) {
    let plan_cap = (trace.dataset_bytes() / 4).max(1);
    let mut spec = HybridSpec::paper_testbed();
    spec.fast_capacity = plan_cap + 64 * (trace.sizes.len() as u64 + 1);
    spec.cache.capacity_bytes = spec
        .cache
        .capacity_bytes
        .min((trace.dataset_bytes() / 85).max(1 << 16));
    (spec, plan_cap)
}

/// Greedy placement planned against a tighter top-tier budget than the
/// device exposes — also exercises the trait's pluggability from
/// outside the `mnemo-tier` crate.
struct PlannedGreedy {
    budget: u64,
    inner: GreedyPolicy,
}

impl TieringPolicy for PlannedGreedy {
    fn name(&self) -> &'static str {
        "greedy-planned"
    }

    fn place(&mut self, stats: &[KeyStat], hier: &StackSpec) -> Vec<TierId> {
        let mut tight = hier.clone();
        tight.tiers[0].capacity_bytes = self.budget;
        self.inner.place(stats, &tight)
    }
}

/// Run the legacy two-tier server with the Pattern Engine's greedy
/// capacity fill, and the N=2 tier stack with the greedy policy, and
/// demand bit-identical measurements.
fn assert_two_tier_bit_identity(trace: &Trace) {
    let (testbed, plan_cap) = tight_testbed(trace);

    // Legacy: MnemoT weight order -> capacity fill -> FastSet.
    let pattern = PatternEngine::analyze(trace);
    let fast_set = MnemoT::fill_capacity(&pattern, plan_cap);
    let legacy = Server::build_with(
        StoreKind::Redis,
        testbed.clone(),
        NoiseConfig::disabled(),
        trace,
        Placement::FastSet(fast_set.clone()),
    )
    .unwrap()
    .run(trace);

    // N-tier: the same testbed as a two-tier stack, greedy policy.
    let stack = StackSpec::two_tier(&testbed);
    let policy = PlannedGreedy {
        budget: plan_cap,
        inner: GreedyPolicy,
    };
    let mut server = TieredServer::build(stack, Box::new(policy), trace).unwrap();
    let tiered = server.run(trace);

    // The greedy policy must have picked the same FastMem set...
    for s in trace_stats(trace) {
        let tier = server.engine().placement_of(s.key).unwrap();
        let expect = if fast_set.contains(&s.key) { 0 } else { 1 };
        assert_eq!(tier, TierId(expect), "key {} tier", s.key);
    }
    // ...and every measurement must match to the bit.
    assert_eq!(legacy.requests, tiered.requests);
    assert_eq!(legacy.reads, tiered.reads);
    assert_eq!(legacy.writes, tiered.writes);
    assert_eq!(
        legacy.runtime_ns.to_bits(),
        tiered.runtime_ns.to_bits(),
        "runtime {} vs {}",
        legacy.runtime_ns,
        tiered.runtime_ns
    );
    assert_eq!(
        legacy.read_ns_total.to_bits(),
        tiered.read_ns_total.to_bits()
    );
    assert_eq!(
        legacy.write_ns_total.to_bits(),
        tiered.write_ns_total.to_bits()
    );
    assert_eq!(legacy.samples.len(), tiered.samples.len());
    for (l, t) in legacy.samples.iter().zip(tiered.samples.iter()) {
        assert_eq!(l.key, t.key);
        assert_eq!(l.op, t.op);
        assert_eq!(l.service_ns.to_bits(), t.service_ns.to_bits());
    }
}

#[test]
fn greedy_two_tier_matches_legacy_on_fig1_input() {
    // Fig. 1's replay input: the trending workload.
    let trace = WorkloadSpec::trending().scaled(400, 6_000).generate(11);
    assert_two_tier_bit_identity(&trace);
}

#[test]
fn greedy_two_tier_matches_legacy_on_fig5_table3_suite() {
    // Fig. 5 runs the whole Table III suite over the Table I testbed.
    for spec in WorkloadSpec::table3() {
        let trace = spec.scaled(250, 3_000).generate(7);
        assert_two_tier_bit_identity(&trace);
    }
}

#[test]
fn greedy_two_tier_matches_legacy_with_noise_enabled() {
    // The noise stream is drawn per request in the same order on both
    // paths, so even jittered measurements stay bit-identical.
    let trace = WorkloadSpec::edit_thumbnail()
        .scaled(200, 2_500)
        .generate(3);
    let (testbed, plan_cap) = tight_testbed(&trace);
    let noise = NoiseConfig::default_jitter(5);
    let pattern = PatternEngine::analyze(&trace);
    let fast_set = MnemoT::fill_capacity(&pattern, plan_cap);
    let legacy = Server::build_with(
        StoreKind::Redis,
        testbed.clone(),
        noise,
        &trace,
        Placement::FastSet(fast_set),
    )
    .unwrap()
    .run(&trace);
    let tiered = TieredServer::build_with(
        StackSpec::two_tier(&testbed),
        noise,
        0,
        Box::new(PlannedGreedy {
            budget: plan_cap,
            inner: GreedyPolicy,
        }),
        &trace,
    )
    .unwrap()
    .run(&trace);
    assert_eq!(legacy.runtime_ns.to_bits(), tiered.runtime_ns.to_bits());
}

#[test]
fn tier_matrix_grid_is_jobs_invariant() {
    // The bench suite's CSV checksum must not depend on the worker
    // count — the same guarantee the CI bench-smoke byte-diff enforces.
    let _guard = JOBS_LOCK.lock().unwrap();
    let run_at = |jobs: usize| {
        mnemo_par::set_jobs(jobs);
        let out = mnemo_bench::suite::tier_matrix::run(200).unwrap();
        mnemo_par::set_jobs(0);
        out.counters
    };
    let one = run_at(1);
    let three = run_at(3);
    assert_eq!(one, three, "tier_matrix counters drift with --jobs");
    assert!(one.iter().any(|(name, _)| name == "csv_fnv"));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Every policy respects per-tier capacity whenever the hierarchy
    /// can hold the dataset at all (the bottom tier always fits the
    /// remainder, like the legacy SlowMem).
    #[test]
    fn every_policy_respects_capacity(
        seed in 0u64..1_000,
        keys in 8usize..60,
        top_div in 3u64..8,
        mid_div in 2u64..4,
    ) {
        let stats: Vec<KeyStat> = (0..keys as u64).map(|k| {
            let h = k.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed);
            KeyStat {
                key: k,
                bytes: 200 + (h % 50_000),
                reads: h >> 32 & 0xFF,
                writes: h >> 40 & 0x3F,
            }
        }).collect();
        let total: u64 = stats.iter().map(|s| s.bytes).sum();
        let mut spec = mnemo_tier::dram_optane_ssd();
        spec.tiers[0].capacity_bytes = (total / top_div).max(1);
        spec.tiers[1].capacity_bytes = (total / mid_div).max(1);
        spec.tiers[2].capacity_bytes = total + 64 * 1024;
        for kind in PolicyKind::ALL {
            let mut policy = kind.build(seed, &[]);
            let assignment = policy.place(&stats, &spec);
            prop_assert_eq!(assignment.len(), stats.len());
            let mut used = [0u64; 3];
            for (s, tier) in stats.iter().zip(&assignment) {
                used[tier.index()] += s.bytes;
            }
            for (i, tier) in spec.tiers.iter().enumerate() {
                prop_assert!(
                    used[i] <= tier.capacity_bytes,
                    "{} overfills tier {}: {} > {}",
                    kind, i, used[i], tier.capacity_bytes
                );
            }
        }
    }
}

#[test]
fn epoch_replanning_is_deterministic_for_every_policy() {
    let trace = WorkloadSpec::ttl_churn().scaled(300, 4_000).generate(9);
    let mut spec = mnemo_tier::dram_optane_ssd();
    let stored: u64 = trace.sizes.iter().map(|b| b + 64).sum();
    spec.tiers[0].capacity_bytes = stored / 5;
    spec.tiers[1].capacity_bytes = stored / 3;
    for kind in PolicyKind::ALL {
        let run = || {
            let windows = trace_windows(&trace, 1_000);
            let mut server = TieredServer::build_with(
                spec.clone(),
                NoiseConfig::disabled(),
                1_000,
                kind.build(17, &windows),
                &trace,
            )
            .unwrap();
            let report = server.run(&trace);
            (report.runtime_ns.to_bits(), server.migration_stats())
        };
        let (a, ma) = run();
        let (b, mb) = run();
        assert_eq!(a, b, "{kind} runtime must be reproducible");
        assert_eq!(ma, mb, "{kind} migration stats must be reproducible");
    }
}
