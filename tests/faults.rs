//! Fault-injection guarantees, end to end:
//!
//! 1. a seeded fault plan perturbs the simulation *deterministically* —
//!    faulted cluster runs (reports and telemetry exports) are
//!    byte-identical for every `--jobs` value;
//! 2. migration retries are bounded by the plan's capped-exponential
//!    backoff policy — no unbounded retry storms;
//! 3. the advisor never panics under faults: every query returns a
//!    recommendation that is either SLO-compliant or tagged with a
//!    machine-readable [`DegradedReason`].

use kvsim::{DynamicConfig, DynamicTieringServer, Placement, ShardedCluster, StoreKind};
use mnemo::advisor::{Advisor, AdvisorConfig, DegradedReason};
use mnemo_faults::{Backoff, FaultEvent, FaultPlan};
use mnemo_telemetry::DomainFilter;
use std::sync::Mutex;
use ycsb::{Trace, WorkloadSpec};

/// Serialises tests that touch the process-global worker-count override.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

fn with_jobs<T>(jobs: usize, f: impl FnOnce() -> T) -> T {
    mnemo_par::set_jobs(jobs);
    let out = f();
    mnemo_par::set_jobs(0);
    out
}

fn trace() -> Trace {
    WorkloadSpec::trending().scaled(250, 5_000).generate(17)
}

/// A plan that exercises every fault class at once.
fn stormy_plan() -> FaultPlan {
    FaultPlan::new(99)
        .with(FaultEvent::LatencySpike {
            tier: hybridmem::MemTier::Slow.id(),
            start_ns: 0,
            end_ns: u128::MAX,
            factor: 24.0,
        })
        .with(FaultEvent::BandwidthThrottle {
            tier: hybridmem::MemTier::Slow.id(),
            start_ns: 0,
            end_ns: u128::MAX,
            factor: 1.0 / 12.0,
        })
        .with(FaultEvent::MigrationFailure {
            start_ns: 0,
            end_ns: u128::MAX,
            probability: 0.6,
        })
        .with(FaultEvent::ShardCrash {
            shard: 1,
            at_ns: 50_000,
            restart_ns: 2_000_000.0,
            rebuild_ns_per_key: 150.0,
        })
}

fn faulted_cluster_run(jobs: usize) -> (u64, String) {
    with_jobs(jobs, || {
        let t = trace();
        let cluster = ShardedCluster::build(StoreKind::Redis, &t, &Placement::AllSlow, 4).unwrap();
        cluster.install_fault_plan(&stormy_plan());
        let (report, snaps) = cluster.run_telemetered(&t, 1_000);
        let jsonl = mnemo_telemetry::export::to_jsonl(&snaps, DomainFilter::SimOnly);
        // Bit pattern, not `==`: the guarantee is byte identity.
        (report.runtime_ns.to_bits(), jsonl)
    })
}

#[test]
fn faulted_runs_are_byte_identical_for_every_jobs_value() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let (runtime_1, jsonl_1) = faulted_cluster_run(1);
    for jobs in [2, 4] {
        let (runtime_n, jsonl_n) = faulted_cluster_run(jobs);
        assert_eq!(runtime_1, runtime_n, "runtime drifted at jobs={jobs}");
        assert_eq!(jsonl_1, jsonl_n, "telemetry bytes drifted at jobs={jobs}");
    }
    // The plan actually fired: the crashed shard counted its crash and
    // the degradation windows were observed.
    assert!(jsonl_1.contains("kv.fault.shard_crashes"), "{jsonl_1}");
    assert!(jsonl_1.contains("kv.fault.degraded_requests"), "{jsonl_1}");
}

#[test]
fn migration_retries_are_bounded_by_the_backoff_cap() {
    let t = trace();
    let mut plan = FaultPlan::new(5).with(FaultEvent::MigrationFailure {
        start_ns: 0,
        end_ns: u128::MAX,
        probability: 1.0, // every attempt fails: worst case
    });
    plan.backoff = Backoff {
        base_ns: 1_000.0,
        factor: 2.0,
        cap_ns: 16_000.0,
        max_retries: 4,
    };
    let budget = (t.dataset_bytes() as f64 * 0.3) as u64;
    let mut server = DynamicTieringServer::build_with(
        StoreKind::Redis,
        hybridmem::HybridSpec::paper_testbed(),
        &t,
        DynamicConfig {
            epoch_requests: 1_000,
            ..DynamicConfig::new(budget)
        },
    )
    .unwrap();
    server.install_fault_plan(&plan);
    server.run(&t);
    let stats = server.migration_stats();

    // With p = 1.0 every attempted migration is abandoned after exactly
    // `max_retries` retries — never more — and falls back to SlowMem.
    assert!(stats.fallbacks > 0, "no migrations were even attempted");
    assert_eq!(stats.promotions + stats.demotions, 0);
    assert_eq!(
        stats.retries,
        stats.fallbacks * u64::from(plan.backoff.max_retries)
    );
    assert_eq!(
        stats.failures,
        stats.fallbacks * u64::from(plan.backoff.max_retries + 1)
    );
    // The charged wait per abandoned migration is bounded by the capped
    // sum of delays, so the total is too.
    let worst = plan.backoff.worst_case_delay_ns() * stats.fallbacks as f64;
    assert!(
        stats.retry_ns <= worst * 1.000001,
        "retry_ns {} exceeds the policy bound {}",
        stats.retry_ns,
        worst
    );
}

#[test]
fn advisor_under_faults_always_answers_compliant_or_tagged() {
    let t = trace();
    // Degrade *both* tiers so that even FastMem-only misses the healthy
    // throughput — the regime where plain `recommend` would give up.
    let plan = FaultPlan::new(3)
        .with(FaultEvent::LatencySpike {
            tier: hybridmem::MemTier::Fast.id(),
            start_ns: 0,
            end_ns: u128::MAX,
            factor: 50.0,
        })
        .with(FaultEvent::LatencySpike {
            tier: hybridmem::MemTier::Slow.id(),
            start_ns: 0,
            end_ns: u128::MAX,
            factor: 50.0,
        })
        .with(FaultEvent::BandwidthThrottle {
            tier: hybridmem::MemTier::Fast.id(),
            start_ns: 0,
            end_ns: u128::MAX,
            factor: 0.02,
        })
        .with(FaultEvent::BandwidthThrottle {
            tier: hybridmem::MemTier::Slow.id(),
            start_ns: 0,
            end_ns: u128::MAX,
            factor: 0.02,
        });
    // Scale the LLC to the dataset (the paper's ~85:1 proportion);
    // otherwise the cache absorbs every device access and hides the
    // injected latency entirely.
    let mut spec = hybridmem::HybridSpec::paper_testbed();
    spec.cache.capacity_bytes = spec
        .cache
        .capacity_bytes
        .min((t.dataset_bytes() / 85).max(1 << 16));
    let healthy = Advisor::new(AdvisorConfig {
        spec: spec.clone(),
        ..AdvisorConfig::default()
    })
    .consult(StoreKind::Redis, &t)
    .unwrap();
    let faulted = Advisor::new(AdvisorConfig {
        spec,
        fault_plan: Some(plan),
        ..AdvisorConfig::default()
    })
    .consult(StoreKind::Redis, &t)
    .unwrap();
    let healthy_ops = healthy.curve.fast_only().est_throughput_ops_s;

    // Hostile SLO inputs: none may panic, every answer must be a real
    // row that is compliant or carries a reason.
    for slo in [0.10, 0.0, 1.0, 2.0, -1.0, f64::NAN, f64::INFINITY] {
        let r = faulted.recommend_resilient(slo);
        assert!(r.recommendation.est_throughput_ops_s > 0.0, "slo={slo}");
        assert!(
            r.is_compliant() || r.degraded.is_some(),
            "slo={slo}: neither compliant nor tagged"
        );
    }

    // Judged against the *healthy* reference, the faulted hardware
    // cannot reach within 10%: the advisor degrades gracefully to the
    // nearest-feasible row and says why, instead of returning nothing.
    let vs = faulted.recommend_resilient_vs(0.10, Some(healthy_ops));
    match vs.degraded {
        Some(DegradedReason::SloUnattainable {
            requested,
            achievable,
        }) => {
            assert_eq!(requested, 0.10);
            assert!(achievable > 0.10, "achievable={achievable}");
        }
        other => panic!("expected SloUnattainable, got {other:?}"),
    }
    // Nearest-feasible == the best the degraded curve can do.
    let best = faulted
        .curve
        .rows
        .iter()
        .map(|r| r.est_throughput_ops_s)
        .fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(vs.recommendation.est_throughput_ops_s, best);
}
