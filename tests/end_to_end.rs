//! End-to-end pipeline tests: workload generation → baselines → pattern
//! → estimate → placement → verified execution, spanning every crate.

use kvsim::{Placement, Server, StoreKind};
use mnemo::advisor::{Advisor, AdvisorConfig, OrderingKind};
use mnemo::placement::PlacementEngine;
use ycsb::WorkloadSpec;

/// Shared test scale: big enough for stable statistics, small enough to
/// keep the suite fast. The LLC is scaled to the paper's cache:dataset
/// proportion.
fn config_for(trace: &ycsb::Trace) -> AdvisorConfig {
    let mut config = AdvisorConfig::default();
    config.spec.cache.capacity_bytes = (trace.dataset_bytes() / 85).max(1 << 16);
    config
}

#[test]
fn full_pipeline_recommendation_is_verified_by_execution() {
    let trace = WorkloadSpec::trending().scaled(400, 6_000).generate(1);
    let mut config = config_for(&trace);
    config.ordering = OrderingKind::MnemoT;
    config.cache_correction = Some(config.spec.cache.capacity_bytes);
    let spec = config.spec.clone();
    let consultation = Advisor::new(config)
        .consult(StoreKind::Redis, &trace)
        .unwrap();
    let rec = consultation.recommend(0.10).unwrap();

    // Deploy the recommended placement and measure for real.
    let placement =
        PlacementEngine::placement_for(&consultation.order, &consultation.curve.rows[rec.prefix]);
    let report = Server::build_with(
        StoreKind::Redis,
        spec.clone(),
        hybridmem::clock::NoiseConfig::disabled(),
        &trace,
        placement,
    )
    .unwrap()
    .run(&trace);
    let fast_only = Server::build_with(
        StoreKind::Redis,
        spec,
        hybridmem::clock::NoiseConfig::disabled(),
        &trace,
        Placement::AllFast,
    )
    .unwrap()
    .run(&trace);
    let slowdown = 1.0 - report.throughput_ops_s() / fast_only.throughput_ops_s();
    assert!(
        slowdown <= 0.10 + 0.03,
        "measured slowdown {slowdown:.3} should honour the 10% SLO (+3% tolerance)"
    );
    // And the savings must be real.
    assert!(
        rec.cost_reduction < 0.7,
        "trending must save memory cost: {}",
        rec.cost_reduction
    );
}

#[test]
fn estimate_accuracy_holds_across_stores_and_workloads() {
    // A compact version of Fig. 8a: median error must stay sub-percent.
    let mut errors = Vec::new();
    for store in [StoreKind::Redis, StoreKind::Memcached, StoreKind::Dynamo] {
        for spec in [WorkloadSpec::trending(), WorkloadSpec::edit_thumbnail()] {
            let trace = spec.scaled(250, 3_000).generate(7);
            let config = config_for(&trace);
            let testbed = config.spec.clone();
            let consultation = Advisor::new(config).consult(store, &trace).unwrap();
            let points = mnemo::accuracy::evaluate(
                store,
                &trace,
                &consultation,
                &testbed,
                hybridmem::clock::NoiseConfig::disabled(),
                5,
            )
            .unwrap();
            errors.extend(points.iter().map(mnemo::accuracy::EvalPoint::error_pct));
        }
    }
    let stats = mnemo::accuracy::ErrorStats::from_errors(&errors);
    assert!(stats.median < 1.0, "median |error| {:.3}%", stats.median);
    assert!(stats.max < 6.0, "max |error| {:.3}%", stats.max);
}

#[test]
fn csv_output_matches_curve() {
    let trace = WorkloadSpec::timeline().scaled(100, 1_000).generate(2);
    let consultation = Advisor::new(config_for(&trace))
        .consult(StoreKind::Redis, &trace)
        .unwrap();
    let csv = consultation.curve.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 102, "header + 101 rows");
    // Cost column is monotone non-decreasing down the file.
    let costs: Vec<f64> = lines[1..]
        .iter()
        .map(|l| l.rsplit(',').next().unwrap().parse().unwrap())
        .collect();
    for w in costs.windows(2) {
        assert!(w[1] >= w[0] - 1e-12);
    }
    // Keys listed are exactly the ordering.
    for (line, key) in lines[2..].iter().zip(&consultation.order) {
        assert_eq!(line.split(',').next().unwrap(), key.to_string());
    }
}

#[test]
fn downsampled_profile_transfers_to_full_workload() {
    let full = WorkloadSpec::trending().scaled(400, 12_000).generate(3);
    let sampled = ycsb::sample::downsample(&full, 8, 1);
    let mut config = config_for(&full);
    config.cache_correction = Some(config.spec.cache.capacity_bytes);
    let spec = config.spec.clone();
    let consultation = Advisor::new(config)
        .consult(StoreKind::Redis, &sampled)
        .unwrap();
    let rec = consultation.recommend(0.10).unwrap();
    let placement =
        PlacementEngine::placement_for(&consultation.order, &consultation.curve.rows[rec.prefix]);
    let run = |p: Placement| {
        Server::build_with(
            StoreKind::Redis,
            spec.clone(),
            hybridmem::clock::NoiseConfig::disabled(),
            &full,
            p,
        )
        .unwrap()
        .run(&full)
        .throughput_ops_s()
    };
    let slowdown = 1.0 - run(placement) / run(Placement::AllFast);
    assert!(
        slowdown <= 0.10 + 0.04,
        "sampled sizing broke SLO on full workload: {slowdown:.3}"
    );
}

#[test]
fn tail_estimator_tracks_measured_tails_across_stores() {
    // Cache-free testbed: the SizeAware mixture should reproduce the
    // measured tail quantiles closely for every engine model.
    let trace = WorkloadSpec::trending_preview()
        .scaled(250, 4_000)
        .generate(6);
    for store in [StoreKind::Redis, StoreKind::Memcached, StoreKind::Dynamo] {
        let mut config = AdvisorConfig::default();
        config.spec.cache = hybridmem::CacheConfig::disabled();
        config.model = mnemo::ModelKind::SizeAware;
        let spec = config.spec.clone();
        let consultation = Advisor::new(config).consult(store, &trace).unwrap();
        let report = Server::build_with(
            store,
            spec,
            hybridmem::clock::NoiseConfig::disabled(),
            &trace,
            Placement::AllSlow,
        )
        .unwrap()
        .run(&trace);
        let est = consultation.tail_estimator();
        for q in [0.95, 0.99] {
            let predicted = est.quantile(|_| false, q);
            let measured = report.latency_quantile(q);
            let rel = (predicted - measured).abs() / measured;
            assert!(
                rel < 0.10,
                "{store} q={q}: predicted {predicted:.0} measured {measured:.0}"
            );
        }
    }
}

#[test]
fn advisor_is_deterministic() {
    let trace = WorkloadSpec::news_feed().scaled(200, 2_000).generate(5);
    let a = Advisor::new(config_for(&trace))
        .consult(StoreKind::Dynamo, &trace)
        .unwrap();
    let b = Advisor::new(config_for(&trace))
        .consult(StoreKind::Dynamo, &trace)
        .unwrap();
    assert_eq!(a.curve, b.curve);
    assert_eq!(a.order, b.order);
}
