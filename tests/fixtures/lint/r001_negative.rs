//@ path: crates/core/src/r001_negative.rs
pub fn first(xs: &[u64]) -> Option<u64> {
    xs.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn first_of_nonempty() {
        assert_eq!(super::first(&[7]).unwrap(), 7);
    }
}
