//@ path: crates/core/src/d007_negative.rs
fn total(xs: &[u64]) -> u64 {
    xs.iter().sum::<u64>()
}

pub fn run(chunks: &[Vec<u64>]) -> Vec<u64> {
    let pool = mnemo_par::Pool::current();
    pool.run_jobs(chunks.len(), |i| total(&chunks[i]))
}
