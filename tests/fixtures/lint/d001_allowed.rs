//@ path: crates/core/src/d001_allowed.rs
use std::time::Instant;

pub fn stamp() -> Instant {
    // mnemo-lint: allow(D001, "fixture: diagnostic-only timer excluded from determinism gates")
    Instant::now()
}
