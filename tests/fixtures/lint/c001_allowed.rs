//@ path: crates/core/src/c001_allowed.rs
use std::sync::Mutex;

pub struct Pair {
    left: Mutex<u64>,
    right: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        // mnemo-lint: allow(C001, "fixture: backward only runs at shutdown, after workers join")
        let a = self.left.lock().unwrap_or_else(|e| e.into_inner());
        let b = self.right.lock().unwrap_or_else(|e| e.into_inner());
        *a + *b
    }

    pub fn backward(&self) -> u64 {
        let b = self.right.lock().unwrap_or_else(|e| e.into_inner());
        let a = self.left.lock().unwrap_or_else(|e| e.into_inner());
        *a - *b
    }
}
