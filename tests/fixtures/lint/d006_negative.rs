//@ path: crates/core/src/d006_negative.rs
fn weight(i: usize) -> u64 {
    (i as u64).wrapping_mul(0x9e37_79b9)
}

fn sample(i: usize) -> u64 {
    weight(i) ^ 0xff
}

pub fn run(n: usize) -> Vec<u64> {
    let pool = mnemo_par::Pool::current();
    pool.run_jobs(n, |i| sample(i))
}
