//@ path: crates/hybridmem/src/system.rs
fn bump(counter: &mut u64, bytes: u64) {
    *counter += bytes;
}

pub fn access(counter: &mut u64, bytes: u64) -> u64 {
    bump(counter, bytes);
    *counter
}
