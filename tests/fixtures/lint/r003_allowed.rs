//@ path: crates/serve/src/engine.rs
fn decode(row: &str) -> u64 {
    // mnemo-lint: allow(R001, "fixture: caller validates the row before decode")
    row.parse().unwrap()
}

// mnemo-lint: allow(R003, "fixture: decode's unwrap guards a pre-validated row")
pub fn ingest(row: &str) -> u64 {
    decode(row) + 1
}
