//@ path: crates/bench/src/suite/d005_negative.rs
// Bench stages time themselves through SweepTimer spans, so their wall
// clock lands in the timing-* artifacts and the perf trajectory.
pub fn timed_stage<T>(timer: &mut mnemo_par::SweepTimer, f: impl FnOnce() -> T) -> T {
    timer.stage("stage", 1, f)
}
