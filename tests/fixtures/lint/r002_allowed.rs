//@ path: crates/hybridmem/src/r002_allowed.rs
pub fn bytes_of(pages: u32) -> u64 {
    // mnemo-lint: allow(R002, "fixture: u32 * 4096 always fits u64, widening cast")
    (pages * 4096) as u64
}
