//@ path: crates/bench/src/bin/d005_allowed.rs
// mnemo-lint: allow(D005, "fixture: type-only mention pending its SweepTimer port")
use std::time::Instant;

pub fn untimed() {}
