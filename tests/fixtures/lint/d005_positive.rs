//@ path: crates/bench/src/bin/d005_positive.rs
use std::time::Instant;

pub fn untracked_stage() {}
