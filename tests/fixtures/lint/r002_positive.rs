//@ path: crates/hybridmem/src/r002_positive.rs
pub fn bytes_of(pages: u32) -> u64 {
    (pages * 4096) as u64
}
