//@ path: crates/kvsim/src/d003_positive.rs
pub fn background(work: impl FnOnce() + Send + 'static) {
    std::thread::spawn(work);
}
