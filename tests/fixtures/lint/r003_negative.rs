//@ path: crates/serve/src/engine.rs
fn decode(row: &str) -> u64 {
    row.parse().unwrap_or(0)
}

pub fn ingest(row: &str) -> u64 {
    decode(row) + 1
}
