//@ path: crates/core/src/s001_allowed.rs
pub fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    // mnemo-lint: allow(S001, "fixture: fatal-signal handler, destructors already ran")
    std::process::exit(2)
}
