//@ path: crates/core/src/d006_allowed.rs
fn stamp_ns() -> u128 {
    // mnemo-lint: allow(D001, "fixture: diagnostic-only stamp outside determinism outputs")
    std::time::Instant::now().elapsed().as_nanos()
}

fn sample(i: usize) -> u128 {
    stamp_ns() + i as u128
}

pub fn run(n: usize) -> Vec<u128> {
    let pool = mnemo_par::Pool::current();
    // mnemo-lint: allow(D006, "fixture: stamps are logged, never folded into results")
    pool.run_jobs(n, |i| sample(i))
}
