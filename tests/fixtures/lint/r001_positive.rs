//@ path: crates/core/src/r001_positive.rs
pub fn first(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}
