//@ path: crates/core/src/d004_allowed.rs
pub fn totals(pool: &Pool, xs: &[Vec<f64>]) -> Vec<f64> {
    // mnemo-lint: allow(D004, "fixture: each closure reduces one pre-sharded slice sequentially")
    pool.map(xs.len(), |i| xs[i].iter().sum::<f64>())
}
