//@ path: crates/par/src/d003_negative.rs
pub fn background(work: impl FnOnce() + Send + 'static) {
    std::thread::spawn(work);
}
