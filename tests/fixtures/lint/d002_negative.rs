//@ path: crates/core/src/d002_negative.rs
use std::collections::BTreeMap;

pub fn index(keys: &[u64]) -> BTreeMap<u64, usize> {
    keys.iter().enumerate().map(|(i, &k)| (k, i)).collect()
}
