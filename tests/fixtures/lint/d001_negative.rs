//@ path: crates/telemetry/src/recorder.rs
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
