//@ path: crates/core/src/d002_allowed.rs
use std::collections::HashMap; // mnemo-lint: allow(D002, "fixture: probe-only map, never iterated")

pub fn probe(map: &HashMap<u64, usize>, k: u64) -> bool { // mnemo-lint: allow(D002, "fixture: probe-only map, never iterated")
    map.contains_key(&k)
}
