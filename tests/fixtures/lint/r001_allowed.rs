//@ path: crates/core/src/r001_allowed.rs
pub fn first(xs: &[u64]) -> u64 {
    // mnemo-lint: allow(R001, "fixture: caller asserts non-emptiness on entry")
    *xs.first().unwrap()
}
