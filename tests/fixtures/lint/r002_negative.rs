//@ path: crates/hybridmem/src/r002_negative.rs
pub fn fill_ratio(used: u64, total: u64) -> f64 {
    used as f64 / total as f64
}
