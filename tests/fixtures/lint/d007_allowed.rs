//@ path: crates/core/src/d007_allowed.rs
fn total(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

pub fn run(chunks: &[Vec<f64>]) -> Vec<f64> {
    let pool = mnemo_par::Pool::current();
    // mnemo-lint: allow(D007, "fixture: each sum stays inside one chunk job, order is slice order")
    pool.run_jobs(chunks.len(), |i| total(&chunks[i]))
}
