//@ path: crates/core/src/d006_positive.rs
// The seeded regression shape: wall clock two calls below a pool
// closure. D006 must anchor at the pool site and name the chain.

fn stamp_ns() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}

fn sample(i: usize) -> u128 {
    stamp_ns() + i as u128
}

pub fn run(n: usize) -> Vec<u128> {
    let pool = mnemo_par::Pool::current();
    pool.run_jobs(n, |i| sample(i))
}
