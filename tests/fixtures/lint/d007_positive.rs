//@ path: crates/core/src/d007_positive.rs
fn total(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

pub fn run(chunks: &[Vec<f64>]) -> Vec<f64> {
    let pool = mnemo_par::Pool::current();
    pool.run_jobs(chunks.len(), |i| total(&chunks[i]))
}
