//@ path: crates/kvsim/src/d003_allowed.rs
pub fn background(work: impl FnOnce() + Send + 'static) {
    // mnemo-lint: allow(D003, "fixture: fire-and-forget logging thread, output order irrelevant")
    std::thread::spawn(work);
}
