//@ path: crates/hybridmem/src/system.rs
fn tag(kind: u32) -> String {
    format!("kind-{kind}")
}

pub fn access(kind: u32) -> usize {
    tag(kind).len()
}
