//@ path: crates/core/src/d004_positive.rs
pub fn totals(pool: &Pool, xs: &[Vec<f64>]) -> Vec<f64> {
    pool.map(xs.len(), |i| xs[i].iter().sum::<f64>())
}
