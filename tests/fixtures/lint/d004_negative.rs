//@ path: crates/core/src/d004_negative.rs
pub fn totals(pool: &Pool, xs: &[Vec<u64>]) -> Vec<u64> {
    pool.map(xs.len(), |i| xs[i].iter().sum::<u64>())
}
