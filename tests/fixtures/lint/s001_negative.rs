//@ path: crates/cli/src/bin/s001_negative.rs
pub fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}
