//@ path: crates/hybridmem/src/system.rs
fn tag(kind: u32) -> String {
    format!("kind-{kind}")
}

// mnemo-lint: allow(P001, "fixture: tag is built once per epoch rollover, not per access")
pub fn access(kind: u32) -> usize {
    tag(kind).len()
}
