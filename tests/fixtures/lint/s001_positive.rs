//@ path: crates/core/src/s001_positive.rs
pub fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}
