//@ path: crates/core/src/d001_positive.rs
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
