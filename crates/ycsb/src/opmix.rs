//! Operation mixes: read / update / scan / read-modify-write ratios.
//!
//! The paper's Table III workloads only mix reads and updates, but they
//! are "adapted from the default YCSB workloads", which also include
//! scans (workload E) and read-modify-writes (workload F). This module
//! models the full mix. Scans and RMWs are *expanded at generation time*
//! into their primitive accesses — a scan of length `L` starting at key
//! `k` becomes `L` consecutive reads of keys `k, k+1, ...`, and an RMW
//! becomes a read followed by an update of the same key — which is
//! exactly the memory traffic the composite operations produce, and
//! keeps the whole estimation pipeline operating on primitive accesses.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// The operation classes a workload can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Point read.
    Read,
    /// Point update (overwrite, same size).
    Update,
    /// Range scan of a drawn length.
    Scan,
    /// Read-modify-write of one key.
    ReadModifyWrite,
}

/// A normalised operation mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpMix {
    /// Weight of point reads.
    pub read: f64,
    /// Weight of point updates.
    pub update: f64,
    /// Weight of scans.
    pub scan: f64,
    /// Weight of read-modify-writes.
    pub rmw: f64,
    /// Maximum scan length (uniform in `1..=max_scan_len`), YCSB's
    /// `maxscanlength` (default 100).
    pub max_scan_len: u16,
}

impl OpMix {
    /// A reads-only mix.
    pub fn read_only() -> OpMix {
        OpMix {
            read: 1.0,
            update: 0.0,
            scan: 0.0,
            rmw: 0.0,
            max_scan_len: 1,
        }
    }

    /// A point read/update mix with the given read fraction.
    pub fn read_update(read_fraction: f64) -> OpMix {
        assert!(
            (0.0..=1.0).contains(&read_fraction),
            "read fraction out of range"
        );
        OpMix {
            read: read_fraction,
            update: 1.0 - read_fraction,
            scan: 0.0,
            rmw: 0.0,
            max_scan_len: 1,
        }
    }

    /// YCSB workload E's mix: scan-heavy (95% scans, 5% updates).
    pub fn scan_heavy() -> OpMix {
        OpMix {
            read: 0.0,
            update: 0.05,
            scan: 0.95,
            rmw: 0.0,
            max_scan_len: 100,
        }
    }

    /// YCSB workload F's mix: 50% reads, 50% read-modify-writes.
    pub fn rmw_heavy() -> OpMix {
        OpMix {
            read: 0.5,
            update: 0.0,
            scan: 0.0,
            rmw: 0.5,
            max_scan_len: 1,
        }
    }

    fn total(&self) -> f64 {
        self.read + self.update + self.scan + self.rmw
    }

    /// Validate the mix (non-negative weights, positive total, sane scan
    /// length).
    pub fn validate(&self) -> Result<(), String> {
        if self.read < 0.0 || self.update < 0.0 || self.scan < 0.0 || self.rmw < 0.0 {
            return Err("negative operation weight".into());
        }
        if self.total() <= 0.0 {
            return Err("operation weights sum to zero".into());
        }
        if self.scan > 0.0 && self.max_scan_len == 0 {
            return Err("scan weight set but max_scan_len is zero".into());
        }
        Ok(())
    }

    /// Draw the class of the next operation.
    pub fn sample(&self, rng: &mut StdRng) -> OpClass {
        let x: f64 = rng.random::<f64>() * self.total();
        if x < self.read {
            OpClass::Read
        } else if x < self.read + self.update {
            OpClass::Update
        } else if x < self.read + self.update + self.scan {
            OpClass::Scan
        } else {
            OpClass::ReadModifyWrite
        }
    }

    /// Draw a scan length.
    pub fn scan_len(&self, rng: &mut StdRng) -> u16 {
        if self.max_scan_len <= 1 {
            1
        } else {
            rng.random_range(1..=self.max_scan_len)
        }
    }

    /// The fraction of *primitive accesses* that are reads, in
    /// expectation (scans are reads; an RMW is one read + one write).
    pub fn expected_read_fraction(&self) -> f64 {
        let mean_scan = (1.0 + self.max_scan_len as f64) / 2.0;
        let reads = self.read + self.scan * mean_scan + self.rmw;
        let writes = self.update + self.rmw;
        reads / (reads + writes)
    }

    /// Expected primitive accesses per operation.
    pub fn expected_accesses_per_op(&self) -> f64 {
        let mean_scan = (1.0 + self.max_scan_len as f64) / 2.0;
        (self.read + self.update + self.scan * mean_scan + self.rmw * 2.0) / self.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn read_update_mix_ratios() {
        let mix = OpMix::read_update(0.7);
        let mut rng = rng();
        let mut reads = 0;
        for _ in 0..20_000 {
            if mix.sample(&mut rng) == OpClass::Read {
                reads += 1;
            }
        }
        let frac = reads as f64 / 20_000.0;
        assert!((frac - 0.7).abs() < 0.02, "read fraction {frac}");
    }

    #[test]
    fn scan_heavy_samples_scans() {
        let mix = OpMix::scan_heavy();
        let mut rng = rng();
        let mut scans = 0;
        for _ in 0..10_000 {
            if mix.sample(&mut rng) == OpClass::Scan {
                scans += 1;
            }
        }
        assert!(scans > 9_000, "scans {scans}");
    }

    #[test]
    fn scan_lengths_are_in_range() {
        let mix = OpMix::scan_heavy();
        let mut rng = rng();
        for _ in 0..1_000 {
            let len = mix.scan_len(&mut rng);
            assert!((1..=100).contains(&len));
        }
        assert_eq!(OpMix::read_only().scan_len(&mut rng), 1);
    }

    #[test]
    fn validation_catches_bad_mixes() {
        assert!(OpMix::read_only().validate().is_ok());
        let negative = OpMix {
            read: -1.0,
            ..OpMix::read_only()
        };
        assert!(negative.validate().is_err());
        let empty = OpMix {
            read: 0.0,
            update: 0.0,
            scan: 0.0,
            rmw: 0.0,
            max_scan_len: 1,
        };
        assert!(empty.validate().is_err());
        let bad_scan = OpMix {
            scan: 1.0,
            max_scan_len: 0,
            ..OpMix::read_only()
        };
        assert!(bad_scan.validate().is_err());
    }

    #[test]
    fn expected_read_fraction_formulas() {
        assert_eq!(OpMix::read_only().expected_read_fraction(), 1.0);
        assert_eq!(OpMix::read_update(0.5).expected_read_fraction(), 0.5);
        // RMW-heavy: per op, reads = 0.5 + 0.5, writes = 0.5 -> 2/3.
        let f = OpMix::rmw_heavy().expected_read_fraction();
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
        // Scan-heavy is read-dominated.
        assert!(OpMix::scan_heavy().expected_read_fraction() > 0.99);
    }

    #[test]
    fn accesses_per_op() {
        assert_eq!(OpMix::read_only().expected_accesses_per_op(), 1.0);
        assert_eq!(OpMix::rmw_heavy().expected_accesses_per_op(), 1.5);
        assert!(OpMix::scan_heavy().expected_accesses_per_op() > 40.0);
    }

    #[test]
    fn sampling_is_deterministic() {
        let mix = OpMix::scan_heavy();
        let a: Vec<OpClass> = {
            let mut r = rng();
            (0..50).map(|_| mix.sample(&mut r)).collect()
        };
        let b: Vec<OpClass> = {
            let mut r = rng();
            (0..50).map(|_| mix.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
