//! YCSB-style workload substrate for the Mnemo reproduction.
//!
//! The paper drives its key-value stores with a modified Yahoo! Cloud
//! Serving Benchmark client, using five custom workloads (Table III) that
//! pair request distributions with social-media record-size classes. This
//! crate rebuilds that client side:
//!
//! * [`dist`] — key choosers: zipfian (Gray et al., as in YCSB's
//!   `ZipfianGenerator`), scrambled zipfian, hotspot, latest (with content
//!   churn), uniform and sequential.
//! * [`sizes`] — record-size classes from the paper's Fig. 4: thumbnail
//!   (~100 KB), text post (~10 KB), photo caption (~1 KB), with lognormal
//!   spread, plus per-key size assignment models.
//! * [`workload`] — [`WorkloadSpec`] and the five
//!   Table III presets (Trending, News Feed, Timeline, Edit Thumbnail,
//!   Trending Preview).
//! * [`trace`] — materialised request traces and the CDF utilities behind
//!   Figs. 3 and 4.
//! * [`sample`] — workload downsampling by random eviction at fixed
//!   intervals (Section V, "Workload downsampling").
//!
//! # Example
//!
//! ```
//! use ycsb::workload::WorkloadSpec;
//!
//! let spec = WorkloadSpec::trending();
//! let trace = spec.generate(42);
//! assert_eq!(trace.len(), spec.requests);
//! // The hotspot distribution concentrates on 20% of the keys.
//! let hot = trace.unique_keys_requested();
//! assert!(hot > 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod fileio;
pub mod fit;
pub mod opmix;
pub mod sample;
pub mod sizes;
pub mod trace;
pub mod workload;

pub use dist::{DistKind, KeyChooser};
pub use opmix::{OpClass, OpMix};
pub use sizes::{SizeClass, SizeModel};
pub use trace::{AccessEvent, Op, Request, Trace};
pub use workload::WorkloadSpec;
