//! Record-size classes (the paper's Fig. 4).
//!
//! The paper infers record sizes from "social media cheat sheets": photo
//! thumbnails around 100 KB, text posts around 10 KB and photo captions
//! around 1 KB. Sizes within a class follow a right-skewed lognormal
//! spread, as the Fig. 4 CDFs show. Each key's size is assigned once, at
//! load time, and stays fixed for the run.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// One social-media record-size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeClass {
    /// Photo thumbnail, ~100 KB.
    Thumbnail,
    /// Text post, ~10 KB.
    TextPost,
    /// Photo caption, ~1 KB.
    Caption,
}

impl SizeClass {
    /// All classes, largest first (presentation order of Fig. 4).
    pub const ALL: [SizeClass; 3] = [
        SizeClass::Thumbnail,
        SizeClass::TextPost,
        SizeClass::Caption,
    ];

    /// Median size in bytes.
    pub fn median_bytes(self) -> u64 {
        match self {
            SizeClass::Thumbnail => 100 * 1024,
            SizeClass::TextPost => 10 * 1024,
            SizeClass::Caption => 1024,
        }
    }

    /// Lognormal sigma of the class (spread of Fig. 4's curves).
    pub fn sigma(self) -> f64 {
        match self {
            SizeClass::Thumbnail => 0.35,
            SizeClass::TextPost => 0.5,
            SizeClass::Caption => 0.6,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SizeClass::Thumbnail => "thumbnail",
            SizeClass::TextPost => "text post",
            SizeClass::Caption => "photo caption",
        }
    }

    /// Draw a size: lognormal around the median, clamped to [64 B, 1 MB].
    pub fn sample(self, rng: &mut StdRng) -> u64 {
        let mu = (self.median_bytes() as f64).ln();
        let z = standard_normal(rng);
        let bytes = (mu + self.sigma() * z).exp();
        (bytes.round() as u64).clamp(64, 1 << 20)
    }

    /// Exact CDF of the (unclamped) lognormal model at `bytes` — used to
    /// regenerate Fig. 4 without sampling noise.
    pub fn cdf(self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        let mu = (self.median_bytes() as f64).ln();
        let z = (bytes.ln() - mu) / self.sigma();
        normal_cdf(z)
    }
}

/// Standard normal via Box–Muller (one variate per call).
fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Φ(z) via the Abramowitz–Stegun erf approximation (|err| < 1.5e-7).
fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// How a workload assigns sizes to keys.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SizeModel {
    /// Every key belongs to one class.
    Single(SizeClass),
    /// Keys are split between classes by weight (e.g. Trending Preview:
    /// thumbnail + caption + news summary per item). Assignment is by key
    /// hash, so it is stable across runs and independent of the request
    /// distribution.
    Mixed(Vec<(SizeClass, f64)>),
    /// A free-form lognormal: values centred on `median_bytes` with
    /// log-sd `sigma`. Captures measured production distributions (e.g.
    /// Facebook's memcached ETC pool: tiny values with a very long tail,
    /// Atikoglu et al. 2012) that the social-media classes do not.
    Lognormal {
        /// Median value size in bytes.
        median_bytes: u64,
        /// Lognormal sigma (spread).
        sigma: f64,
    },
}

impl SizeModel {
    /// The class a given key belongs to; `None` for free-form models.
    pub fn class_of(&self, key: u64) -> Option<SizeClass> {
        match self {
            SizeModel::Single(c) => Some(*c),
            SizeModel::Mixed(parts) => {
                assert!(
                    !parts.is_empty(),
                    "mixed size model needs at least one class"
                );
                let total: f64 = parts.iter().map(|(_, w)| w).sum();
                // Map the key hash to [0, total) and walk the weights.
                let h = crate::dist::fnv1a64(key ^ 0xABCD_EF01) as f64 / u64::MAX as f64 * total;
                let mut acc = 0.0;
                for (class, w) in parts {
                    acc += w;
                    if h < acc {
                        return Some(*class);
                    }
                }
                {
                    // mnemo-lint: allow(R001, "every classed model is built from a nonempty static class table")
                    Some(parts.last().expect("nonempty").0)
                }
            }
            SizeModel::Lognormal { .. } => None,
        }
    }

    /// Draw the stored size of `key` (deterministic per `(key, seed)`).
    pub fn size_of(&self, key: u64, seed: u64) -> u64 {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed ^ crate::dist::fnv1a64(key));
        match self {
            SizeModel::Lognormal {
                median_bytes,
                sigma,
            } => {
                let mu = (*median_bytes as f64).ln();
                let z = standard_normal(&mut rng);
                ((mu + sigma * z).exp().round() as u64).clamp(16, 1 << 20)
            }
            _ => {
                // mnemo-lint: allow(R001, "class_of returns Some for every non-lognormal model and this arm excludes Lognormal")
                self.class_of(key).expect("classed model").sample(&mut rng)
            }
        }
    }

    /// Mean of the class medians weighted by assignment — a quick
    /// order-of-magnitude footprint estimate.
    pub fn approx_mean_bytes(&self) -> f64 {
        match self {
            SizeModel::Single(c) => c.median_bytes() as f64,
            SizeModel::Mixed(parts) => {
                let total: f64 = parts.iter().map(|(_, w)| w).sum();
                parts
                    .iter()
                    .map(|(c, w)| c.median_bytes() as f64 * w / total)
                    .sum()
            }
            // Lognormal mean = median * exp(sigma^2 / 2).
            SizeModel::Lognormal {
                median_bytes,
                sigma,
            } => *median_bytes as f64 * (sigma * sigma / 2.0).exp(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn medians_are_the_paper_values() {
        assert_eq!(SizeClass::Thumbnail.median_bytes(), 102_400);
        assert_eq!(SizeClass::TextPost.median_bytes(), 10_240);
        assert_eq!(SizeClass::Caption.median_bytes(), 1_024);
    }

    #[test]
    fn samples_center_on_median() {
        let mut rng = StdRng::seed_from_u64(1);
        for class in SizeClass::ALL {
            let mut samples: Vec<u64> = (0..5000).map(|_| class.sample(&mut rng)).collect();
            samples.sort_unstable();
            let med = samples[samples.len() / 2] as f64;
            let expect = class.median_bytes() as f64;
            assert!(
                (med / expect - 1.0).abs() < 0.1,
                "{}: median {med} vs {expect}",
                class.name()
            );
        }
    }

    #[test]
    fn samples_are_clamped() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let s = SizeClass::Caption.sample(&mut rng);
            assert!((64..=1 << 20).contains(&s));
        }
    }

    #[test]
    fn cdf_is_monotone_and_half_at_median() {
        for class in SizeClass::ALL {
            let m = class.median_bytes() as f64;
            assert!((class.cdf(m) - 0.5).abs() < 1e-6, "{}", class.name());
            assert!(class.cdf(m / 4.0) < class.cdf(m));
            assert!(class.cdf(m) < class.cdf(m * 4.0));
            assert_eq!(class.cdf(0.0), 0.0);
            assert!(class.cdf(1e12) > 0.9999);
        }
    }

    #[test]
    fn classes_are_an_order_of_magnitude_apart() {
        // Fig. 4's log-x axis shows three well-separated curves.
        let t = SizeClass::Thumbnail.median_bytes();
        let p = SizeClass::TextPost.median_bytes();
        let c = SizeClass::Caption.median_bytes();
        assert_eq!(t / p, 10);
        assert_eq!(p / c, 10);
    }

    #[test]
    fn single_model_is_constant_class() {
        let m = SizeModel::Single(SizeClass::TextPost);
        for key in 0..100 {
            assert_eq!(m.class_of(key), Some(SizeClass::TextPost));
        }
    }

    #[test]
    fn mixed_model_respects_weights() {
        let m = SizeModel::Mixed(vec![
            (SizeClass::Thumbnail, 1.0),
            (SizeClass::TextPost, 1.0),
            (SizeClass::Caption, 2.0),
        ]);
        let mut counts = [0usize; 3];
        for key in 0..40_000u64 {
            match m.class_of(key).expect("mixed model is classed") {
                SizeClass::Thumbnail => counts[0] += 1,
                SizeClass::TextPost => counts[1] += 1,
                SizeClass::Caption => counts[2] += 1,
            }
        }
        let total = 40_000.0;
        assert!((counts[0] as f64 / total - 0.25).abs() < 0.02, "{counts:?}");
        assert!((counts[1] as f64 / total - 0.25).abs() < 0.02, "{counts:?}");
        assert!((counts[2] as f64 / total - 0.50).abs() < 0.02, "{counts:?}");
    }

    #[test]
    fn size_of_is_deterministic() {
        let m = SizeModel::Single(SizeClass::Thumbnail);
        assert_eq!(m.size_of(7, 42), m.size_of(7, 42));
        assert_ne!(m.size_of(7, 42), m.size_of(8, 42));
    }

    #[test]
    fn approx_mean_bytes() {
        let single = SizeModel::Single(SizeClass::Caption);
        assert_eq!(single.approx_mean_bytes(), 1024.0);
        let mixed = SizeModel::Mixed(vec![(SizeClass::Thumbnail, 1.0), (SizeClass::Caption, 1.0)]);
        assert!((mixed.approx_mean_bytes() - (102_400.0 + 1024.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn lognormal_model_centres_on_median() {
        let m = SizeModel::Lognormal {
            median_bytes: 300,
            sigma: 1.2,
        };
        assert!(m.class_of(0).is_none());
        let mut sizes: Vec<u64> = (0..5000).map(|k| m.size_of(k, 9)).collect();
        sizes.sort_unstable();
        let med = sizes[sizes.len() / 2];
        assert!((200..=450).contains(&med), "median {med}");
        // Long tail: p99 far above the median (the ETC signature).
        let p99 = sizes[sizes.len() * 99 / 100];
        assert!(p99 > med * 10, "p99 {p99} vs median {med}");
        // Mean formula.
        assert!((m.approx_mean_bytes() - 300.0 * (1.2f64 * 1.2 / 2.0).exp()).abs() < 1e-9);
    }
}
