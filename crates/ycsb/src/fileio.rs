//! Trace (de)serialisation — the workload-descriptor file format.
//!
//! Mnemo's interface (paper §IV) expects "the target workload, in a form
//! of a key sequence and the corresponding request type" plus the
//! key-value sizes. This module defines a line-oriented text format for
//! exactly that, so real captured workloads can be fed to the advisor:
//!
//! ```text
//! # mnemo-trace v1
//! name <workload name>
//! keys <key count>
//! size <key> <bytes>        # one per key, any order, all keys covered
//! req <key> <R|U>           # one per request, in issue order
//! ```
//!
//! Lines starting with `#` (after the magic first line) and blank lines
//! are ignored.

use crate::trace::{Op, Request, Trace};
use std::io::{self, BufRead, Write};

/// The format magic on line one.
pub const MAGIC: &str = "# mnemo-trace v1";

/// Upper bound on the declared key count. The parser eagerly allocates
/// one slot per key, so a corrupt `keys` line must not be allowed to
/// request an absurd allocation before any `size` line is read.
pub const MAX_KEYS: u64 = 1 << 32;

/// Parse errors with line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// First line is not the expected magic.
    BadMagic,
    /// A malformed or unknown directive.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A `size`/`req` key outside `0..keys`.
    KeyOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending key.
        key: u64,
    },
    /// Not every key received a `size` line.
    MissingSizes {
        /// How many keys lack a size.
        missing: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadMagic => write!(f, "missing '{MAGIC}' header"),
            ParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::KeyOutOfRange { line, key } => {
                write!(f, "line {line}: key {key} out of range")
            }
            ParseError::MissingSizes { missing } => {
                write!(f, "{missing} keys have no size line")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Errors from [`read_trace`]: I/O or parse.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Format violation.
    Parse(ParseError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io error: {e}"),
            ReadError::Parse(e) => write!(f, "parse error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl From<ParseError> for ReadError {
    fn from(e: ParseError) -> Self {
        ReadError::Parse(e)
    }
}

/// Serialise a trace.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    writeln!(w, "{MAGIC}")?;
    writeln!(w, "name {}", trace.name)?;
    writeln!(w, "keys {}", trace.keys())?;
    for (key, &bytes) in trace.sizes.iter().enumerate() {
        writeln!(w, "size {key} {bytes}")?;
    }
    for r in &trace.requests {
        let op = match r.op {
            Op::Read => 'R',
            Op::Update => 'U',
        };
        writeln!(w, "req {} {op}", r.key)?;
    }
    Ok(())
}

/// Serialise to a string.
pub fn trace_to_string(trace: &Trace) -> String {
    let mut buf = Vec::new();
    // mnemo-lint: allow(R001, "io::Write for Vec<u8> is infallible by its contract")
    write_trace(trace, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8_lossy(&buf).into_owned()
}

/// Deserialise a trace.
pub fn read_trace<R: BufRead>(r: R) -> Result<Trace, ReadError> {
    let mut lines = r.lines();
    let first = lines.next().ok_or(ParseError::BadMagic)??;
    if first.trim() != MAGIC {
        return Err(ParseError::BadMagic.into());
    }
    let mut name = String::from("unnamed");
    let mut sizes: Vec<Option<u64>> = Vec::new();
    let mut keys: Option<u64> = None;
    let mut requests = Vec::new();
    for (idx, line) in lines.enumerate() {
        let line_no = idx + 2;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |reason: &str| ParseError::BadLine {
            line: line_no,
            reason: reason.into(),
        };
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("name") => {
                name = parts.collect::<Vec<_>>().join(" ");
                if name.is_empty() {
                    return Err(bad("empty name").into());
                }
            }
            Some("keys") => {
                if keys.is_some() {
                    return Err(bad("duplicate 'keys' directive").into());
                }
                let n: u64 = parts
                    .next()
                    .ok_or_else(|| bad("missing key count"))?
                    .parse()
                    .map_err(|_| bad("key count is not a number"))?;
                if n > MAX_KEYS {
                    return Err(bad(&format!("key count {n} exceeds the {MAX_KEYS} limit")).into());
                }
                keys = Some(n);
                sizes = vec![None; n as usize];
            }
            Some("size") => {
                let n = keys.ok_or_else(|| bad("'size' before 'keys'"))?;
                let key: u64 = parts
                    .next()
                    .ok_or_else(|| bad("missing key"))?
                    .parse()
                    .map_err(|_| bad("key is not a number"))?;
                if key >= n {
                    return Err(ParseError::KeyOutOfRange { line: line_no, key }.into());
                }
                let bytes: u64 = parts
                    .next()
                    .ok_or_else(|| bad("missing byte count"))?
                    .parse()
                    .map_err(|_| bad("byte count is not a number"))?;
                sizes[key as usize] = Some(bytes);
            }
            Some("req") => {
                let n = keys.ok_or_else(|| bad("'req' before 'keys'"))?;
                let key: u64 = parts
                    .next()
                    .ok_or_else(|| bad("missing key"))?
                    .parse()
                    .map_err(|_| bad("key is not a number"))?;
                if key >= n {
                    return Err(ParseError::KeyOutOfRange { line: line_no, key }.into());
                }
                let op = match parts.next() {
                    Some("R") | Some("r") => Op::Read,
                    Some("U") | Some("u") | Some("W") | Some("w") => Op::Update,
                    Some(other) => return Err(bad(&format!("unknown op '{other}'")).into()),
                    None => return Err(bad("missing op").into()),
                };
                requests.push(Request { key, op });
            }
            Some(other) => return Err(bad(&format!("unknown directive '{other}'")).into()),
            None => unreachable!("blank lines were skipped"),
        }
    }
    let missing = sizes.iter().filter(|s| s.is_none()).count();
    if missing > 0 {
        return Err(ParseError::MissingSizes { missing }.into());
    }
    Ok(Trace {
        name,
        sizes: sizes.into_iter().flatten().collect(),
        requests,
    })
}

/// Deserialise from a string.
pub fn trace_from_str(s: &str) -> Result<Trace, ReadError> {
    read_trace(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_preserves_trace() {
        let t = WorkloadSpec::edit_thumbnail().scaled(50, 400).generate(9);
        let text = trace_to_string(&t);
        let back = trace_from_str(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!(
            "{MAGIC}\n# a comment\n\nname demo trace\nkeys 2\nsize 0 100\nsize 1 200\n\nreq 0 R\n# another\nreq 1 U\n"
        );
        let t = trace_from_str(&text).unwrap();
        assert_eq!(t.name, "demo trace");
        assert_eq!(t.sizes, vec![100, 200]);
        assert_eq!(t.requests.len(), 2);
        assert_eq!(t.requests[1].op, Op::Update);
    }

    #[test]
    fn rejects_missing_magic() {
        assert!(matches!(
            trace_from_str("name x\n"),
            Err(ReadError::Parse(ParseError::BadMagic))
        ));
    }

    #[test]
    fn rejects_out_of_range_keys() {
        let text = format!("{MAGIC}\nkeys 1\nsize 0 10\nreq 5 R\n");
        match trace_from_str(&text) {
            Err(ReadError::Parse(ParseError::KeyOutOfRange { key: 5, .. })) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_sizes() {
        let text = format!("{MAGIC}\nkeys 3\nsize 0 10\nreq 0 R\n");
        match trace_from_str(&text) {
            Err(ReadError::Parse(ParseError::MissingSizes { missing: 2 })) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_ops_and_directives() {
        let bad_op = format!("{MAGIC}\nkeys 1\nsize 0 10\nreq 0 X\n");
        assert!(matches!(
            trace_from_str(&bad_op),
            Err(ReadError::Parse(ParseError::BadLine { .. }))
        ));
        let bad_dir = format!("{MAGIC}\nkeys 1\nsize 0 10\nfoo bar\n");
        assert!(matches!(
            trace_from_str(&bad_dir),
            Err(ReadError::Parse(ParseError::BadLine { .. }))
        ));
        let early = format!("{MAGIC}\nsize 0 10\n");
        assert!(matches!(
            trace_from_str(&early),
            Err(ReadError::Parse(ParseError::BadLine { .. }))
        ));
    }

    #[test]
    fn corrupt_fixtures_fail_with_line_numbers_not_allocations() {
        // A fuzzer-style corrupt descriptor: a key count large enough
        // that eagerly allocating a slot per key would exhaust memory.
        // The parser must refuse it at the directive, with the line.
        let absurd = format!("{MAGIC}\n# corrupted capture\nkeys 18446744073709551615\n");
        match trace_from_str(&absurd) {
            Err(ReadError::Parse(ParseError::BadLine { line: 3, reason })) => {
                assert!(reason.contains("exceeds"), "{reason}");
            }
            other => panic!("unexpected: {other:?}"),
        }

        // Just over the limit is rejected; the limit itself would be
        // accepted (not exercised: that allocation is legitimately big).
        let over = format!("{MAGIC}\nkeys {}\n", MAX_KEYS + 1);
        assert!(matches!(
            trace_from_str(&over),
            Err(ReadError::Parse(ParseError::BadLine { line: 2, .. }))
        ));

        // A second `keys` directive would silently discard every size
        // recorded so far; it is now an error instead.
        let dup = format!("{MAGIC}\nkeys 2\nsize 0 10\nsize 1 20\nkeys 2\nreq 0 R\n");
        match trace_from_str(&dup) {
            Err(ReadError::Parse(ParseError::BadLine { line: 5, reason })) => {
                assert!(reason.contains("duplicate 'keys'"), "{reason}");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn accepts_w_as_update_alias() {
        let text = format!("{MAGIC}\nkeys 1\nsize 0 10\nreq 0 W\n");
        let t = trace_from_str(&text).unwrap();
        assert_eq!(t.requests[0].op, Op::Update);
    }

    proptest! {
        #[test]
        fn roundtrip_random_traces(
            sizes in proptest::collection::vec(1u64..1_000_000, 1..40),
            reqs in proptest::collection::vec((0usize..40, proptest::bool::ANY), 0..100),
        ) {
            let keys = sizes.len();
            let requests = reqs
                .into_iter()
                .map(|(k, read)| Request {
                    key: (k % keys) as u64,
                    op: if read { Op::Read } else { Op::Update },
                })
                .collect();
            let t = Trace { name: "prop".into(), sizes, requests };
            let back = trace_from_str(&trace_to_string(&t)).unwrap();
            prop_assert_eq!(t, back);
        }
    }
}
