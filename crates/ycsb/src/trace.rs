//! Materialised request traces and the CDF utilities of Figs. 3 and 4.

use serde::{Deserialize, Serialize};

/// Request type issued by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Read the value of a key.
    Read,
    /// Overwrite the value of a key (same size).
    Update,
}

/// One client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Key index in `[0, keys)`.
    pub key: u64,
    /// Operation type.
    pub op: Op,
}

/// One observed key-value access, as seen by a streaming consumer: the
/// request plus the size of the record it touched.
///
/// This is the unit of Mnemo's *online* interface — where the offline
/// pipeline receives a whole [`Trace`] up front, a streaming profiler
/// receives an unbounded sequence of these (from [`Trace::events`] in
/// replay, or from a live server's event tap) and must summarise it in
/// bounded memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessEvent {
    /// Key accessed.
    pub key: u64,
    /// Operation type.
    pub op: Op,
    /// Size of the stored record in bytes.
    pub bytes: u64,
}

/// A full workload trace: the per-key dataset plus the request sequence.
///
/// This is exactly the "workload descriptor" Mnemo's interface requires:
/// "a key sequence and the corresponding request type" plus the key-value
/// sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Workload name (Table III row).
    pub name: String,
    /// Stored value size per key; index = key id. `sizes.len()` is the key
    /// count.
    pub sizes: Vec<u64>,
    /// The request sequence.
    pub requests: Vec<Request>,
}

impl Trace {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Number of keys in the dataset.
    pub fn keys(&self) -> u64 {
        self.sizes.len() as u64
    }

    /// Total dataset footprint in bytes.
    pub fn dataset_bytes(&self) -> u64 {
        self.sizes.iter().sum()
    }

    /// How many distinct keys are actually requested.
    pub fn unique_keys_requested(&self) -> usize {
        let mut seen = vec![false; self.sizes.len()];
        let mut n = 0;
        for r in &self.requests {
            let k = r.key as usize;
            if !seen[k] {
                seen[k] = true;
                n += 1;
            }
        }
        n
    }

    /// Stream the trace as [`AccessEvent`]s, in request order — the
    /// replay form of a live server's event feed. The iterator borrows
    /// the trace and materialises nothing.
    pub fn events(&self) -> impl Iterator<Item = AccessEvent> + '_ {
        self.requests.iter().map(|r| AccessEvent {
            key: r.key,
            op: r.op,
            bytes: self.sizes[r.key as usize],
        })
    }

    /// Per-key request counts (reads, writes).
    pub fn key_counts(&self) -> Vec<(u64, u64)> {
        let mut counts = vec![(0u64, 0u64); self.sizes.len()];
        for r in &self.requests {
            match r.op {
                Op::Read => counts[r.key as usize].0 += 1,
                Op::Update => counts[r.key as usize].1 += 1,
            }
        }
        counts
    }

    /// Fraction of requests that are reads.
    pub fn read_fraction(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        let reads = self.requests.iter().filter(|r| r.op == Op::Read).count();
        reads as f64 / self.requests.len() as f64
    }

    /// Fig. 3: CDF of request probability over the key space, *by key id*.
    /// Entry `k` is the probability that a request targets a key with id
    /// `<= k`.
    pub fn key_cdf(&self) -> Vec<f64> {
        let total = self.requests.len().max(1) as f64;
        let mut acc = 0u64;
        self.key_counts()
            .iter()
            .map(|&(r, w)| {
                acc += r + w;
                acc as f64 / total
            })
            .collect()
    }

    /// Empirical CDF of the *stored* record sizes, as `(bytes, fraction)`
    /// steps — the dataset-side view of Fig. 4.
    pub fn size_cdf(&self) -> Vec<(u64, f64)> {
        let mut sorted = self.sizes.clone();
        sorted.sort_unstable();
        let n = sorted.len().max(1) as f64;
        sorted
            .iter()
            .enumerate()
            .map(|(i, &b)| (b, (i + 1) as f64 / n))
            .collect()
    }

    /// The "mass curve" behind Mnemo's intuition: sort keys hottest-first
    /// and report the cumulative request share captured by the hottest
    /// `i+1` keys. Entry 0 is the hottest key's share.
    pub fn hot_mass_curve(&self) -> Vec<f64> {
        let mut totals: Vec<u64> = self.key_counts().iter().map(|&(r, w)| r + w).collect();
        totals.sort_unstable_by(|a, b| b.cmp(a));
        let total = self.requests.len().max(1) as f64;
        let mut acc = 0u64;
        totals
            .iter()
            .map(|&c| {
                acc += c;
                acc as f64 / total
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Trace {
        Trace {
            name: "tiny".into(),
            sizes: vec![100, 200, 300, 400],
            requests: vec![
                Request {
                    key: 0,
                    op: Op::Read,
                },
                Request {
                    key: 0,
                    op: Op::Read,
                },
                Request {
                    key: 1,
                    op: Op::Update,
                },
                Request {
                    key: 3,
                    op: Op::Read,
                },
            ],
        }
    }

    #[test]
    fn basic_accessors() {
        let t = tiny();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.keys(), 4);
        assert_eq!(t.dataset_bytes(), 1000);
        assert_eq!(t.unique_keys_requested(), 3);
        assert!((t.read_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn key_counts_split_ops() {
        let t = tiny();
        let c = t.key_counts();
        assert_eq!(c[0], (2, 0));
        assert_eq!(c[1], (0, 1));
        assert_eq!(c[2], (0, 0));
        assert_eq!(c[3], (1, 0));
    }

    #[test]
    fn key_cdf_ends_at_one() {
        let t = tiny();
        let cdf = t.key_cdf();
        assert_eq!(cdf.len(), 4);
        assert!((cdf[3] - 1.0).abs() < 1e-12);
        assert!((cdf[0] - 0.5).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn size_cdf_is_sorted_steps() {
        let t = tiny();
        let cdf = t.size_cdf();
        assert_eq!(cdf[0], (100, 0.25));
        assert_eq!(cdf[3], (400, 1.0));
    }

    #[test]
    fn hot_mass_curve_sorts_hottest_first() {
        let t = tiny();
        let curve = t.hot_mass_curve();
        assert!(
            (curve[0] - 0.5).abs() < 1e-12,
            "hottest key has 2/4 requests"
        );
        assert!((curve[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace {
            name: "e".into(),
            sizes: vec![10],
            requests: vec![],
        };
        assert!(t.is_empty());
        assert_eq!(t.read_fraction(), 0.0);
        assert_eq!(t.key_cdf(), vec![0.0]);
    }

    #[test]
    fn events_replay_requests_with_sizes() {
        let t = tiny();
        let events: Vec<AccessEvent> = t.events().collect();
        assert_eq!(events.len(), t.len());
        assert_eq!(
            events[0],
            AccessEvent {
                key: 0,
                op: Op::Read,
                bytes: 100
            }
        );
        assert_eq!(
            events[2],
            AccessEvent {
                key: 1,
                op: Op::Update,
                bytes: 200
            }
        );
        assert_eq!(
            events[3],
            AccessEvent {
                key: 3,
                op: Op::Read,
                bytes: 400
            }
        );
        for (e, r) in events.iter().zip(&t.requests) {
            assert_eq!((e.key, e.op), (r.key, r.op));
            assert_eq!(e.bytes, t.sizes[r.key as usize]);
        }
    }
}
