//! Workload specifications: the paper's Table III presets plus the six
//! standard YCSB core workloads (A-F) they were adapted from.

use crate::dist::DistKind;
use crate::opmix::{OpClass, OpMix};
use crate::sizes::{SizeClass, SizeModel};
use crate::trace::{Op, Request, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Table III's fixed key count.
pub const DEFAULT_KEYS: u64 = 10_000;
/// Table III's fixed request count.
pub const DEFAULT_REQUESTS: usize = 100_000;

/// A complete workload description — Table III row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name.
    pub name: String,
    /// Request distribution over keys.
    pub distribution: DistKind,
    /// Operation mix ("100:0 readonly" = `OpMix::read_only()`,
    /// "50:50 updateheavy" = `OpMix::read_update(0.5)`, plus scans and
    /// read-modify-writes for the YCSB core presets).
    pub ops: OpMix,
    /// How record sizes are assigned to keys.
    pub sizes: SizeModel,
    /// Number of keys.
    pub keys: u64,
    /// Number of *operations* to issue. Scans and RMWs expand into
    /// several primitive requests each, so the generated trace can hold
    /// more requests than this.
    pub requests: usize,
    /// Representative use case (Table III's last column).
    pub use_case: String,
}

impl WorkloadSpec {
    /// *Trending*: hotspot, read-only, thumbnails — "Read Facebook short
    /// Trending News". 20% of the keys receive 80% of the requests.
    pub fn trending() -> WorkloadSpec {
        WorkloadSpec {
            name: "trending".into(),
            distribution: DistKind::Hotspot {
                hot_fraction: 0.2,
                hot_op_fraction: 0.8,
            },
            ops: OpMix::read_only(),
            sizes: SizeModel::Single(SizeClass::Thumbnail),
            keys: DEFAULT_KEYS,
            requests: DEFAULT_REQUESTS,
            use_case: "Read Facebook short Trending News".into(),
        }
    }

    /// *News Feed*: latest (with churn), read-only, thumbnails — "Read
    /// Facebook News Feed". The churn period slides the hot window across
    /// the whole key space over the trace, which is why static placement
    /// helps so little here (Fig. 9).
    pub fn news_feed() -> WorkloadSpec {
        WorkloadSpec {
            name: "news feed".into(),
            distribution: DistKind::Latest {
                theta: 0.99,
                churn_period: (DEFAULT_REQUESTS as u64 / DEFAULT_KEYS).max(1),
            },
            ops: OpMix::read_only(),
            sizes: SizeModel::Single(SizeClass::Thumbnail),
            keys: DEFAULT_KEYS,
            requests: DEFAULT_REQUESTS,
            use_case: "Read Facebook News Feed".into(),
        }
    }

    /// *Timeline*: scrambled zipfian, read-only, thumbnails — "Read
    /// Facebook user's Timeline".
    pub fn timeline() -> WorkloadSpec {
        WorkloadSpec {
            name: "timeline".into(),
            distribution: DistKind::ScrambledZipfian { theta: 0.99 },
            ops: OpMix::read_only(),
            sizes: SizeModel::Single(SizeClass::Thumbnail),
            keys: DEFAULT_KEYS,
            requests: DEFAULT_REQUESTS,
            use_case: "Read Facebook user's Timeline".into(),
        }
    }

    /// *Edit Thumbnail*: scrambled zipfian, 50:50 update-heavy,
    /// thumbnails — "Edit Profile Photo - Add filter/frame".
    pub fn edit_thumbnail() -> WorkloadSpec {
        WorkloadSpec {
            name: "edit thumbnail".into(),
            distribution: DistKind::ScrambledZipfian { theta: 0.99 },
            ops: OpMix::read_update(0.5),
            sizes: SizeModel::Single(SizeClass::Thumbnail),
            keys: DEFAULT_KEYS,
            requests: DEFAULT_REQUESTS,
            use_case: "Edit Profile Photo - Add filter/frame".into(),
        }
    }

    /// *Trending Preview*: hotspot, read-only, mixed sizes (thumbnail +
    /// text post + photo caption) — "Scroll through Facebook Trending
    /// News ... preview the news photo thumbnail, caption and news
    /// summary".
    pub fn trending_preview() -> WorkloadSpec {
        WorkloadSpec {
            name: "trending preview".into(),
            distribution: DistKind::Hotspot {
                hot_fraction: 0.2,
                hot_op_fraction: 0.8,
            },
            ops: OpMix::read_only(),
            sizes: SizeModel::Mixed(vec![
                (SizeClass::Thumbnail, 1.0),
                (SizeClass::TextPost, 1.0),
                (SizeClass::Caption, 1.0),
            ]),
            keys: DEFAULT_KEYS,
            requests: DEFAULT_REQUESTS,
            use_case: "Scroll through Facebook Trending News previews".into(),
        }
    }

    /// All five Table III workloads, in the paper's row order.
    pub fn table3() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::trending(),
            WorkloadSpec::news_feed(),
            WorkloadSpec::timeline(),
            WorkloadSpec::edit_thumbnail(),
            WorkloadSpec::trending_preview(),
        ]
    }

    fn ycsb_core(name: &str, distribution: DistKind, ops: OpMix, use_case: &str) -> WorkloadSpec {
        WorkloadSpec {
            name: name.into(),
            distribution,
            ops,
            // YCSB's default record: 10 fields x 100 B; the TextPost class
            // (~1-10 KB, median 10 KB) is the closest social-data analogue
            // at caption-to-post scale — use Caption (~1 KB) to match the
            // 1 KB default.
            sizes: SizeModel::Single(SizeClass::Caption),
            keys: DEFAULT_KEYS,
            requests: DEFAULT_REQUESTS,
            use_case: use_case.into(),
        }
    }

    /// YCSB core workload A: update heavy (50:50), zipfian, 1 KB records.
    pub fn ycsb_a() -> WorkloadSpec {
        Self::ycsb_core(
            "ycsb-a",
            DistKind::Zipfian { theta: 0.99 },
            OpMix::read_update(0.5),
            "Session store recording recent actions",
        )
    }

    /// YCSB core workload B: read mostly (95:5), zipfian.
    pub fn ycsb_b() -> WorkloadSpec {
        Self::ycsb_core(
            "ycsb-b",
            DistKind::Zipfian { theta: 0.99 },
            OpMix::read_update(0.95),
            "Photo tagging: read tags, occasionally add one",
        )
    }

    /// YCSB core workload C: read only, zipfian.
    pub fn ycsb_c() -> WorkloadSpec {
        Self::ycsb_core(
            "ycsb-c",
            DistKind::Zipfian { theta: 0.99 },
            OpMix::read_only(),
            "User profile cache",
        )
    }

    /// YCSB core workload D: read latest (95:5), latest distribution.
    pub fn ycsb_d() -> WorkloadSpec {
        Self::ycsb_core(
            "ycsb-d",
            DistKind::Latest {
                theta: 0.99,
                churn_period: (DEFAULT_REQUESTS as u64 / DEFAULT_KEYS).max(1),
            },
            OpMix::read_update(0.95),
            "User status updates: read the latest",
        )
    }

    /// YCSB core workload E: short ranges (95% scans, 5% updates),
    /// zipfian scan starts, scan length uniform up to 100.
    pub fn ycsb_e() -> WorkloadSpec {
        Self::ycsb_core(
            "ycsb-e",
            DistKind::Zipfian { theta: 0.99 },
            OpMix::scan_heavy(),
            "Threaded conversations: scan a thread's posts",
        )
    }

    /// YCSB core workload F: read-modify-write (50:50 read/RMW), zipfian.
    pub fn ycsb_f() -> WorkloadSpec {
        Self::ycsb_core(
            "ycsb-f",
            DistKind::Zipfian { theta: 0.99 },
            OpMix::rmw_heavy(),
            "User database: read record, modify, write back",
        )
    }

    /// *Facebook ETC-like*: the general-purpose memcached pool measured
    /// by Atikoglu et al. (SIGMETRICS 2012), which the paper cites for
    /// its workload construction: ~30:1 GET:SET, zipfian popularity, and
    /// tiny values with a very long tail (90% under ~500 B).
    pub fn facebook_etc() -> WorkloadSpec {
        WorkloadSpec {
            name: "facebook-etc".into(),
            distribution: DistKind::Zipfian { theta: 0.99 },
            ops: OpMix::read_update(30.0 / 31.0),
            sizes: SizeModel::Lognormal {
                median_bytes: 300,
                sigma: 1.2,
            },
            keys: DEFAULT_KEYS,
            requests: DEFAULT_REQUESTS,
            use_case: "Facebook general-purpose memcached (ETC pool)".into(),
        }
    }

    /// *Scan Analytics*: uniform scan starts, 90% range scans over text
    /// posts — an analytics sideline sweeping a cache with full-range
    /// scans. The low point-skew makes per-key hotness nearly flat, so
    /// N-tier placement gains come from value sizes rather than
    /// popularity; a stress preset for tiering policies.
    pub fn scan_analytics() -> WorkloadSpec {
        WorkloadSpec {
            name: "scan analytics".into(),
            distribution: DistKind::Uniform,
            ops: OpMix {
                read: 0.1,
                update: 0.0,
                scan: 0.9,
                rmw: 0.0,
                max_scan_len: 100,
            },
            sizes: SizeModel::Single(SizeClass::TextPost),
            keys: DEFAULT_KEYS,
            requests: DEFAULT_REQUESTS,
            use_case: "Analytics job range-scanning a post cache".into(),
        }
    }

    /// *TTL Churn*: latest distribution with a fast-sliding head and a
    /// heavy update share — a cache whose entries expire on TTL and are
    /// re-written on the next miss, so the hot set continuously rolls
    /// over the key space. Static placement decays here the same way it
    /// does for News Feed, only faster; epoch re-planning policies are
    /// the ones that keep up.
    pub fn ttl_churn() -> WorkloadSpec {
        WorkloadSpec {
            name: "ttl churn".into(),
            distribution: DistKind::Latest {
                theta: 0.9,
                churn_period: (DEFAULT_REQUESTS as u64 / DEFAULT_KEYS).max(1),
            },
            ops: OpMix::read_update(0.7),
            sizes: SizeModel::Single(SizeClass::Caption),
            keys: DEFAULT_KEYS,
            requests: DEFAULT_REQUESTS,
            use_case: "TTL-expiring cache: expired entries rewritten on miss".into(),
        }
    }

    /// *Flash Crowd*: a static "latest" spike — the newest few items
    /// take nearly all traffic (a news story going viral), read-mostly,
    /// thumbnail-sized. The working set is tiny and stable, so even a
    /// sliver of top-tier capacity captures almost the whole load.
    pub fn flash_crowd() -> WorkloadSpec {
        WorkloadSpec {
            name: "flash crowd".into(),
            distribution: DistKind::Latest {
                theta: 0.99,
                churn_period: 0,
            },
            ops: OpMix::read_update(0.98),
            sizes: SizeModel::Single(SizeClass::Thumbnail),
            keys: DEFAULT_KEYS,
            requests: DEFAULT_REQUESTS,
            use_case: "Viral story: flash crowd on the newest items".into(),
        }
    }

    /// The tiering scenario suite: the paper's trending baseline plus
    /// the three N-tier stress presets (used by the `tier_matrix`
    /// bench).
    pub fn tier_suite() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::trending(),
            WorkloadSpec::scan_analytics(),
            WorkloadSpec::ttl_churn(),
            WorkloadSpec::flash_crowd(),
        ]
    }

    /// The six YCSB core workloads (A-F).
    pub fn ycsb_core_suite() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::ycsb_a(),
            WorkloadSpec::ycsb_b(),
            WorkloadSpec::ycsb_c(),
            WorkloadSpec::ycsb_d(),
            WorkloadSpec::ycsb_e(),
            WorkloadSpec::ycsb_f(),
        ]
    }

    /// Look a preset up by (case-insensitive) name, across both the
    /// Table III suite and the YCSB core suite.
    pub fn by_name(name: &str) -> Option<WorkloadSpec> {
        let needle = name.trim().to_lowercase().replace(['-', '_'], " ");
        WorkloadSpec::table3()
            .into_iter()
            .chain(WorkloadSpec::ycsb_core_suite())
            .chain(std::iter::once(WorkloadSpec::facebook_etc()))
            .chain(WorkloadSpec::tier_suite().into_iter().skip(1))
            .find(|w| w.name.replace('-', " ") == needle)
    }

    /// A scaled copy (for tests and quick sweeps).
    pub fn scaled(&self, keys: u64, requests: usize) -> WorkloadSpec {
        let mut spec = self.clone();
        // Keep the latest-churn window sliding over the whole key space.
        if let DistKind::Latest {
            theta,
            churn_period,
        } = spec.distribution
        {
            if churn_period > 0 {
                spec.distribution = DistKind::Latest {
                    theta,
                    churn_period: (requests as u64 / keys).max(1),
                };
            }
        }
        spec.keys = keys;
        spec.requests = requests;
        spec
    }

    /// The read fraction of the mix over primitive accesses (legacy
    /// accessor; `ops` is the full description).
    pub fn read_fraction(&self) -> f64 {
        self.ops.expected_read_fraction()
    }

    /// Materialise the trace: assign per-key sizes, then draw `requests`
    /// operations, expanding scans into consecutive reads and RMWs into a
    /// read + update of the same key. Deterministic per `(spec, seed)`.
    pub fn generate(&self, seed: u64) -> Trace {
        assert!(self.keys > 0, "workload needs keys");
        // mnemo-lint: allow(R001, "an invalid operation mix is a spec programming error; generate() documents the panic")
        self.ops.validate().expect("invalid operation mix");
        let sizes: Vec<u64> = (0..self.keys)
            .map(|k| self.sizes.size_of(k, seed))
            .collect();
        let mut chooser = self.distribution.chooser(self.keys);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let mut requests = Vec::with_capacity(
            (self.requests as f64 * self.ops.expected_accesses_per_op()) as usize,
        );
        for _ in 0..self.requests {
            let key = chooser.next(&mut rng);
            match self.ops.sample(&mut rng) {
                OpClass::Read => requests.push(Request { key, op: Op::Read }),
                OpClass::Update => requests.push(Request {
                    key,
                    op: Op::Update,
                }),
                OpClass::Scan => {
                    let len = self.ops.scan_len(&mut rng);
                    for i in 0..len as u64 {
                        requests.push(Request {
                            key: (key + i) % self.keys,
                            op: Op::Read,
                        });
                    }
                }
                OpClass::ReadModifyWrite => {
                    requests.push(Request { key, op: Op::Read });
                    requests.push(Request {
                        key,
                        op: Op::Update,
                    });
                }
            }
        }
        Trace {
            name: self.name.clone(),
            sizes,
            requests,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_five_rows_with_paper_parameters() {
        let rows = WorkloadSpec::table3();
        assert_eq!(rows.len(), 5);
        for w in &rows {
            assert_eq!(w.keys, 10_000);
            assert_eq!(w.requests, 100_000);
        }
        assert_eq!(rows[0].name, "trending");
        assert_eq!(rows[3].read_fraction(), 0.5, "edit thumbnail is 50:50");
        assert!(matches!(rows[4].sizes, SizeModel::Mixed(_)));
    }

    #[test]
    fn by_name_is_forgiving() {
        assert!(WorkloadSpec::by_name("Trending").is_some());
        assert!(WorkloadSpec::by_name("news_feed").is_some());
        assert!(WorkloadSpec::by_name("edit-thumbnail").is_some());
        assert!(WorkloadSpec::by_name("scan-analytics").is_some());
        assert!(WorkloadSpec::by_name("TTL_churn").is_some());
        assert!(WorkloadSpec::by_name("flash crowd").is_some());
        assert!(WorkloadSpec::by_name("nope").is_none());
    }

    #[test]
    fn tier_suite_presets_generate_and_differ_in_shape() {
        // Scan analytics: scans expand, so primitive requests exceed ops.
        let scan = WorkloadSpec::scan_analytics().scaled(200, 2_000);
        let t = scan.generate(3);
        assert!(t.len() > 2_000, "scans must expand: {}", t.len());
        // TTL churn keeps its head sliding over the whole key space.
        let churn = WorkloadSpec::ttl_churn().scaled(500, 5_000);
        assert!(matches!(
            churn.distribution,
            DistKind::Latest {
                churn_period: 10,
                ..
            }
        ));
        assert!((churn.read_fraction() - 0.7).abs() < 1e-12);
        // Flash crowd: the static head concentrates traffic on the
        // newest tenth of the key space, far more than the churning
        // TTL preset which rolls its head across all keys.
        let fc = WorkloadSpec::flash_crowd()
            .scaled(1_000, 50_000)
            .generate(5);
        let fc_curve = fc.hot_mass_curve();
        assert!(fc_curve[99] > 0.65, "hot mass at 10%: {}", fc_curve[99]);
        let tc = WorkloadSpec::ttl_churn().scaled(1_000, 50_000).generate(5);
        let tc_curve = tc.hot_mass_curve();
        assert!(
            fc_curve[99] > tc_curve[99] + 0.2,
            "flash {} vs churn {}",
            fc_curve[99],
            tc_curve[99]
        );
    }

    #[test]
    fn generate_is_deterministic() {
        let spec = WorkloadSpec::trending().scaled(100, 1000);
        assert_eq!(spec.generate(7), spec.generate(7));
        assert_ne!(spec.generate(7), spec.generate(8));
    }

    #[test]
    fn read_fraction_is_respected() {
        let spec = WorkloadSpec::edit_thumbnail().scaled(100, 20_000);
        let t = spec.generate(3);
        assert!(
            (t.read_fraction() - 0.5).abs() < 0.02,
            "{}",
            t.read_fraction()
        );
        let ro = WorkloadSpec::timeline().scaled(100, 1000).generate(3);
        assert_eq!(ro.read_fraction(), 1.0);
    }

    #[test]
    fn trending_concentrates_mass() {
        let t = WorkloadSpec::trending().scaled(1000, 50_000).generate(5);
        let curve = t.hot_mass_curve();
        // 20% of keys (hottest 200) must hold ~80% of requests.
        let at20 = curve[199];
        assert!((at20 - 0.8).abs() < 0.05, "hot mass at 20%: {at20}");
    }

    #[test]
    fn news_feed_spreads_mass() {
        let t = WorkloadSpec::news_feed().scaled(1000, 50_000).generate(5);
        let curve = t.hot_mass_curve();
        // Churning latest: the hottest 20% of keys capture far less than
        // trending's 80%.
        assert!(
            curve[199] < 0.5,
            "news feed hot mass at 20%: {}",
            curve[199]
        );
    }

    #[test]
    fn mixed_sizes_in_preview() {
        let t = WorkloadSpec::trending_preview()
            .scaled(3000, 10)
            .generate(1);
        let small = t.sizes.iter().filter(|&&s| s < 4 * 1024).count();
        let large = t.sizes.iter().filter(|&&s| s > 32 * 1024).count();
        assert!(small > 500, "captions present: {small}");
        assert!(large > 500, "thumbnails present: {large}");
    }

    #[test]
    fn scaled_keeps_latest_churn_covering_keyspace() {
        let spec = WorkloadSpec::news_feed().scaled(500, 5000);
        match spec.distribution {
            DistKind::Latest { churn_period, .. } => assert_eq!(churn_period, 10),
            _ => panic!("news feed must stay latest"),
        }
    }

    #[test]
    #[should_panic(expected = "invalid operation mix")]
    fn generate_rejects_bad_op_mix() {
        let mut spec = WorkloadSpec::trending();
        spec.ops = OpMix {
            read: -1.0,
            ..OpMix::read_only()
        };
        let _ = spec.generate(0);
    }

    #[test]
    fn ycsb_core_suite_presets() {
        let suite = WorkloadSpec::ycsb_core_suite();
        assert_eq!(suite.len(), 6);
        assert_eq!(suite[2].read_fraction(), 1.0, "C is read-only");
        assert!(WorkloadSpec::by_name("ycsb-e").is_some());
        assert!(WorkloadSpec::by_name("YCSB_F").is_some());
    }

    #[test]
    fn scans_expand_to_consecutive_reads() {
        let spec = WorkloadSpec::ycsb_e().scaled(100, 500);
        let t = spec.generate(3);
        // Expansion: ~95% scans with mean length ~50 -> far more
        // primitive requests than operations.
        assert!(t.len() > 10 * 500, "expanded to {} requests", t.len());
        assert!(t.read_fraction() > 0.99);
        // Consecutive-read structure: most successors of a read are key+1.
        let mut consecutive = 0;
        for w in t.requests.windows(2) {
            if w[1].key == (w[0].key + 1) % 100 {
                consecutive += 1;
            }
        }
        assert!(
            consecutive as f64 / t.len() as f64 > 0.8,
            "{consecutive}/{}",
            t.len()
        );
    }

    #[test]
    fn rmw_expands_to_read_then_update() {
        let spec = WorkloadSpec::ycsb_f().scaled(100, 2_000);
        let t = spec.generate(4);
        // ~50% of ops are RMW -> requests ~ 1.5x ops, read fraction 2/3.
        assert!(t.len() > 2_700 && t.len() < 3_300, "len {}", t.len());
        assert!((t.read_fraction() - 2.0 / 3.0).abs() < 0.02);
        // Every update in F follows a read of the same key.
        for w in t.requests.windows(2) {
            if w[1].op == Op::Update {
                assert_eq!(w[0].key, w[1].key);
                assert_eq!(w[0].op, Op::Read);
            }
        }
    }
}
