//! Distribution fitting: characterise an observed trace.
//!
//! §V ("Workload downsampling"): when the real workload is unavailable,
//! "the user may either create a synthetic workload with similar request
//! distribution or downsize a real workload". Downsizing is
//! [`crate::sample`]; this module supports the *synthesis* path by
//! measuring an observed trace's skew so a matching [`DistKind`] can be
//! generated:
//!
//! * the zipfian exponent `theta`, fitted by least squares on the
//!   log-log rank-frequency curve;
//! * hot-set concentration (share of requests captured by the hottest
//!   10/20/50% of keys);
//! * the Gini coefficient of the per-key request counts.

use crate::dist::DistKind;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// Fit the zipfian exponent `theta` to per-key request counts by least
/// squares on the log-log rank-frequency curve. `counts` need not be
/// sorted (ranking happens internally) and zero counts are ignored.
/// Returns `None` when fewer than three distinct ranks were observed or
/// every observed count is identical; otherwise a value clamped to
/// `[0, 3]` (0 = uniform; YCSB's default skew is 0.99).
///
/// This is shared between offline trace analysis ([`SkewReport`]) and
/// the streaming skew-drift detector, which fits it per epoch over a
/// heavy-hitter summary instead of exact counts.
pub fn fit_zipf_theta(counts: &[u64]) -> Option<f64> {
    let mut sorted: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let points: Vec<(f64, f64)> = sorted
        .iter()
        .enumerate()
        .map(|(rank, &c)| (((rank + 1) as f64).ln(), (c as f64).ln()))
        .collect();
    if points.len() < 3 {
        return None;
    }
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let (mut cov, mut var) = (0.0, 0.0);
    for (x, y) in &points {
        cov += (x - mx) * (y - my);
        var += (x - mx) * (x - mx);
    }
    if var < 1e-12 {
        None
    } else {
        Some((-cov / var).clamp(0.0, 3.0))
    }
}

/// Skew statistics of an observed trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkewReport {
    /// Fitted zipfian exponent over the rank-frequency curve (0 =
    /// uniform; YCSB's default is 0.99). `None` when fewer than three
    /// distinct ranks were observed.
    pub zipf_theta: Option<f64>,
    /// Share of requests captured by the hottest 10% of keys.
    pub hot10_mass: f64,
    /// Share captured by the hottest 20% (the paper's running example).
    pub hot20_mass: f64,
    /// Share captured by the hottest 50%.
    pub hot50_mass: f64,
    /// Gini coefficient of per-key request counts (0 = uniform, → 1 =
    /// maximally concentrated).
    pub gini: f64,
    /// Fraction of keys never requested.
    pub untouched_fraction: f64,
}

impl SkewReport {
    /// Analyse a trace.
    pub fn analyze(trace: &Trace) -> SkewReport {
        let counts: Vec<u64> = trace.key_counts().iter().map(|&(r, w)| r + w).collect();
        let total: u64 = counts.iter().sum();
        let keys = counts.len().max(1);

        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a)); // hottest first
        let mass_at = |fraction: f64| -> f64 {
            if total == 0 {
                return 0.0;
            }
            let k = ((keys as f64 * fraction).round() as usize).clamp(1, keys);
            sorted[..k].iter().sum::<u64>() as f64 / total as f64
        };

        let zipf_theta = fit_zipf_theta(&sorted);

        // Gini over the (ascending) count distribution.
        let gini = if total == 0 {
            0.0
        } else {
            let mut asc = counts.clone();
            asc.sort_unstable();
            let n = asc.len() as f64;
            let weighted: f64 = asc
                .iter()
                .enumerate()
                .map(|(i, &c)| (i as f64 + 1.0) * c as f64)
                .sum();
            (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
        };

        SkewReport {
            zipf_theta,
            hot10_mass: mass_at(0.10),
            hot20_mass: mass_at(0.20),
            hot50_mass: mass_at(0.50),
            gini,
            untouched_fraction: counts.iter().filter(|&&c| c == 0).count() as f64 / keys as f64,
        }
    }

    /// Propose a [`DistKind`] that reproduces the observed skew — the
    /// "create a synthetic workload with similar request distribution"
    /// path. Heuristic: near-uniform traces map to uniform; a heavy but
    /// internally *flat* head (the hottest 10% of keys holding about
    /// half the mass of the hottest 20%) is a hot-set signature and maps
    /// to hotspot; a head that keeps decaying within itself is zipfian
    /// and maps to a scrambled zipfian at the fitted theta.
    pub fn suggest_distribution(&self) -> DistKind {
        if self.gini < 0.15 {
            return DistKind::Uniform;
        }
        let head_decay = if self.hot20_mass > 0.0 {
            self.hot10_mass / self.hot20_mass
        } else {
            0.5
        };
        if self.hot20_mass > 0.5 && head_decay < 0.7 {
            return DistKind::Hotspot {
                hot_fraction: 0.2,
                hot_op_fraction: self.hot20_mass.min(0.95),
            };
        }
        let theta = self.zipf_theta.unwrap_or(0.99).clamp(0.1, 0.99);
        DistKind::ScrambledZipfian { theta }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opmix::OpMix;
    use crate::sizes::{SizeClass, SizeModel};
    use crate::workload::WorkloadSpec;

    fn trace_for(dist: DistKind) -> Trace {
        WorkloadSpec {
            name: "fit".into(),
            distribution: dist,
            ops: OpMix::read_only(),
            sizes: SizeModel::Single(SizeClass::Caption),
            keys: 2_000,
            requests: 60_000,
            use_case: String::new(),
        }
        .generate(13)
    }

    #[test]
    fn uniform_has_low_gini_and_no_skew() {
        let r = SkewReport::analyze(&trace_for(DistKind::Uniform));
        assert!(r.gini < 0.15, "gini {}", r.gini);
        // Order statistics over multinomial noise bias the "hottest 20%"
        // slightly above the nominal 0.20 even for a uniform workload.
        assert!(
            (0.18..0.30).contains(&r.hot20_mass),
            "hot20 {}",
            r.hot20_mass
        );
        assert_eq!(r.suggest_distribution().name(), "uniform");
    }

    #[test]
    fn zipfian_theta_is_recovered() {
        let r = SkewReport::analyze(&trace_for(DistKind::Zipfian { theta: 0.99 }));
        let theta = r.zipf_theta.expect("enough ranks");
        assert!((theta - 0.99).abs() < 0.25, "fitted theta {theta}");
        assert!(r.gini > 0.5, "zipfian is concentrated: {}", r.gini);
        assert!(matches!(
            r.suggest_distribution(),
            DistKind::ScrambledZipfian { .. }
        ));
    }

    #[test]
    fn hotspot_is_recognised() {
        let r = SkewReport::analyze(&trace_for(DistKind::Hotspot {
            hot_fraction: 0.2,
            hot_op_fraction: 0.8,
        }));
        assert!((r.hot20_mass - 0.8).abs() < 0.05, "hot20 {}", r.hot20_mass);
        match r.suggest_distribution() {
            DistKind::Hotspot {
                hot_op_fraction, ..
            } => {
                assert!((hot_op_fraction - 0.8).abs() < 0.1)
            }
            other => panic!("expected hotspot, got {other:?}"),
        }
    }

    #[test]
    fn suggested_distribution_reproduces_skew() {
        // Analyse -> synthesise -> re-analyse: the synthetic workload's
        // concentration must match the original.
        let original = SkewReport::analyze(&trace_for(DistKind::Zipfian { theta: 0.9 }));
        let synth_trace = trace_for(original.suggest_distribution());
        let synth = SkewReport::analyze(&synth_trace);
        assert!(
            (original.hot20_mass - synth.hot20_mass).abs() < 0.12,
            "original {} vs synthetic {}",
            original.hot20_mass,
            synth.hot20_mass
        );
        assert!((original.gini - synth.gini).abs() < 0.15);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace {
            name: "e".into(),
            sizes: vec![10, 10],
            requests: vec![],
        };
        let r = SkewReport::analyze(&t);
        assert_eq!(r.gini, 0.0);
        assert_eq!(r.hot20_mass, 0.0);
        assert_eq!(r.untouched_fraction, 1.0);
        assert!(r.zipf_theta.is_none());
    }

    #[test]
    fn untouched_fraction_counts_cold_keys() {
        let r = SkewReport::analyze(&trace_for(DistKind::Sequential));
        assert_eq!(r.untouched_fraction, 0.0, "sequential touches every key");
    }

    #[test]
    fn fit_zipf_theta_accepts_unsorted_counts() {
        // Exact zipfian counts c(r) = C * r^-theta, deliberately shuffled.
        let theta = 0.8;
        let mut counts: Vec<u64> = (1..=200)
            .map(|r| (1e6 * (r as f64).powf(-theta)) as u64)
            .collect();
        counts.swap(0, 150);
        counts.swap(3, 99);
        counts.push(0); // ignored
        let fitted = fit_zipf_theta(&counts).expect("enough ranks");
        assert!((fitted - theta).abs() < 0.02, "fitted {fitted}");
        // Degenerate inputs refuse to fit.
        assert_eq!(fit_zipf_theta(&[5, 4]), None);
        assert_eq!(fit_zipf_theta(&[]), None);
        // Perfectly flat counts are a zipfian with theta 0.
        assert_eq!(fit_zipf_theta(&[7, 7, 7, 7]), Some(0.0));
    }
}
