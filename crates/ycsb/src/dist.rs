//! Key choosers — the request distributions of the paper's Fig. 3.
//!
//! Every chooser is deterministic given the caller's seeded RNG, and all
//! of them draw key *indices* in `[0, keys)`. The zipfian sampler is the
//! Gray et al. algorithm used by YCSB's `ZipfianGenerator`; the scrambled
//! variant spreads the hot ranks over the key space with an FNV-1a hash,
//! exactly as YCSB's `ScrambledZipfianGenerator` does.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// YCSB's default zipfian skew constant.
pub const ZIPFIAN_CONSTANT: f64 = 0.99;

/// Which distribution a workload uses (Fig. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DistKind {
    /// Every key equally likely.
    Uniform,
    /// Keys in round-robin order.
    Sequential,
    /// Zipfian: hot keys at the *beginning* of the key range.
    Zipfian {
        /// Skew parameter (YCSB default 0.99).
        theta: f64,
    },
    /// Zipfian ranks scattered over the key space by hashing.
    ScrambledZipfian {
        /// Skew parameter (YCSB default 0.99).
        theta: f64,
    },
    /// A hot set of `hot_fraction` of the keys receives `hot_op_fraction`
    /// of the requests; the rest are uniform over the cold set.
    Hotspot {
        /// Fraction of the key space that is hot.
        hot_fraction: f64,
        /// Fraction of operations that target the hot set.
        hot_op_fraction: f64,
    },
    /// Zipfian over recency: key `head - z` for zipfian offset `z`. With
    /// `churn_period > 0` the head advances by one key every that many
    /// requests, modelling new content continuously displacing the "news
    /// feed" — the reason the paper finds News Feed workloads benefit
    /// little from *static* placement.
    Latest {
        /// Skew parameter over recency distance.
        theta: f64,
        /// Requests between head advances (0 = static head at the newest
        /// key).
        churn_period: u64,
    },
}

impl DistKind {
    /// Paper-facing name (matches Fig. 3's legend).
    pub fn name(&self) -> &'static str {
        match self {
            DistKind::Uniform => "uniform",
            DistKind::Sequential => "sequential",
            DistKind::Zipfian { .. } => "zipfian",
            DistKind::ScrambledZipfian { .. } => "scrambled zipfian",
            DistKind::Hotspot { .. } => "hotspot",
            DistKind::Latest { .. } => "latest",
        }
    }

    /// Instantiate a chooser over `keys` keys.
    pub fn chooser(&self, keys: u64) -> KeyChooser {
        assert!(keys > 0, "need at least one key");
        let core = match *self {
            DistKind::Uniform => ChooserCore::Uniform,
            DistKind::Sequential => ChooserCore::Sequential { next: 0 },
            DistKind::Zipfian { theta } => ChooserCore::Zipfian(Zipfian::new(keys, theta)),
            DistKind::ScrambledZipfian { theta } => {
                ChooserCore::Scrambled(Zipfian::new(keys, theta))
            }
            DistKind::Hotspot {
                hot_fraction,
                hot_op_fraction,
            } => {
                assert!(
                    (0.0..=1.0).contains(&hot_fraction),
                    "hot_fraction out of range"
                );
                assert!(
                    (0.0..=1.0).contains(&hot_op_fraction),
                    "hot_op_fraction out of range"
                );
                let hot_keys = ((keys as f64 * hot_fraction).round() as u64).clamp(1, keys);
                ChooserCore::Hotspot {
                    hot_keys,
                    hot_op_fraction,
                }
            }
            DistKind::Latest {
                theta,
                churn_period,
            } => ChooserCore::Latest {
                zipf: Zipfian::new(keys, theta),
                churn_period,
                head: keys - 1,
                issued: 0,
            },
        };
        KeyChooser { keys, core }
    }
}

/// A stateful key chooser (one per generated trace).
#[derive(Debug, Clone)]
pub struct KeyChooser {
    keys: u64,
    core: ChooserCore,
}

#[derive(Debug, Clone)]
enum ChooserCore {
    Uniform,
    Sequential {
        next: u64,
    },
    Zipfian(Zipfian),
    Scrambled(Zipfian),
    Hotspot {
        hot_keys: u64,
        hot_op_fraction: f64,
    },
    Latest {
        zipf: Zipfian,
        churn_period: u64,
        head: u64,
        issued: u64,
    },
}

impl KeyChooser {
    /// Number of keys this chooser draws from.
    pub fn keys(&self) -> u64 {
        self.keys
    }

    /// Draw the next key index in `[0, keys)`.
    pub fn next(&mut self, rng: &mut StdRng) -> u64 {
        let keys = self.keys;
        match &mut self.core {
            ChooserCore::Uniform => rng.random_range(0..keys),
            ChooserCore::Sequential { next } => {
                let k = *next;
                *next = (*next + 1) % keys;
                k
            }
            ChooserCore::Zipfian(z) => z.sample(rng),
            ChooserCore::Scrambled(z) => {
                let rank = z.sample(rng);
                fnv1a64(rank) % keys
            }
            ChooserCore::Hotspot {
                hot_keys,
                hot_op_fraction,
            } => {
                if rng.random_bool(*hot_op_fraction) {
                    rng.random_range(0..*hot_keys)
                } else if *hot_keys == keys {
                    rng.random_range(0..keys)
                } else {
                    rng.random_range(*hot_keys..keys)
                }
            }
            ChooserCore::Latest {
                zipf,
                churn_period,
                head,
                issued,
            } => {
                if *churn_period > 0 && *issued > 0 && *issued % *churn_period == 0 {
                    *head = (*head + 1) % keys;
                }
                *issued += 1;
                let dist = zipf.sample(rng); // 0 = newest
                (*head + keys - dist % keys) % keys
            }
        }
    }
}

/// FNV-1a 64-bit hash of a u64 (YCSB's scrambling hash).
pub fn fnv1a64(value: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for i in 0..8 {
        hash ^= (value >> (i * 8)) & 0xff;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Gray et al. "Quickly generating billion-record synthetic databases"
/// zipfian sampler over `[0, n)` — the algorithm inside YCSB's
/// `ZipfianGenerator`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Build a sampler for `n` items with skew `theta` in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Zipfian {
        assert!(n > 0, "need at least one item");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0,1), got {theta}"
        );
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Draw a rank in `[0, n)`; rank 0 is the hottest item.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.n >= 2 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let raw = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        raw.min(self.n - 1)
    }

    /// Exact probability of rank `k` (for CDF plots and tests).
    pub fn probability(&self, rank: u64) -> f64 {
        assert!(rank < self.n);
        1.0 / ((rank + 1) as f64).powf(self.theta) / self.zetan
    }
}

/// Generalised harmonic number `H_{n,theta}`.
fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn counts(kind: DistKind, keys: u64, draws: usize, seed: u64) -> Vec<u64> {
        let mut chooser = kind.chooser(keys);
        let mut rng = rng(seed);
        let mut counts = vec![0u64; keys as usize];
        for _ in 0..draws {
            counts[chooser.next(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn all_choosers_stay_in_range() {
        let kinds = [
            DistKind::Uniform,
            DistKind::Sequential,
            DistKind::Zipfian { theta: 0.99 },
            DistKind::ScrambledZipfian { theta: 0.99 },
            DistKind::Hotspot {
                hot_fraction: 0.2,
                hot_op_fraction: 0.8,
            },
            DistKind::Latest {
                theta: 0.99,
                churn_period: 10,
            },
        ];
        for kind in kinds {
            let mut chooser = kind.chooser(97);
            let mut r = rng(1);
            for _ in 0..10_000 {
                assert!(chooser.next(&mut r) < 97, "{} out of range", kind.name());
            }
        }
    }

    #[test]
    fn sequential_round_robins() {
        let mut chooser = DistKind::Sequential.chooser(3);
        let mut r = rng(0);
        let seq: Vec<u64> = (0..7).map(|_| chooser.next(&mut r)).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn uniform_is_flat() {
        let c = counts(DistKind::Uniform, 100, 100_000, 2);
        let expected = 1000.0;
        for (k, &n) in c.iter().enumerate() {
            let dev = (n as f64 - expected).abs() / expected;
            assert!(dev < 0.25, "key {k}: count {n}");
        }
    }

    #[test]
    fn zipfian_head_matches_theory() {
        let keys = 1000u64;
        let draws = 200_000;
        let c = counts(DistKind::Zipfian { theta: 0.99 }, keys, draws, 3);
        let z = Zipfian::new(keys, 0.99);
        // The Gray et al. sampler draws ranks 0 and 1 exactly; higher
        // ranks come from a continuous approximation with a small bias, so
        // only sanity-check those.
        for rank in [0u64, 1] {
            let expect = z.probability(rank) * draws as f64;
            let got = c[rank as usize] as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.15, "rank {rank}: got {got}, expect {expect:.0}");
        }
        // Heavy head, decaying tail.
        assert!(c[0] > c[1] && c[1] > c[5] && c[5] > c[500]);
        let head_share: u64 = c[..100].iter().sum();
        assert!(
            head_share as f64 / draws as f64 > 0.5,
            "top-10% share {head_share}"
        );
    }

    #[test]
    fn zipfian_probabilities_sum_to_one() {
        let z = Zipfian::new(500, 0.99);
        let sum: f64 = (0..500).map(|k| z.probability(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_keys() {
        let keys = 1000u64;
        let c = counts(DistKind::ScrambledZipfian { theta: 0.99 }, keys, 100_000, 4);
        // The hottest key must NOT be key 0 (that's the plain zipfian
        // signature); scrambling moves it somewhere pseudo-random.
        let hottest = c.iter().enumerate().max_by_key(|(_, &n)| n).unwrap().0;
        assert_ne!(hottest, 0);
        // And the same *mass concentration* as plain zipfian: few keys
        // carry a large share.
        let mut sorted = c.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = sorted.iter().take(10).sum();
        assert!(top10 as f64 / 100_000.0 > 0.3, "top-10 share {top10}");
    }

    #[test]
    fn hotspot_splits_mass_as_configured() {
        let keys = 1000u64;
        let c = counts(
            DistKind::Hotspot {
                hot_fraction: 0.2,
                hot_op_fraction: 0.8,
            },
            keys,
            100_000,
            5,
        );
        let hot: u64 = c[..200].iter().sum();
        let share = hot as f64 / 100_000.0;
        assert!((share - 0.8).abs() < 0.02, "hot share {share}");
    }

    #[test]
    fn hotspot_full_hot_set_degenerates_to_uniform() {
        let c = counts(
            DistKind::Hotspot {
                hot_fraction: 1.0,
                hot_op_fraction: 0.5,
            },
            50,
            50_000,
            6,
        );
        for &n in &c {
            assert!(n > 500, "count {n}");
        }
    }

    #[test]
    fn latest_without_churn_concentrates_on_newest() {
        let keys = 1000u64;
        let c = counts(
            DistKind::Latest {
                theta: 0.99,
                churn_period: 0,
            },
            keys,
            100_000,
            7,
        );
        // Newest key = keys-1 must be the hottest.
        let hottest = c.iter().enumerate().max_by_key(|(_, &n)| n).unwrap().0;
        assert_eq!(hottest, keys as usize - 1);
    }

    #[test]
    fn latest_with_churn_spreads_over_time() {
        let keys = 1000u64;
        // Head advances every 10 requests: over 100k requests it wraps the
        // key space 10 times, so aggregate counts are much flatter.
        let c = counts(
            DistKind::Latest {
                theta: 0.99,
                churn_period: 10,
            },
            keys,
            100_000,
            8,
        );
        let touched = c.iter().filter(|&&n| n > 0).count();
        assert!(
            touched > 900,
            "churning latest should touch nearly all keys, got {touched}"
        );
        let max = *c.iter().max().unwrap() as f64;
        assert!(
            max / 100_000.0 < 0.05,
            "no single key should dominate, max share {max}"
        );
    }

    #[test]
    fn choosers_are_deterministic_per_seed() {
        for kind in [
            DistKind::Zipfian { theta: 0.99 },
            DistKind::Hotspot {
                hot_fraction: 0.1,
                hot_op_fraction: 0.9,
            },
            DistKind::Latest {
                theta: 0.99,
                churn_period: 5,
            },
        ] {
            let a: Vec<u64> = {
                let mut ch = kind.chooser(100);
                let mut r = rng(99);
                (0..50).map(|_| ch.next(&mut r)).collect()
            };
            let b: Vec<u64> = {
                let mut ch = kind.chooser(100);
                let mut r = rng(99);
                (0..50).map(|_| ch.next(&mut r)).collect()
            };
            assert_eq!(a, b, "{}", kind.name());
        }
    }

    #[test]
    fn fnv_is_stable_and_spreading() {
        assert_ne!(fnv1a64(0), fnv1a64(1));
        // Consecutive inputs land far apart modulo a typical key count.
        let spread: Vec<u64> = (0..10).map(|v| fnv1a64(v) % 10_000).collect();
        let mut sorted = spread.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "no collisions among consecutive inputs");
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn zipfian_rejects_theta_one() {
        let _ = Zipfian::new(10, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn chooser_rejects_zero_keys() {
        let _ = DistKind::Uniform.chooser(0);
    }

    #[test]
    fn single_key_always_zero() {
        let mut ch = DistKind::Zipfian { theta: 0.5 }.chooser(1);
        let mut r = rng(1);
        for _ in 0..100 {
            assert_eq!(ch.next(&mut r), 0);
        }
    }
}
