//! Workload downsampling (Section V, "Workload downsampling").
//!
//! The paper downsizes workloads "via random sampling, where we choose to
//! evict from the workload random key requests at fixed intervals. This
//! reduces the number of requests issued, but ensures that the
//! characteristics of the original key distribution are preserved."
//!
//! [`downsample`] implements exactly that: the trace is cut into
//! fixed-size windows, and within each window a fixed number of randomly
//! chosen requests is evicted, keeping `1/factor` of the workload.

use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Default window over which random evictions are applied.
pub const DEFAULT_WINDOW: usize = 100;

/// Downsample `trace` by an integer `factor` (2 = keep half, 4 = keep a
/// quarter, ...), evicting randomly within fixed windows of
/// [`DEFAULT_WINDOW`] requests. `factor == 1` returns a clone.
pub fn downsample(trace: &Trace, factor: usize, seed: u64) -> Trace {
    downsample_with_window(trace, factor, DEFAULT_WINDOW, seed)
}

/// [`downsample`] with an explicit window size.
pub fn downsample_with_window(trace: &Trace, factor: usize, window: usize, seed: u64) -> Trace {
    assert!(factor >= 1, "factor must be >= 1");
    assert!(window >= 1, "window must be >= 1");
    if factor == 1 {
        return trace.clone();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut kept = Vec::with_capacity(trace.requests.len() / factor + window);
    for chunk in trace.requests.chunks(window) {
        // Keep ceil(len/factor) random positions of this window, in their
        // original order (the temporal structure of the trace matters for
        // distributions like `latest`).
        let keep = chunk.len().div_ceil(factor);
        let mut idx: Vec<usize> = (0..chunk.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(keep);
        idx.sort_unstable();
        kept.extend(idx.into_iter().map(|i| chunk[i]));
    }
    Trace {
        name: format!("{} (1/{factor} sample)", trace.name),
        sizes: trace.sizes.clone(),
        requests: kept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;

    fn base() -> Trace {
        WorkloadSpec::trending().scaled(500, 20_000).generate(11)
    }

    #[test]
    fn factor_one_is_identity() {
        let t = base();
        let s = downsample(&t, 1, 0);
        assert_eq!(s.requests, t.requests);
    }

    #[test]
    fn keeps_about_one_over_factor() {
        let t = base();
        for factor in [2, 4, 8, 16] {
            let s = downsample(&t, factor, 1);
            let expect = t.len() / factor;
            let got = s.len();
            assert!(
                got >= expect && got <= expect + t.len() / DEFAULT_WINDOW + 1,
                "factor {factor}: kept {got}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn preserves_dataset_and_order() {
        let t = base();
        let s = downsample(&t, 4, 2);
        assert_eq!(
            s.sizes, t.sizes,
            "the dataset is not sampled, only requests"
        );
        // Kept requests appear in original relative order: verify the kept
        // sequence is a subsequence of the original.
        let mut it = t.requests.iter();
        for r in &s.requests {
            assert!(
                it.any(|o| o == r),
                "sampled request out of order or missing"
            );
        }
    }

    #[test]
    fn preserves_distribution_shape() {
        let t = base();
        let s = downsample(&t, 8, 3);
        let full = t.hot_mass_curve();
        let samp = s.hot_mass_curve();
        // Hot mass captured by the top 20% of keys should be within a few
        // points of the full trace — the paper's preservation claim.
        let k = t.sizes.len() / 5;
        assert!(
            (full[k - 1] - samp[k - 1]).abs() < 0.05,
            "full {} vs sampled {}",
            full[k - 1],
            samp[k - 1]
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let t = base();
        assert_eq!(downsample(&t, 4, 9).requests, downsample(&t, 4, 9).requests);
        assert_ne!(
            downsample(&t, 4, 9).requests,
            downsample(&t, 4, 10).requests
        );
    }

    #[test]
    fn factor_larger_than_trace_keeps_some() {
        let t = base();
        let s = downsample_with_window(&t, 1_000_000, 100, 0);
        assert!(!s.is_empty(), "ceil keeps at least one request per window");
        assert!(s.len() <= t.len() / 100 + 1);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn rejects_zero_factor() {
        let _ = downsample(&base(), 0, 0);
    }
}
