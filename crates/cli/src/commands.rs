//! The `mnemo` subcommands.

use crate::args::Parsed;
use crate::error::CliError;
use cloudcost::{Provider, ProviderKind};
use kvsim::StoreKind;
use mnemo::advisor::{Advisor, AdvisorConfig, Consultation, OrderingKind};
use mnemo::sensitivity::SensitivityEngine;
use mnemo::ModelKind;
use mnemo_faults::FaultPlan;
use mnemo_serve::{engine::ServeConfig, ServeError};
use mnemo_stream::{Drift, DriftConfig, OnlineAdvisor, Readvice, StreamConfig};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use ycsb::{Trace, WorkloadSpec};

fn load_trace(path: &str) -> Result<Trace, CliError> {
    let file = File::open(path).map_err(|e| CliError::Io(format!("cannot open '{path}': {e}")))?;
    ycsb::fileio::read_trace(BufReader::new(file))
        .map_err(|e| CliError::Parse(format!("'{path}': {e}")))
}

fn save_trace(trace: &Trace, path: &str) -> Result<(), CliError> {
    let file =
        File::create(path).map_err(|e| CliError::Io(format!("cannot create '{path}': {e}")))?;
    ycsb::fileio::write_trace(trace, BufWriter::new(file))
        .map_err(|e| CliError::Io(format!("'{path}': {e}")))
}

/// Load the `--faults` plan when the flag is present. Distinguishes an
/// unreadable path (exit 3) from a malformed plan (exit 4, with the
/// offending line number in the message).
fn load_fault_plan(parsed: &Parsed) -> Result<Option<FaultPlan>, CliError> {
    load_fault_plan_with(parsed, &mnemo_faults::TierNames::legacy())
}

/// [`load_fault_plan`] with tier names resolved against a specific
/// hierarchy (for `mnemo tier`, where plans may name tiers like
/// `"optane"` from the hierarchy spec).
fn load_fault_plan_with(
    parsed: &Parsed,
    tiers: &mnemo_faults::TierNames,
) -> Result<Option<FaultPlan>, CliError> {
    match parsed.options.get("faults").filter(|s| !s.is_empty()) {
        None => {
            if parsed.flag("faults") {
                return Err(CliError::Usage(
                    "--faults needs a plan file (TOML or JSON)".into(),
                ));
            }
            Ok(None)
        }
        Some(path) => {
            let plan =
                FaultPlan::load_with(std::path::Path::new(path), tiers).map_err(|e| match e {
                    mnemo_faults::LoadError::Io(io) => {
                        CliError::Io(format!("cannot read fault plan '{path}': {io}"))
                    }
                    mnemo_faults::LoadError::Parse(p) => {
                        CliError::Parse(format!("fault plan '{path}': {p}"))
                    }
                })?;
            Ok(Some(plan))
        }
    }
}

fn parse_store(s: &str) -> Result<StoreKind, String> {
    match s.to_lowercase().as_str() {
        "redis" => Ok(StoreKind::Redis),
        "memcached" => Ok(StoreKind::Memcached),
        "dynamo" | "dynamodb" => Ok(StoreKind::Dynamo),
        other => Err(format!(
            "unknown store '{other}' (redis|memcached|dynamodb)"
        )),
    }
}

fn parse_provider(s: &str) -> Result<ProviderKind, String> {
    match s.to_lowercase().as_str() {
        "aws" => Ok(ProviderKind::Aws),
        "gcp" | "google" => Ok(ProviderKind::Gcp),
        "azure" => Ok(ProviderKind::Azure),
        other => Err(format!("unknown provider '{other}' (aws|gcp|azure)")),
    }
}

/// `mnemo workloads`
pub fn workloads() -> Result<String, CliError> {
    let mut out = String::from("built-in workload presets:\n\n  Table III (the paper's suite):\n");
    for w in WorkloadSpec::table3() {
        let _ = writeln!(
            out,
            "    {:<18} {:<18} {:>3.0}% reads  — {}",
            w.name,
            w.distribution.name(),
            w.read_fraction() * 100.0,
            w.use_case
        );
    }
    out.push_str("\n  YCSB core:\n");
    for w in WorkloadSpec::ycsb_core_suite() {
        let _ = writeln!(
            out,
            "    {:<18} {:<18} {:>3.0}% reads  — {}",
            w.name,
            w.distribution.name(),
            w.read_fraction() * 100.0,
            w.use_case
        );
    }
    out.push_str("\n  Tier scenarios (stress presets for `mnemo tier` / tier_matrix):\n");
    for w in WorkloadSpec::tier_suite().into_iter().skip(1) {
        let _ = writeln!(
            out,
            "    {:<18} {:<18} {:>3.0}% reads  — {}",
            w.name,
            w.distribution.name(),
            w.read_fraction() * 100.0,
            w.use_case
        );
    }
    Ok(out)
}

/// `mnemo generate <preset> --keys N --requests N --seed S -o <file>`
pub fn generate(parsed: &mut Parsed) -> Result<String, CliError> {
    let preset = parsed.positional_required("preset name")?.to_string();
    let spec = WorkloadSpec::by_name(&preset)
        .ok_or_else(|| format!("unknown preset '{preset}' (see `mnemo workloads`)"))?;
    let keys = parsed.number_or("keys", spec.keys)?;
    let requests = parsed.number_or("requests", spec.requests)?;
    let seed = parsed.number_or("seed", 42u64)?;
    let output = parsed.require("o")?;
    let trace = spec.scaled(keys, requests).generate(seed);
    save_trace(&trace, output)?;
    Ok(format!(
        "wrote '{}': {} keys, {} requests, {:.1} MB dataset -> {}",
        trace.name,
        trace.keys(),
        trace.len(),
        trace.dataset_bytes() as f64 / 1e6,
        output
    ))
}

/// Parse the advisor-related options (validated before any file I/O so
/// usage errors surface first).
fn parse_config(parsed: &Parsed) -> Result<(StoreKind, f64, AdvisorConfig), String> {
    let store = parse_store(parsed.get_or("store", "redis"))?;
    let slo: f64 = parsed.number_or("slo", 0.10)?;
    if !(0.0..=1.0).contains(&slo) {
        return Err(format!("--slo {slo} out of [0,1]"));
    }
    let price: f64 = parsed.number_or("price", 0.20)?;
    if !(0.0..1.0).contains(&price) || price == 0.0 {
        return Err(format!("--price {price} out of (0,1)"));
    }
    let ordering = match parsed.get_or("ordering", "mnemot").to_lowercase().as_str() {
        "mnemot" | "weight" => OrderingKind::MnemoT,
        "touch" => OrderingKind::TouchOrder,
        "hotness" | "hot" => OrderingKind::Hotness,
        other => return Err(format!("unknown ordering '{other}' (mnemot|touch|hotness)")),
    };
    let model = match parsed.get_or("model", "global").to_lowercase().as_str() {
        "global" | "global-average" => ModelKind::GlobalAverage,
        "size-aware" | "sizeaware" => ModelKind::SizeAware,
        other => return Err(format!("unknown model '{other}' (global|size-aware)")),
    };
    let mut config = AdvisorConfig {
        price_factor: price,
        ordering,
        model,
        ..AdvisorConfig::default()
    };
    if parsed.flag("cache-aware") {
        config = config.cache_aware();
    }
    Ok((store, slo, config))
}

fn consultation_from(
    parsed: &Parsed,
    trace: &Trace,
) -> Result<(StoreKind, f64, Consultation), CliError> {
    let (store, slo, config) = parse_config(parsed)?;
    let consultation = Advisor::new(config)
        .consult(store, trace)
        .map_err(|e| CliError::Engine(format!("consultation failed: {e}")))?;
    Ok((store, slo, consultation))
}

/// `mnemo consult <trace> [--store ...] [--slo ...] [--csv file]`
pub fn consult(parsed: &mut Parsed) -> Result<String, CliError> {
    let path = parsed.positional_required("trace file")?.to_string();
    parse_config(parsed)?; // surface option errors before file I/O
    let trace = load_trace(&path)?;
    let (store, slo, consultation) = consultation_from(parsed, &trace)?;

    let mut out = String::new();
    let b = &consultation.baselines;
    let _ = writeln!(out, "workload '{}' on {}:", trace.name, store);
    let _ = writeln!(
        out,
        "  baselines: FastMem-only {:.0} ops/s, SlowMem-only {:.0} ops/s ({:+.1}%)",
        b.fast.throughput_ops_s(),
        b.slow.throughput_ops_s(),
        b.sensitivity() * 100.0
    );
    let _ = writeln!(out, "\n  cost/performance frontier:");
    for rec in consultation.frontier(&[0.02, 0.05, slo, 0.25]) {
        let _ = writeln!(
            out,
            "    {:4.0}% slowdown budget -> {:5.1}% FastMem bytes, cost {:.2}x",
            rec.est_slowdown.max(0.0) * 100.0,
            rec.fast_ratio * 100.0,
            rec.cost_reduction
        );
    }
    let rec = consultation
        .recommend(slo)
        .ok_or_else(|| CliError::Engine("empty curve".into()))?;
    let _ = writeln!(
        out,
        "\n  recommendation @{:.0}% SLO: {} of {} keys in FastMem ({:.1}% of bytes)",
        slo * 100.0,
        rec.prefix,
        trace.keys(),
        rec.fast_ratio * 100.0
    );
    let _ = writeln!(
        out,
        "  memory cost: {:.0}% of FastMem-only; est. {:.0} ops/s ({:.1}% below best)",
        rec.cost_reduction * 100.0,
        rec.est_throughput_ops_s,
        rec.est_slowdown * 100.0
    );
    if let Some(csv_path) = parsed.options.get("csv").filter(|s| !s.is_empty()) {
        std::fs::write(csv_path, consultation.curve.to_csv())
            .map_err(|e| CliError::Io(format!("cannot write '{csv_path}': {e}")))?;
        let _ = writeln!(out, "\n  estimate curve written to {csv_path}");
    }
    if let Some(report_path) = parsed.options.get("report").filter(|s| !s.is_empty()) {
        std::fs::write(report_path, mnemo::report::markdown(&consultation, slo))
            .map_err(|e| CliError::Io(format!("cannot write '{report_path}': {e}")))?;
        let _ = writeln!(out, "  markdown report written to {report_path}");
    }
    Ok(out)
}

fn drift_label(drift: &Drift) -> String {
    match drift {
        Drift::Initial => "initial epoch".into(),
        Drift::Theta { from, to } => format!("skew drift (theta {from:.2} -> {to:.2})"),
        Drift::HotSet { overlap } => {
            format!("hot-set rotation ({:.0}% overlap)", overlap * 100.0)
        }
        Drift::Stable => "stable".into(),
    }
}

/// `mnemo watch <trace> [--epoch N] [--budget-kib N] [--telemetry DIR]`
/// plus the consult options.
pub fn watch(parsed: &mut Parsed) -> Result<String, CliError> {
    // `--follow <socket>`: instead of replaying a trace locally, attach
    // to a running `mnemo serve` daemon and stream its advice rows.
    if parsed.flag("follow") {
        return watch_follow(parsed);
    }
    let path = parsed.positional_required("trace file")?.to_string();
    let (store, slo, mut config) = parse_config(parsed)?;
    let fault_plan = load_fault_plan(parsed)?;
    config.fault_plan = fault_plan.clone();
    let epoch_len: u64 = parsed.number_or("epoch", DriftConfig::default().epoch_len)?;
    if epoch_len == 0 {
        return Err(CliError::Usage("--epoch must be >= 1".into()));
    }
    let budget_kib: usize = parsed.number_or("budget-kib", 64usize)?;
    if budget_kib < 4 {
        return Err(CliError::Usage(
            "--budget-kib must be >= 4 (no useful summary fits below that)".into(),
        ));
    }
    let telemetry_dir = parsed
        .options
        .get("telemetry")
        .filter(|s| !s.is_empty())
        .cloned();
    let trace = load_trace(&path)?;

    // The Sensitivity Engine's two baseline runs happen once, up front;
    // from then on the stream profiler carries the whole pipeline. Under
    // --faults the baselines describe the faulted testbed.
    let mut sensitivity = SensitivityEngine::new(config.spec.clone(), config.noise);
    if let Some(plan) = &fault_plan {
        sensitivity = sensitivity.with_fault_plan(plan.clone());
    }
    let baselines = sensitivity
        .measure(store, &trace)
        .map_err(|e| CliError::Engine(format!("baseline measurement failed: {e}")))?;
    let mut stream_config = StreamConfig::with_budget_bytes(budget_kib * 1024);
    stream_config.drift.epoch_len = epoch_len;
    let mut online = OnlineAdvisor::new(stream_config, Advisor::new(config), baselines, slo);

    // Replay the trace through a live server, tapping every served
    // request into the online advisor — the same hook a production
    // deployment would use. Drift decisions and advise emissions go
    // through the telemetry recorder, not just the printed summary.
    let mut tel = mnemo_telemetry::Recorder::new();
    let mut advice: Vec<Readvice> = Vec::new();
    let mut server = kvsim::Server::build(store, &trace, kvsim::Placement::AllFast)
        .map_err(|e| CliError::Engine(format!("cannot build server: {e}")))?;
    if let Some(plan) = &fault_plan {
        // The live replay suffers the plan's degradation windows and
        // shard-0 crashes, so the profiled stream is the faulted one.
        server.install_fault_plan(plan);
    }
    let report = server.run_with_tap(&trace, &mut |event| {
        advice.extend(online.on_event_telemetered(&event, &mut tel));
    });
    let mut final_forced = false;
    if advice.is_empty() {
        // Stream shorter than one epoch: advise from what we saw.
        let forced = online.readvise(Drift::Initial);
        mnemo_stream::telemetry::record_readvice(&mut tel, &forced);
        advice.push(forced);
        final_forced = true;
    }
    mnemo_stream::telemetry::record_profiler(&mut tel, online.profiler());
    let snap = tel.take_snapshot(0);

    let mut out = String::new();
    let profiler = online.profiler();
    let _ = writeln!(
        out,
        "watched '{}' on {}: {} requests at {:.0} ops/s",
        trace.name,
        store,
        report.requests,
        report.throughput_ops_s()
    );
    let _ = writeln!(
        out,
        "profiler: {:.1} KiB of {budget_kib} KiB budget, ~{} distinct keys, epochs of {epoch_len} events",
        profiler.memory_bytes() as f64 / 1024.0,
        profiler.distinct_keys(),
    );
    if let Some(plan) = &fault_plan {
        let _ = writeln!(
            out,
            "fault plan: {} event(s), seed {} (applied to baselines and the live replay)",
            plan.events.len(),
            plan.seed
        );
    }
    let _ = writeln!(
        out,
        "telemetry: {} epochs closed, {} significant drifts, {} advise emissions",
        snap.counter("stream.epochs"),
        snap.counter("stream.drift.significant"),
        snap.counter("stream.advise.emitted"),
    );
    let _ = writeln!(
        out,
        "consultations: {} (re-advising only on drift)\n",
        online.consultations()
    );
    for a in &advice {
        let at = if final_forced {
            "stream end".to_string()
        } else {
            format!("event {}", a.at_event)
        };
        match &a.recommendation {
            Some(rec) => {
                let _ = writeln!(
                    out,
                    "  {at}: {} -> {:.1}% FastMem bytes, cost {:.2}x, est slowdown {:.1}%",
                    drift_label(&a.trigger),
                    rec.fast_ratio * 100.0,
                    rec.cost_reduction,
                    rec.est_slowdown * 100.0
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  {at}: {} -> no recommendation",
                    drift_label(&a.trigger)
                );
            }
        }
    }
    if let Some(dir) = telemetry_dir {
        let _ = writeln!(out, "\n{}", export_telemetry(&dir, &[snap])?);
    }
    Ok(out)
}

/// Classify a serve-layer failure onto the CLI exit-code ladder.
fn serve_error(e: ServeError) -> CliError {
    match e {
        ServeError::Usage(m) => CliError::Usage(m),
        ServeError::Io(m) => CliError::Io(m),
        ServeError::Proto { .. } => CliError::Parse(e.to_string()),
        ServeError::Corrupt { .. } => CliError::Parse(e.to_string()),
        ServeError::Engine(m) => CliError::Engine(m),
    }
}

/// `mnemo watch --follow <socket> [--rows N]` — attach to a running
/// serve daemon and copy its advice rows to stdout as they are emitted.
/// If the daemon socket drops mid-tail, reconnects with capped
/// exponential backoff instead of bailing out.
fn watch_follow(parsed: &mut Parsed) -> Result<String, CliError> {
    let sock = parsed
        .options
        .get("follow")
        .filter(|s| !s.is_empty())
        .cloned()
        .ok_or_else(|| CliError::Usage("--follow needs the serve socket path".into()))?;
    let rows: u64 = parsed.number_or("rows", 0u64)?;
    let limit = if rows == 0 { None } else { Some(rows) };
    let mut stdout = std::io::stdout();
    let n = mnemo_serve::follow_retry(std::path::Path::new(&sock), limit, &mut stdout)
        .map_err(serve_error)?;
    Ok(format!("followed {n} row(s) from {sock}"))
}

/// Assemble the daemon configuration shared by every `serve` front end.
fn parse_serve_config(parsed: &Parsed) -> Result<ServeConfig, CliError> {
    let (store, slo, advisor) = parse_config(parsed)?;
    let faults = load_fault_plan(parsed)?;
    let tick_events: u64 = parsed.number_or("epoch", 2_048u64)?;
    if tick_events == 0 {
        return Err(CliError::Usage("--epoch must be >= 1".into()));
    }
    let drift_epoch: u64 = parsed.number_or("drift-epoch", 1_024u64)?;
    if drift_epoch == 0 {
        return Err(CliError::Usage("--drift-epoch must be >= 1".into()));
    }
    let budget_kib: usize = parsed.number_or("budget-kib", 64usize)?;
    if budget_kib < 4 {
        return Err(CliError::Usage(
            "--budget-kib must be >= 4 (no useful summary fits below that)".into(),
        ));
    }
    let queue_cap: usize = parsed.number_or("queue", 8_192usize)?;
    if queue_cap == 0 {
        return Err(CliError::Usage("--queue must be >= 1".into()));
    }
    let replan_every: u64 = parsed.number_or("replan-every", 1u64)?;
    if replan_every == 0 {
        return Err(CliError::Usage("--replan-every must be >= 1".into()));
    }
    let max_tenants: usize = parsed.number_or("max-tenants", 64usize)?;
    let share_mib: u64 = parsed.number_or("share-mib", 64u64)?;
    let mut stream = StreamConfig::with_budget_bytes(budget_kib * 1024);
    stream.drift.epoch_len = drift_epoch;
    Ok(ServeConfig {
        store,
        slo,
        advisor,
        stream,
        tick_events,
        queue_cap,
        max_tenants,
        share_bytes: share_mib << 20,
        replan_every,
        faults,
        ..ServeConfig::default()
    })
}

/// Parse the `--journal DIR [--journal-segment-kib N]
/// [--journal-sync-every N]` flags into a [`mnemo_serve::JournalPolicy`]
/// (validated before any file I/O).
fn parse_journal_policy(parsed: &Parsed) -> Result<Option<mnemo_serve::JournalPolicy>, CliError> {
    let dir = match parsed.options.get("journal").filter(|s| !s.is_empty()) {
        None => {
            if parsed.flag("journal") {
                return Err(CliError::Usage("--journal needs a directory path".into()));
            }
            return Ok(None);
        }
        Some(d) => d.clone(),
    };
    let segment_kib: u64 = parsed.number_or("journal-segment-kib", 64u64)?;
    let sync_every: u64 = parsed.number_or("journal-sync-every", 1u64)?;
    let config = mnemo_serve::JournalConfig {
        segment_bytes: segment_kib * 1024,
        sync_every,
    };
    config.validate().map_err(serve_error)?;
    Ok(Some(mnemo_serve::JournalPolicy {
        dir: std::path::PathBuf::from(dir),
        config,
    }))
}

/// `mnemo serve [--replay file | --socket path]` — the long-lived
/// multi-tenant advisor daemon. With `--replay` the request log runs on
/// the virtual clock and the transcript (byte-identical for any
/// `--jobs N`) is the whole output; with `--socket` the daemon listens
/// on a framed Unix socket until a `shutdown` command; with neither it
/// reads newline-delimited requests from stdin.
pub fn serve(parsed: &mut Parsed) -> Result<String, CliError> {
    let config = parse_serve_config(parsed)?;
    let journal = parse_journal_policy(parsed)?;
    let telemetry_dir = parsed
        .options
        .get("telemetry")
        .filter(|s| !s.is_empty())
        .cloned();
    let state_path = parsed
        .options
        .get("state")
        .filter(|s| !s.is_empty())
        .cloned();
    let state_every: u64 = parsed.number_or("state-every", 16u64)?;
    if journal.is_some() && parsed.options.get("socket").is_none_or(|s| s.is_empty()) {
        return Err(CliError::Usage(
            "--journal needs --socket (replay/stdin transcripts are already reproducible; \
             use `mnemo chaos` to exercise journaled recovery offline)"
                .into(),
        ));
    }

    if let Some(path) = parsed
        .options
        .get("replay")
        .filter(|s| !s.is_empty())
        .cloned()
    {
        let input = std::fs::read_to_string(&path)
            .map_err(|e| CliError::Io(format!("cannot read request log '{path}': {e}")))?;
        let outcome = mnemo_serve::run_replay(&input, config).map_err(serve_error)?;
        if let Some(state) = &state_path {
            let dump = mnemo_serve::state::dump(&outcome.engine);
            mnemo_serve::state::write_atomic(std::path::Path::new(state), &dump)
                .map_err(serve_error)?;
        }
        if let Some(dir) = &telemetry_dir {
            // Silent on success: stdout stays a pure row transcript so
            // it can be byte-diffed against a golden file.
            export_telemetry(dir, outcome.engine.snapshots())?;
        }
        // `main` appends one newline; hand it the rows without the
        // trailing one so stdout is exactly the transcript.
        return Ok(outcome.transcript.trim_end_matches('\n').to_string());
    }

    let policy = mnemo_serve::StatePolicy {
        path: state_path.as_ref().map(std::path::PathBuf::from),
        every_ticks: state_every,
        journal,
    };
    if let Some(sock) = parsed
        .options
        .get("socket")
        .filter(|s| !s.is_empty())
        .cloned()
    {
        let mut served = mnemo_serve::ServeLoop::bind(std::path::Path::new(&sock), config, policy)
            .map_err(serve_error)?;
        // Announce readiness immediately; `run` blocks until shutdown.
        println!("serving on {sock} (send {{\"v\":1,\"cmd\":\"shutdown\"}} to stop)");
        use std::io::Write as _;
        std::io::stdout()
            .flush()
            .map_err(|e| CliError::Io(format!("stdout: {e}")))?;
        let rows = served.run().map_err(serve_error)?;
        let mut out = String::new();
        for row in rows {
            let _ = writeln!(out, "{row}");
        }
        if let Some(dir) = &telemetry_dir {
            let _ = writeln!(
                out,
                "{}",
                export_telemetry(dir, served.engine().snapshots())?
            );
        }
        let _ = writeln!(out, "shutdown after {} tick(s)", served.engine().ticks());
        return Ok(out);
    }

    let mut input = String::new();
    std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut input)
        .map_err(|e| CliError::Io(format!("cannot read stdin: {e}")))?;
    let outcome = mnemo_serve::run_replay(&input, config).map_err(serve_error)?;
    if let Some(state) = &state_path {
        let dump = mnemo_serve::state::dump(&outcome.engine);
        mnemo_serve::state::write_atomic(std::path::Path::new(state), &dump)
            .map_err(serve_error)?;
    }
    if let Some(dir) = &telemetry_dir {
        export_telemetry(dir, outcome.engine.snapshots())?;
    }
    Ok(outcome.transcript.trim_end_matches('\n').to_string())
}

/// `mnemo chaos <request-log> [--workdir DIR]` — deterministic
/// kill/restart harness over the durable serve path. Runs the request
/// log once uninterrupted (the golden run), then again with seeded
/// kills (always including one mid-state-dump and one mid-segment-
/// rotation when the input produces them), restarting each time from
/// the state dump plus the journal tail, and byte-diffs the final
/// transcript and state dump against the golden run. Storage faults
/// from `--faults` (torn_write, bit_flip, fsync_fail, dump_corrupt)
/// strike at each kill point. Exits 7 when the runs diverge.
pub fn chaos(parsed: &mut Parsed) -> Result<String, CliError> {
    let path = parsed.positional_required("request log")?.to_string();
    let config = parse_serve_config(parsed)?;
    let defaults = mnemo_serve::chaos::ChaosConfig::default();
    let seed: u64 = parsed.number_or("seed", defaults.seed)?;
    let kills: usize = parsed.number_or("kills", defaults.kills)?;
    if kills == 0 {
        return Err(CliError::Usage("--kills must be >= 1".into()));
    }
    let every_ticks: u64 = parsed.number_or("state-every", defaults.every_ticks)?;
    let segment_kib: u64 =
        parsed.number_or("segment-kib", defaults.journal.segment_bytes / 1024)?;
    let sync_every: u64 = parsed.number_or("sync-every", defaults.journal.sync_every)?;
    let workdir = match parsed.options.get("workdir").filter(|s| !s.is_empty()) {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("mnemo-chaos-{}", std::process::id())),
    };
    let chaos_config = mnemo_serve::chaos::ChaosConfig {
        seed,
        kills,
        every_ticks,
        journal: mnemo_serve::JournalConfig {
            segment_bytes: segment_kib * 1024,
            sync_every,
        },
    };
    let input = std::fs::read_to_string(&path)
        .map_err(|e| CliError::Io(format!("cannot read request log '{path}': {e}")))?;
    let report = mnemo_serve::chaos::run_chaos(&input, config, &workdir, &chaos_config)
        .map_err(serve_error)?;
    let mut out = report.render();
    if report.converged() {
        Ok(out)
    } else {
        // Append the first diverging transcript line pair so a CI log
        // shows *where* the recovered run went wrong, not just that it
        // did; the full transcripts stay on disk under the workdir.
        if !report.transcript_identical {
            let diverged = report
                .golden_transcript
                .lines()
                .map(Some)
                .chain(std::iter::repeat(None))
                .zip(
                    report
                        .final_transcript
                        .lines()
                        .map(Some)
                        .chain(std::iter::repeat(None)),
                )
                .take_while(|(g, c)| g.is_some() || c.is_some())
                .enumerate()
                .find(|(_, (g, c))| g != c);
            if let Some((line, (golden, chaotic))) = diverged {
                let _ = write!(
                    out,
                    "\ntranscripts diverge at row {}:\n  golden: {}\n  chaos:  {}",
                    line + 1,
                    golden.unwrap_or("<missing>"),
                    chaotic.unwrap_or("<missing>")
                );
            }
        }
        let _ = write!(out, "\nworkdir kept for inspection: {}", workdir.display());
        Err(CliError::Chaos(out))
    }
}

fn export_telemetry(dir: &str, snaps: &[mnemo_telemetry::Snapshot]) -> Result<String, CliError> {
    mnemo_telemetry::export::write_dir(std::path::Path::new(dir), snaps)
        .map_err(|e| CliError::Io(format!("cannot write telemetry to '{dir}': {e}")))?;
    Ok(format!(
        "telemetry written to {dir} (telemetry.jsonl, telemetry.csv, schema.csv, columns/)"
    ))
}

/// One rendered row of the `mnemo trace` table. With `faults` the row
/// grows the recovery columns: requests served inside an active
/// degradation window and shard crashes recovered this epoch.
fn trace_row(out: &mut String, label: &str, snap: &mnemo_telemetry::Snapshot, faults: bool) {
    use mnemo_telemetry::MetricHistogram;
    let requests = snap.counter("kv.requests");
    let (p50, p99, ops) = match snap.histogram("kv.request.service_ns") {
        Some(h) if h.count() > 0 => {
            let sum_s = h.value_sum() / 1e9;
            (
                h.quantile_value(0.50),
                h.quantile_value(0.99),
                requests as f64 / sum_s.max(f64::MIN_POSITIVE),
            )
        }
        _ => (0.0, 0.0, 0.0),
    };
    let fast = snap.counter("kv.tier.fast_hits");
    let slow = snap.counter("kv.tier.slow_hits");
    let llc_hits = snap.counter("kv.llc.hits");
    let llc_total = llc_hits + snap.counter("kv.llc.misses");
    let llc_pct = if llc_total > 0 {
        llc_hits as f64 / llc_total as f64 * 100.0
    } else {
        0.0
    };
    let _ = write!(
        out,
        "  {label:>6}  {requests:>9}  {p50:>9.0}  {p99:>9.0}  {ops:>11.0}  {fast:>9}  {slow:>9}  {llc_pct:>7.1}"
    );
    if faults {
        let degraded = snap.counter("kv.fault.degraded_requests");
        let crashes = snap.counter("kv.fault.shard_crashes");
        let _ = write!(out, "  {degraded:>9}  {crashes:>7}");
    }
    out.push('\n');
}

/// `mnemo trace <trace-file|preset> [--epoch N]`
/// `[--placement fast|slow|advised] [--telemetry DIR]`
/// plus the consult options.
pub fn trace_cmd(parsed: &mut Parsed) -> Result<String, CliError> {
    let source = parsed
        .positional_required("trace file or preset name")?
        .to_string();
    let (store, slo, mut config) = parse_config(parsed)?;
    let fault_plan = load_fault_plan(parsed)?;
    config.fault_plan = fault_plan.clone();
    let epoch_len: u64 = parsed.number_or("epoch", 20_000u64)?;
    let placement_kind = parsed.get_or("placement", "advised").to_lowercase();
    let telemetry_dir = parsed
        .options
        .get("telemetry")
        .filter(|s| !s.is_empty())
        .cloned();

    // Accept a trace file, or any preset from `mnemo workloads`
    // (generated in place, scaled by --keys/--requests/--seed).
    let trace = if std::path::Path::new(&source).is_file() {
        load_trace(&source)?
    } else if let Some(spec) = WorkloadSpec::by_name(&source) {
        let keys = parsed.number_or("keys", spec.keys)?;
        let requests = parsed.number_or("requests", spec.requests)?;
        let seed = parsed.number_or("seed", 42u64)?;
        spec.scaled(keys, requests).generate(seed)
    } else {
        return Err(CliError::Usage(format!(
            "'{source}' is neither a trace file nor a preset (see `mnemo workloads`)"
        )));
    };

    let (placement, placement_desc) = match placement_kind.as_str() {
        "fast" => (kvsim::Placement::AllFast, "all keys in FastMem".to_string()),
        "slow" => (kvsim::Placement::AllSlow, "all keys in SlowMem".to_string()),
        "advised" => {
            let consultation = Advisor::new(config)
                .consult(store, &trace)
                .map_err(|e| CliError::Engine(format!("consultation failed: {e}")))?;
            // The resilient path never fails: under a fault plan that
            // makes the SLO unattainable, the nearest-feasible split is
            // used and the degradation is called out.
            let resilient = consultation.recommend_resilient(slo);
            let rec = resilient.recommendation;
            let mut desc = format!(
                "advised @{:.0}% SLO: {} of {} keys ({:.1}% of bytes) in FastMem",
                slo * 100.0,
                rec.prefix,
                trace.keys(),
                rec.fast_ratio * 100.0
            );
            if let Some(reason) = resilient.degraded {
                let _ = write!(desc, "; degraded: {reason:?}");
            }
            (
                kvsim::Placement::fast_prefix(&consultation.order, rec.prefix),
                desc,
            )
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown placement '{other}' (fast|slow|advised)"
            )))
        }
    };

    let mut server = kvsim::Server::build(store, &trace, placement)
        .map_err(|e| CliError::Engine(format!("cannot build server: {e}")))?;
    if let Some(plan) = &fault_plan {
        server.install_fault_plan(plan);
    }
    let (report, snaps) = server.run_telemetered(&trace, epoch_len);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "traced '{}' on {}: {} requests, epochs of {} ({})",
        trace.name,
        store,
        report.requests,
        if epoch_len == 0 {
            "the whole run".to_string()
        } else {
            format!("{epoch_len} requests")
        },
        placement_desc
    );
    let faults_active = fault_plan.is_some();
    if let Some(plan) = &fault_plan {
        let _ = writeln!(
            out,
            "fault plan: {} event(s), seed {} — degraded/crash recovery shown per epoch",
            plan.events.len(),
            plan.seed
        );
    }
    let _ = write!(
        out,
        "\n  {:>6}  {:>9}  {:>9}  {:>9}  {:>11}  {:>9}  {:>9}  {:>7}",
        "epoch", "requests", "p50_ns", "p99_ns", "ops/s", "fast_hits", "slow_hits", "llc_hit%"
    );
    if faults_active {
        let _ = write!(out, "  {:>9}  {:>7}", "degraded", "crashes");
    }
    out.push('\n');
    let mut total = mnemo_telemetry::Snapshot::empty(0);
    for snap in &snaps {
        trace_row(&mut out, &snap.epoch().to_string(), snap, faults_active);
        total.fold(snap);
    }
    if snaps.len() > 1 {
        trace_row(&mut out, "total", &total, faults_active);
    }
    if let Some(dir) = telemetry_dir {
        let _ = writeln!(out, "\n{}", export_telemetry(&dir, &snaps)?);
    }
    Ok(out)
}

/// `mnemo tier <trace|preset>` — N-tier hierarchy simulation with a
/// pluggable tiering policy (or the full policy catalog with
/// `--policy all`).
pub fn tier(parsed: &mut Parsed) -> Result<String, CliError> {
    use kvsim::tiered::{trace_windows, TieredServer};
    use mnemo_tier::PolicyKind;

    let source = parsed
        .positional_required("trace file or preset name")?
        .to_string();
    let hierarchy_arg = parsed.get_or("hierarchy", "dram_optane_ssd").to_string();
    let policy_arg = parsed.get_or("policy", "greedy").to_lowercase();
    let epoch: u64 = parsed.number_or("epoch", 0u64)?;
    let seed: u64 = parsed.number_or("seed", 42u64)?;
    let csv_path = parsed.options.get("csv").filter(|s| !s.is_empty()).cloned();

    // Hierarchy: a named preset, else a TOML-subset spec file with
    // line-numbered parse errors.
    let spec = match mnemo_tier::preset(&hierarchy_arg) {
        Some(s) => s,
        None => {
            mnemo_tier::load_hierarchy(std::path::Path::new(&hierarchy_arg)).map_err(
                |e| match e {
                    mnemo_tier::HierarchyLoadError::Io(io) => CliError::Io(format!(
                        "cannot read hierarchy '{hierarchy_arg}' (not a preset: {}): {io}",
                        mnemo_tier::PRESETS.join("|")
                    )),
                    mnemo_tier::HierarchyLoadError::Parse(p) => {
                        CliError::Parse(format!("hierarchy '{hierarchy_arg}': {p}"))
                    }
                },
            )?
        }
    };

    // Fault plans may name tiers by the hierarchy's own names.
    let names: Vec<&str> = spec.tiers.iter().map(|t| t.name.as_str()).collect();
    let fault_plan = load_fault_plan_with(parsed, &mnemo_faults::TierNames::from_names(&names))?;

    let trace = if std::path::Path::new(&source).is_file() {
        load_trace(&source)?
    } else if let Some(w) = WorkloadSpec::by_name(&source) {
        let keys = parsed.number_or("keys", w.keys)?;
        let requests = parsed.number_or("requests", w.requests)?;
        w.scaled(keys, requests).generate(seed)
    } else {
        return Err(CliError::Usage(format!(
            "'{source}' is neither a trace file nor a preset (see `mnemo workloads`)"
        )));
    };

    let kinds: Vec<PolicyKind> = if policy_arg == "all" {
        PolicyKind::ALL.to_vec()
    } else {
        policy_arg
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|name| {
                PolicyKind::by_name(name).ok_or_else(|| {
                    CliError::Usage(format!(
                        "unknown policy '{name}' (greedy|lru|asym|random|oracle|all, comma-separable)"
                    ))
                })
            })
            .collect::<Result<_, _>>()?
    };
    if kinds.is_empty() {
        return Err(CliError::Usage("no policy named in --policy".to_string()));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "tiering '{}' over '{hierarchy_arg}' ({} tiers, ${:.2}): {} requests{}",
        trace.name,
        spec.tiers.len(),
        spec.cost_usd(),
        trace.len(),
        if epoch > 0 {
            format!(", re-planning every {epoch} requests")
        } else {
            ", static placement".to_string()
        }
    );
    for t in &spec.tiers {
        let _ = writeln!(
            out,
            "  {:<10} {:>9.1} MiB  ${:.2}/GiB  {:>7.0} ns read latency",
            t.name,
            t.capacity_bytes as f64 / (1 << 20) as f64,
            t.price_per_gib,
            t.spec.read_latency_ns
        );
    }
    if fault_plan.is_some() {
        let _ = writeln!(out, "  fault plan installed");
    }

    let header = format!(
        "policy,runtime_ns,throughput_ops_s,cost_usd,cost_efficiency,moved_keys,moved_bytes,{}",
        spec.tiers
            .iter()
            .map(|t| format!("{}_bytes", t.name))
            .collect::<Vec<_>>()
            .join(",")
    );
    let mut csv_rows = Vec::new();
    let _ = writeln!(
        out,
        "\n  {:<8} {:>14} {:>12} {:>12} {:>7}  occupancy (top→bottom)",
        "policy", "runtime_ns", "ops/s", "ops/s/$", "moved"
    );
    for kind in kinds {
        let windows = trace_windows(&trace, epoch);
        let mut server = TieredServer::build_with(
            spec.clone(),
            hybridmem::clock::NoiseConfig::disabled(),
            epoch,
            kind.build(seed, &windows),
            &trace,
        )
        .map_err(|e| CliError::Engine(format!("cannot build tiered server: {e}")))?;
        if let Some(plan) = &fault_plan {
            server.install_fault_plan(plan);
        }
        let report = server.run(&trace);
        let mig = server.migration_stats();
        let throughput = report.throughput_ops_s();
        let cost_eff = throughput / spec.cost_usd();
        let occupancy: Vec<u64> = (0..spec.tiers.len())
            .map(|i| {
                server
                    .engine()
                    .bytes_in(hybridmem::TierId(u8::try_from(i).unwrap_or(u8::MAX)))
            })
            .collect();
        let _ = writeln!(
            out,
            "  {:<8} {:>14.0} {:>12.0} {:>12.1} {:>7}  {}",
            kind.name(),
            report.runtime_ns,
            throughput,
            cost_eff,
            mig.moved_keys,
            occupancy
                .iter()
                .map(|b| format!("{:.1} MiB", *b as f64 / (1 << 20) as f64))
                .collect::<Vec<_>>()
                .join(" / ")
        );
        csv_rows.push(format!(
            "{},{:.0},{:.3},{:.6},{:.6},{},{},{}",
            kind.name(),
            report.runtime_ns,
            throughput,
            spec.cost_usd(),
            cost_eff,
            mig.moved_keys,
            mig.moved_bytes,
            occupancy
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    if let Some(path) = csv_path {
        let text = format!("{header}\n{}\n", csv_rows.join("\n"));
        std::fs::write(&path, text)
            .map_err(|e| CliError::Io(format!("cannot write '{path}': {e}")))?;
        let _ = writeln!(out, "\n  [csv] {path}");
    }
    Ok(out)
}

/// `mnemo analyze <trace>`
pub fn analyze(parsed: &mut Parsed) -> Result<String, CliError> {
    let path = parsed.positional_required("trace file")?.to_string();
    let trace = load_trace(&path)?;
    let report = ycsb::fit::SkewReport::analyze(&trace);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "workload '{}': {} keys, {} requests, {:.1} MB dataset",
        trace.name,
        trace.keys(),
        trace.len(),
        trace.dataset_bytes() as f64 / 1e6
    );
    let _ = writeln!(
        out,
        "  read fraction:      {:.1}%",
        trace.read_fraction() * 100.0
    );
    let _ = writeln!(
        out,
        "  hottest 10% mass:   {:.1}%",
        report.hot10_mass * 100.0
    );
    let _ = writeln!(
        out,
        "  hottest 20% mass:   {:.1}%",
        report.hot20_mass * 100.0
    );
    let _ = writeln!(
        out,
        "  hottest 50% mass:   {:.1}%",
        report.hot50_mass * 100.0
    );
    let _ = writeln!(out, "  gini coefficient:   {:.3}", report.gini);
    if let Some(theta) = report.zipf_theta {
        let _ = writeln!(out, "  fitted zipf theta:  {theta:.2}");
    }
    let _ = writeln!(
        out,
        "  untouched keys:     {:.1}%",
        report.untouched_fraction * 100.0
    );
    let suggestion = report.suggest_distribution();
    let _ = writeln!(
        out,
        "
  synthetic equivalent: {} ({suggestion:?})",
        suggestion.name()
    );
    Ok(out)
}

/// `mnemo downsample <trace> --factor N -o <file>`
pub fn downsample(parsed: &mut Parsed) -> Result<String, CliError> {
    let path = parsed.positional_required("trace file")?.to_string();
    let factor: usize = parsed.number_or("factor", 2usize)?;
    if factor < 1 {
        return Err(CliError::Usage("--factor must be >= 1".into()));
    }
    let seed = parsed.number_or("seed", 1u64)?;
    let output = parsed.require("o")?;
    let trace = load_trace(&path)?;
    let sampled = ycsb::sample::downsample(&trace, factor, seed);
    save_trace(&sampled, output)?;
    Ok(format!(
        "kept {} of {} requests (1/{} sample) -> {}",
        sampled.len(),
        trace.len(),
        factor,
        output
    ))
}

/// `mnemo plan <trace> [--provider ...] [--deploy-gib N]`
pub fn plan(parsed: &mut Parsed) -> Result<String, CliError> {
    let path = parsed.positional_required("trace file")?.to_string();
    parse_config(parsed)?; // surface option errors before file I/O
    let trace = load_trace(&path)?;
    let (_, slo, consultation) = consultation_from(parsed, &trace)?;
    let rec = consultation
        .recommend(slo)
        .ok_or_else(|| CliError::Engine("empty curve".into()))?;
    let price: f64 = parsed.number_or("price", 0.20)?;

    // Scale the recommended ratio to the deployment size (default: the
    // dataset itself).
    let deploy_gib: f64 = parsed.number_or(
        "deploy-gib",
        trace.dataset_bytes() as f64 / (1u64 << 30) as f64,
    )?;
    let total = (deploy_gib * (1u64 << 30) as f64) as u64;
    let fast = (total as f64 * rec.fast_ratio) as u64;
    let slow = total - fast;

    let providers: Vec<ProviderKind> = match parsed.options.get("provider") {
        Some(p) if !p.is_empty() => vec![parse_provider(p)?],
        _ => ProviderKind::ALL.to_vec(),
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "deployment: {:.0} GiB total, {:.1}% DRAM ({:.1} GiB) + NVM at {:.0}% DRAM price",
        deploy_gib,
        rec.fast_ratio * 100.0,
        fast as f64 / (1u64 << 30) as f64,
        price * 100.0
    );
    for kind in providers {
        let provider = Provider::new(kind);
        match cloudcost::planner::plan(&provider, fast, slow, price) {
            Ok(p) => {
                let _ = writeln!(
                    out,
                    "  {:<24} {} + {}  ${:.3}/h vs ${:.3}/h all-DRAM ({:.1}% saved)",
                    kind.name(),
                    p.dram_instance,
                    p.nvm_instance.as_deref().unwrap_or("-"),
                    p.hourly_usd,
                    p.dram_only_hourly_usd,
                    p.savings() * 100.0
                );
            }
            Err(e) => {
                let _ = writeln!(out, "  {:<24} cannot plan: {e}", kind.name());
            }
        }
    }
    Ok(out)
}

/// `mnemo lint [--root DIR] [--format human|json|sarif] [--deny-warnings]
///             [--cache-dir DIR] [--explain CODE]`
///
/// Runs the workspace determinism/robustness linter (the same engine as
/// the standalone `mnemo-lint` binary). `--explain CODE` short-circuits
/// to the rule's documentation page. `--cache-dir` memoizes per-file
/// analyses keyed on content hashes so warm re-runs only re-lex changed
/// files. The rendered report is returned on success; when unallowed
/// findings exist it comes back as [`CliError::Lint`] so the process
/// exits 1 with the report on stdout.
pub fn lint(parsed: &mut Parsed) -> Result<String, CliError> {
    if let Some(code) = parsed.options.get("explain").filter(|v| !v.is_empty()) {
        return mnemo_lint::explain_code(code).map_err(CliError::Usage);
    }
    let root = parsed.get_or("root", ".").to_string();
    let format = match parsed.options.get("format").filter(|v| !v.is_empty()) {
        None => mnemo_lint::Format::Human,
        Some(v) => mnemo_lint::Format::parse(v)
            .ok_or_else(|| CliError::Usage(format!("unknown format '{v}' (human|json|sarif)")))?,
    };
    let deny_warnings = parsed.flag("deny-warnings");
    let cache_dir = parsed
        .options
        .get("cache-dir")
        .filter(|v| !v.is_empty())
        .map(std::path::PathBuf::from);
    let report = mnemo_lint::lint_tree_cached(std::path::Path::new(&root), cache_dir.as_deref())
        .map_err(|e| CliError::Io(format!("cannot scan '{root}': {e}")))?;
    let rendered = mnemo_lint::render(&report, format);
    if report.is_failure(deny_warnings) {
        Err(CliError::Lint(rendered))
    } else {
        Ok(rendered)
    }
}

/// `mnemo perf [run|baseline|compare] ...`
///
/// The perf-audit harness: `run` executes the pinned bench suite and
/// prints the trajectory, `baseline` additionally writes it to a JSON
/// file for later comparison, and `compare` diffs two trajectory files
/// into findings — exiting 6 ([`CliError::Perf`]) when any finding
/// fails the gate (wall-clock regression over the tolerance, any
/// deterministic-counter drift, a missing bench).
pub fn perf(parsed: &mut Parsed) -> Result<String, CliError> {
    let sub = if parsed.positional.is_empty() {
        "run".to_string()
    } else {
        parsed.positional.remove(0)
    };
    match sub.as_str() {
        "run" => perf_run(parsed, None),
        "baseline" => {
            let out = parsed.get_or("out", "perf/BENCH_CORE.json").to_string();
            perf_run(parsed, Some(out))
        }
        "compare" => perf_compare(parsed),
        other => Err(CliError::Usage(format!(
            "unknown perf subcommand '{other}' (run|baseline|compare)"
        ))),
    }
}

fn perf_run(parsed: &mut Parsed, out_override: Option<String>) -> Result<String, CliError> {
    let suite_name = parsed.get_or("suite", "smoke").to_string();
    let spec = mnemo_bench::perf::suite_spec(&suite_name)
        .ok_or_else(|| CliError::Usage(format!("unknown suite '{suite_name}' (smoke|core)")))?;
    let scale: u64 = parsed.number_or("scale", spec.default_scale)?;
    if scale == 0 {
        return Err(CliError::Usage("--scale needs a positive integer".into()));
    }
    let out = out_override.or_else(|| parsed.options.get("out").filter(|v| !v.is_empty()).cloned());
    let report = mnemo_bench::perf::run_suite(spec, scale).map_err(CliError::Engine)?;
    let mut summary = mnemo_bench::perf::run_summary(&report);
    if let Some(path) = &out {
        write_creating_parents(path, &report.to_json())?;
        summary.push_str(&format!("trajectory -> {path}\n"));
    }
    Ok(summary)
}

fn perf_compare(parsed: &mut Parsed) -> Result<String, CliError> {
    let base_path = parsed
        .positional_required("baseline trajectory JSON")?
        .to_string();
    parsed.positional.remove(0);
    let cur_path = parsed
        .positional_required("current trajectory JSON")?
        .to_string();
    parsed.positional.remove(0);
    let defaults = mnemo_bench::perf::Thresholds::default();
    let thresholds = mnemo_bench::perf::Thresholds {
        wall_tolerance: parsed.number_or("wall-tolerance", defaults.wall_tolerance)?,
        alloc_tolerance: parsed.number_or("alloc-tolerance", defaults.alloc_tolerance)?,
        ..defaults
    };
    if !thresholds.wall_tolerance.is_finite() || thresholds.wall_tolerance < 1.0 {
        return Err(CliError::Usage("--wall-tolerance must be >= 1.0".into()));
    }
    if !thresholds.alloc_tolerance.is_finite() || thresholds.alloc_tolerance < 0.0 {
        return Err(CliError::Usage("--alloc-tolerance must be >= 0".into()));
    }
    let baseline = load_trajectory(&base_path)?;
    let current = load_trajectory(&cur_path)?;
    let cmp = mnemo_bench::perf::compare(&baseline, &current, &thresholds);
    if let Some(path) = parsed
        .options
        .get("findings")
        .filter(|v| !v.is_empty())
        .cloned()
    {
        write_creating_parents(&path, &mnemo_bench::perf::findings_json(&cmp, &thresholds))?;
    }
    let summary = mnemo_bench::perf::human_summary(&baseline, &current, &cmp);
    if cmp.failures() > 0 {
        Err(CliError::Perf(summary))
    } else {
        Ok(summary)
    }
}

fn load_trajectory(path: &str) -> Result<mnemo_bench::perf::CoreReport, CliError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
    mnemo_bench::perf::CoreReport::from_json(&src)
        .map_err(|e| CliError::Parse(format!("{path}: {e}")))
}

fn write_creating_parents(path: &str, contents: &str) -> Result<(), CliError> {
    let p = std::path::Path::new(path);
    if let Some(dir) = p.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Io(format!("cannot create {}: {e}", dir.display())))?;
    }
    std::fs::write(p, contents).map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))
}
