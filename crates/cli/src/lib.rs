//! Implementation of the `mnemo` command-line tool.
//!
//! The paper describes Mnemo as "an open-source, easy to setup tool";
//! this crate is that artifact. All command logic lives in the library
//! so it is unit-testable; `main.rs` only forwards `std::env::args`.
//!
//! ```text
//! mnemo workloads
//! mnemo generate trending --keys 10000 --requests 100000 -o t.trace
//! mnemo consult t.trace --store redis --slo 0.10 --csv curve.csv
//! mnemo downsample t.trace --factor 8 -o sample.trace
//! mnemo plan t.trace --deploy-gib 256 --provider gcp
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod args;
pub mod commands;
pub mod error;

pub use error::CliError;

use std::fmt::Write as _;

/// Top-level usage text.
pub const USAGE: &str = "\
mnemo — memory capacity sizing consultant for hybrid memory systems

USAGE:
  mnemo <command> [options]

COMMANDS:
  workloads                      list the built-in workload presets
  generate <preset> -o <file>    materialise a preset into a trace file
      --keys N --requests N --seed S
  consult <trace-file>           run the full Mnemo pipeline on a trace
      --store redis|memcached|dynamodb   (default redis)
      --slo FRACTION                     (default 0.10)
      --price FRACTION                   (default 0.20)
      --ordering mnemot|touch|hotness    (default mnemot)
      --model global|size-aware          (default global)
      --cache-aware                      enable the LLC correction
      --csv <file>                       write the estimate curve CSV
      --report <file>                    write a Markdown report
  watch <trace-file>             replay the trace through a live server and
      profile it as a stream in O(k) memory, re-advising on workload drift
      --epoch N                          events per drift epoch (default 50000)
      --budget-kib N                     profiler memory budget (default 64)
      --telemetry <dir>                  export drift/advise telemetry
      --faults <plan>                    inject a fault plan (TOML/JSON) into
                                         the baselines and the live replay
      plus consult's --store/--slo/--price/--ordering/--model options
      --follow <socket>                  attach to a running `mnemo serve`
                                         daemon instead and stream its advice
                                         rows to stdout (--rows N to stop)
  serve                          long-lived multi-tenant advisor daemon:
      online JSONL ingest, bounded-latency advising, periodic shared-capacity
      re-planning across tenants
      --replay <file>                    drive a request log on the virtual
                                         clock; stdout is the row transcript
                                         (byte-identical for any --jobs N)
      --socket <path>                    listen on a length-framed Unix socket
                                         until a shutdown command
      (with neither, requests are read from stdin)
      --epoch N                          offered events per scheduler tick
                                         (default 2048)
      --drift-epoch N                    events per tenant drift epoch
                                         (default 1024)
      --budget-kib N                     per-tenant profiler budget (default 64)
      --queue N                          per-tenant queue bound (default 8192)
      --max-tenants N                    admission ceiling (default 64)
      --share-mib N                      shared FastMem pool re-planned across
                                         tenants (default 64)
      --replan-every N                   re-plan every N ticks (default 1)
      --state <file> --state-every N     crash-safe state dumps / warm restart
      --journal <dir>                    durable write-ahead journal (socket
                                         mode): every ingest/advise is
                                         checksummed to disk before it is
                                         applied, and a restart replays the
                                         tail past the dump's watermark
      --journal-segment-kib N            rotate segments at N KiB (default 64)
      --journal-sync-every N             fsync every N records (default 1)
      --telemetry <dir>                  export serve telemetry
      --faults <plan>                    fault plan; events with a tenant key
                                         apply only to that tenant
  chaos <request-log>            deterministic kill/restart harness for the
      durable serve path: replays the log uninterrupted (golden run), then
      with seeded kills + storage faults, restarting from dump+journal each
      time, and byte-diffs the recovered transcript/state against golden
      --kills N                          kill/restart points (default 8; one
                                         mid-dump and one mid-rotation kill
                                         are always anchored when present)
      --seed S                           kill schedule / fault draw seed
      --workdir <dir>                    golden/ and run/ live here (default:
                                         a per-process temp directory)
      --state-every N                    dump state every N ticks (default 1)
      --segment-kib N --sync-every N     journal sizing (defaults 8, 4: small
                                         segments so rotations happen)
      --faults <plan>                    storage faults (torn_write, bit_flip,
                                         fsync_fail, dump_corrupt) strike at
                                         each kill point
      plus serve's --epoch/--drift-epoch/--budget-kib/... options;
      exit code 7 when any recovered run diverges from the golden run
  trace <trace-file|preset>      run a workload with telemetry and print the
      per-epoch summary (p50/p99 latency, throughput, tier hits)
      --epoch N                          requests per epoch (default 20000;
                                         0 = one epoch for the whole run)
      --placement fast|slow|advised      key placement (default advised)
      --telemetry <dir>                  export the per-epoch telemetry
      --faults <plan>                    inject a fault plan (TOML/JSON);
                                         adds degraded/crash columns and
                                         nearest-feasible degraded advising
      plus consult's --store/--slo options; presets accept
      --keys/--requests/--seed like generate
  tier <trace-file|preset>       run the trace on an N-tier hierarchy with a
      pluggable tiering policy and report per-policy throughput,
      cost-efficiency and per-tier occupancy
      --hierarchy <preset|file>          paper_two_tier|dram_optane_ssd, or a
                                         TOML hierarchy spec file (default
                                         dram_optane_ssd)
      --policy greedy|lru|asym|random|oracle|all   (default greedy;
                                         comma-separable, e.g. greedy,lru)
      --epoch N                          re-plan every N requests (default 0 =
                                         static placement, the paper's mode)
      --faults <plan>                    fault plan; tier names resolve
                                         against the hierarchy's own names
      --csv <file>                       write the per-policy results CSV
      presets accept --keys/--requests/--seed like generate
  analyze <trace-file>           skew statistics + synthetic equivalent
  downsample <trace-file> --factor N -o <file>
      randomly downsize a trace (distribution-preserving)
  lint                           run the workspace determinism/robustness
      linter over crates/ (see CONTRIBUTING.md \"Determinism rules\")
      --root DIR                         workspace root (default .)
      --format human|json|sarif          (default human)
      --deny-warnings                    stale/malformed allows also fail
      --cache-dir DIR                    persist per-file analyses; warm
                                         runs re-lex only changed files
      --explain CODE                     print a rule's documentation page
  plan <trace-file>              price the recommendation as cloud VMs
      --provider aws|gcp|azure           (default all)
      --deploy-gib N                     scale the split to N GiB
      --slo FRACTION --price FRACTION
  perf [run|baseline|compare]    perf-audit harness over the bench suite
      run [--suite smoke|core]           run the suite, print the trajectory
      --scale N                          override the suite's scale divisor
      --out <file>                       also write BENCH_CORE.json there
      baseline --out <file>              run the suite and write the baseline
                                         trajectory (default perf/BENCH_CORE.json)
      compare <base.json> <cur.json>     diff two trajectories; non-zero exit
                                         on regression/counter drift
      --findings <file>                  write machine-readable findings.json
      --wall-tolerance X                 wall-clock regression gate (default 1.5)
      --alloc-tolerance X                allocation-count drift gate (default 0.02)

GLOBAL OPTIONS:
  --jobs N     worker threads for parallel stages (default: all cores;
               MNEMO_JOBS environment variable is the equivalent).
               Output is byte-identical for every value of N.

EXIT CODES:
  0 success    1 lint findings    2 usage error    3 I/O error
  4 malformed input    5 simulation/advisor failure    6 perf regression
  7 chaos divergence

Run any command with --help for details.";

/// Run the CLI on an argument vector (without the program name).
/// Returns the text to print, or a classified [`CliError`] whose
/// [`CliError::exit_code`] the binary propagates to the process.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let mut parsed = args::Parsed::parse(argv);
    let command = match parsed.positional.first().cloned() {
        None => return Ok(USAGE.to_string()),
        Some(c) => c,
    };
    if parsed.flag("help") {
        return Ok(USAGE.to_string());
    }
    // Global --jobs N: bound the worker pool every parallel stage
    // (baseline runs, curve construction, shard loops) draws from.
    // Results are byte-identical for any value; this only tunes speed.
    let jobs: usize = parsed.number_or("jobs", 0usize)?;
    if parsed.flag("jobs") && jobs == 0 {
        return Err(CliError::Usage("--jobs needs a positive integer".into()));
    }
    if jobs > 0 {
        mnemo_par::set_jobs(jobs);
    }
    parsed.positional.remove(0);
    match command.as_str() {
        "workloads" => commands::workloads(),
        "generate" => commands::generate(&mut parsed),
        "consult" => commands::consult(&mut parsed),
        "watch" => commands::watch(&mut parsed),
        "serve" => commands::serve(&mut parsed),
        "chaos" => commands::chaos(&mut parsed),
        "trace" => commands::trace_cmd(&mut parsed),
        "tier" => commands::tier(&mut parsed),
        "analyze" => commands::analyze(&mut parsed),
        "downsample" => commands::downsample(&mut parsed),
        "plan" => commands::plan(&mut parsed),
        "lint" => commands::lint(&mut parsed),
        "perf" => commands::perf(&mut parsed),
        other => {
            let mut msg = String::new();
            let _ = writeln!(msg, "unknown command '{other}'");
            let _ = write!(msg, "{USAGE}");
            Err(CliError::Usage(msg))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_args_prints_usage() {
        let out = run(&[]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = run(&argv(&["frobnicate"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn jobs_flag_is_validated_and_accepted() {
        assert!(run(&argv(&["workloads", "--jobs", "2"])).is_ok());
        let err = run(&argv(&["workloads", "--jobs"])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("positive integer"), "{err}");
        assert!(run(&argv(&["workloads", "--jobs", "nope"])).is_err());
        // Leave the global pool unbounded for the other tests.
        mnemo_par::set_jobs(0);
    }

    #[test]
    fn usage_documents_the_jobs_flag() {
        let out = run(&[]).unwrap();
        assert!(out.contains("--jobs N"));
    }

    #[test]
    fn workloads_lists_presets() {
        let out = run(&argv(&["workloads"])).unwrap();
        assert!(out.contains("trending"));
        assert!(out.contains("ycsb-e"));
    }

    #[test]
    fn generate_consult_downsample_plan_pipeline() {
        let dir = std::env::temp_dir().join(format!("mnemo-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.trace");
        let curve = dir.join("curve.csv");
        let sample = dir.join("s.trace");

        let out = run(&argv(&[
            "generate",
            "trending",
            "--keys",
            "200",
            "--requests",
            "2000",
            "--seed",
            "5",
            "-o",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote"), "{out}");

        let out = run(&argv(&[
            "consult",
            trace.to_str().unwrap(),
            "--store",
            "redis",
            "--slo",
            "0.10",
            "--csv",
            curve.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("recommendation"), "{out}");
        assert!(curve.exists());
        let csv = std::fs::read_to_string(&curve).unwrap();
        assert!(csv.lines().count() > 100, "full curve rows");

        let out = run(&argv(&["analyze", trace.to_str().unwrap()])).unwrap();
        assert!(out.contains("gini"), "{out}");

        let out = run(&argv(&[
            "downsample",
            trace.to_str().unwrap(),
            "--factor",
            "4",
            "-o",
            sample.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("kept"), "{out}");

        let out = run(&argv(&[
            "plan",
            trace.to_str().unwrap(),
            "--provider",
            "gcp",
            "--deploy-gib",
            "256",
        ]))
        .unwrap();
        assert!(out.contains("n1-"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watch_profiles_a_stream_and_advises() {
        let dir = std::env::temp_dir().join(format!("mnemo-cli-watch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("w.trace");
        run(&argv(&[
            "generate",
            "trending",
            "--keys",
            "300",
            "--requests",
            "9000",
            "--seed",
            "3",
            "-o",
            trace.to_str().unwrap(),
        ]))
        .unwrap();

        let out = run(&argv(&[
            "watch",
            trace.to_str().unwrap(),
            "--epoch",
            "3000",
            "--slo",
            "0.10",
        ]))
        .unwrap();
        assert!(out.contains("profiler:"), "{out}");
        assert!(out.contains("initial epoch"), "{out}");
        assert!(out.contains("FastMem bytes"), "{out}");

        // Shorter than one epoch: the stream-end consultation covers it,
        // and the forced advice still lands in the telemetry export.
        let tel_dir = dir.join("watch-tel");
        let out = run(&argv(&[
            "watch",
            trace.to_str().unwrap(),
            "--telemetry",
            tel_dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("stream end"), "{out}");
        assert!(out.contains("telemetry written to"), "{out}");
        let jsonl = std::fs::read_to_string(tel_dir.join("telemetry.jsonl")).unwrap();
        assert!(jsonl.contains("stream.advise.emitted"), "{jsonl}");

        let err = run(&argv(&[
            "watch",
            trace.to_str().unwrap(),
            "--budget-kib",
            "2",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("budget"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_prints_per_epoch_table_and_exports() {
        let dir = std::env::temp_dir().join(format!("mnemo-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let tel_dir = dir.join("tel");

        // A Table III preset, generated in place, split across epochs.
        let out = run(&argv(&[
            "trace",
            "trending",
            "--keys",
            "300",
            "--requests",
            "8000",
            "--epoch",
            "2000",
            "--telemetry",
            tel_dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("p50_ns"), "{out}");
        assert!(out.contains("p99_ns"), "{out}");
        assert!(out.contains("ops/s"), "{out}");
        assert!(out.contains("fast_hits"), "{out}");
        assert!(out.contains("slow_hits"), "{out}");
        assert!(out.contains("total"), "{out}");
        assert!(out.contains("advised"), "{out}");
        assert!(tel_dir.join("telemetry.jsonl").exists());
        assert!(tel_dir.join("schema.csv").exists());

        // Fixed placements skip the consultation and still tabulate.
        let out = run(&argv(&[
            "trace",
            "trending",
            "--keys",
            "200",
            "--requests",
            "3000",
            "--placement",
            "slow",
            "--epoch",
            "0",
        ]))
        .unwrap();
        assert!(out.contains("the whole run"), "{out}");

        let err = run(&argv(&["trace", "no-such-preset"])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(
            err.to_string()
                .contains("neither a trace file nor a preset"),
            "{err}"
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_with_fault_plan_adds_columns_and_classifies_plan_errors() {
        let dir = std::env::temp_dir().join(format!("mnemo-cli-faults-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let plan = dir.join("plan.toml");
        std::fs::write(
            &plan,
            "seed = 7\n\n[[event]]\nkind = \"latency_spike\"\ntier = \"slow\"\nstart_ns = 0\nend_ns = 500000000\nfactor = 8.0\n",
        )
        .unwrap();

        let out = run(&argv(&[
            "trace",
            "trending",
            "--keys",
            "200",
            "--requests",
            "3000",
            "--placement",
            "slow",
            "--epoch",
            "1000",
            "--faults",
            plan.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("fault plan: 1 event(s), seed 7"), "{out}");
        assert!(out.contains("degraded"), "{out}");
        assert!(out.contains("crashes"), "{out}");

        // An unreadable plan path is an I/O error (3); a malformed plan
        // is a parse error (4) carrying the offending line number.
        let err = run(&argv(&[
            "trace",
            "trending",
            "--keys",
            "200",
            "--requests",
            "3000",
            "--faults",
            dir.join("missing.toml").to_str().unwrap(),
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");

        let bad = dir.join("bad.toml");
        std::fs::write(&bad, "seed = 1\nnot a directive\n").unwrap();
        let err = run(&argv(&[
            "trace",
            "trending",
            "--keys",
            "200",
            "--requests",
            "3000",
            "--faults",
            bad.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        assert!(err.to_string().contains("line 2"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn consult_rejects_bad_store() {
        let err = run(&argv(&["consult", "/nonexistent", "--store", "oracle"])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("store"), "{err}");
    }

    #[test]
    fn generate_requires_output() {
        let err = run(&argv(&["generate", "trending"])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("-o"), "{err}");
    }

    fn perf_report(wall_ns: u64) -> mnemo_bench::perf::CoreReport {
        mnemo_bench::perf::CoreReport {
            schema: mnemo_bench::perf::SCHEMA.to_string(),
            suite: "smoke".to_string(),
            scale: 50,
            jobs: 1,
            benches: vec![mnemo_bench::perf::BenchRecord {
                name: "fig5".to_string(),
                wall_ns,
                items: 100,
                ops_per_s: 1000.0,
                peak_rss_kib: 0,
                alloc_count: 10_000,
                alloc_bytes: 640_000,
                stages: Vec::new(),
                counters: vec![("csv_fnv".to_string(), 42)],
            }],
        }
    }

    #[test]
    fn perf_usage_errors_are_classified() {
        let err = run(&argv(&["perf", "--suite", "giant"])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        let err = run(&argv(&["perf", "frobnicate"])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        let err = run(&argv(&["perf", "compare"])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        let err = run(&argv(&[
            "perf",
            "compare",
            "a",
            "b",
            "--wall-tolerance",
            "0.5",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
    }

    #[test]
    fn perf_compare_gates_on_regression() {
        let dir = std::env::temp_dir().join(format!("mnemo-cli-perf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let fast = dir.join("fast.json");
        let slow = dir.join("slow.json");
        std::fs::write(&base, perf_report(1_000_000_000).to_json()).unwrap();
        std::fs::write(&fast, perf_report(400_000_000).to_json()).unwrap();
        std::fs::write(&slow, perf_report(2_000_000_000).to_json()).unwrap();

        // Improvement: informational, exit 0, summary still rendered.
        let out = run(&argv(&[
            "perf",
            "compare",
            base.to_str().unwrap(),
            fast.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("faster"), "{out}");

        // Regression past the default 1.5x: exit 6 with the summary as
        // the payload, and findings.json written where asked.
        let findings = dir.join("findings.json");
        let err = run(&argv(&[
            "perf",
            "compare",
            base.to_str().unwrap(),
            slow.to_str().unwrap(),
            "--findings",
            findings.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 6, "{err}");
        assert!(err.to_string().contains("FAIL"), "{err}");
        let doc = std::fs::read_to_string(&findings).unwrap();
        assert!(doc.contains("wall_regression"), "{doc}");

        // The same regression passes under a wider tolerance.
        let out = run(&argv(&[
            "perf",
            "compare",
            base.to_str().unwrap(),
            slow.to_str().unwrap(),
            "--wall-tolerance",
            "3.0",
        ]))
        .unwrap();
        assert!(out.contains("no findings"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn perf_compare_corrupt_json_is_a_line_numbered_parse_error() {
        let dir = std::env::temp_dir().join(format!("mnemo-cli-perfbad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        let bad = dir.join("bad.json");
        std::fs::write(&good, perf_report(1_000_000).to_json()).unwrap();
        std::fs::write(
            &bad,
            "{\n  \"schema\": \"mnemo-bench-core/v1\",\n  \"scale\": oops\n}\n",
        )
        .unwrap();
        let err = run(&argv(&[
            "perf",
            "compare",
            good.to_str().unwrap(),
            bad.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        assert!(err.to_string().contains("line 3"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn perf_compare_rejects_schema_mismatch() {
        let dir = std::env::temp_dir().join(format!("mnemo-cli-perfschema-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let other = dir.join("other.json");
        std::fs::write(&base, perf_report(1_000_000).to_json()).unwrap();
        let mut v2 = perf_report(1_000_000);
        v2.schema = "mnemo-bench-core/v2".to_string();
        std::fs::write(&other, v2.to_json()).unwrap();
        let err = run(&argv(&[
            "perf",
            "compare",
            base.to_str().unwrap(),
            other.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 6, "{err}");
        assert!(err.to_string().contains("not comparable"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
