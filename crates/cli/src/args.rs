//! Minimal argument parsing (the approved dependency set has no CLI
//! parser, and four subcommands do not justify one).

use std::collections::BTreeMap;

/// Parsed arguments: positional words plus `--flag [value]` options.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    /// Positional arguments in order (the first is the subcommand).
    pub positional: Vec<String>,
    /// `--key value` / `-k value` options; bare flags map to `""`.
    pub options: BTreeMap<String, String>,
}

impl Parsed {
    /// Parse an argument vector. A token starting with `-` begins an
    /// option; if the next token exists and does not start with `-`, it
    /// becomes the option's value, otherwise the option is a bare flag.
    pub fn parse(argv: &[String]) -> Parsed {
        let mut parsed = Parsed::default();
        let mut iter = argv.iter().peekable();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--").or_else(|| token.strip_prefix('-')) {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with('-') => {
                        iter.next().cloned().unwrap_or_default()
                    }
                    _ => String::new(),
                };
                parsed.options.insert(name.to_string(), value);
            } else {
                parsed.positional.push(token.clone());
            }
        }
        parsed
    }

    /// A bare flag (or any option) present?
    pub fn flag(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// String option with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        match self.options.get(name) {
            Some(v) if !v.is_empty() => v,
            _ => default,
        }
    }

    /// Required string option.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        match self.options.get(name) {
            Some(v) if !v.is_empty() => Ok(v),
            _ => Err(format!("missing required option -{name} / --{name}")),
        }
    }

    /// Numeric option with a default.
    pub fn number_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.options.get(name) {
            Some(v) if !v.is_empty() => v
                .parse()
                .map_err(|_| format!("option --{name}: '{v}' is not a valid number")),
            _ => Ok(default),
        }
    }

    /// First positional argument after the subcommand.
    pub fn positional_required(&self, what: &str) -> Result<&str, String> {
        self.positional
            .first()
            .map(String::as_str)
            .ok_or_else(|| format!("missing {what}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Parsed {
        Parsed::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn positionals_and_options_split() {
        let p = parse(&[
            "consult",
            "file.trace",
            "--store",
            "redis",
            "--cache-aware",
            "-o",
            "x",
        ]);
        assert_eq!(p.positional, vec!["consult", "file.trace"]);
        assert_eq!(p.get_or("store", "?"), "redis");
        assert!(p.flag("cache-aware"));
        assert_eq!(p.require("o").unwrap(), "x");
    }

    #[test]
    fn bare_flag_followed_by_option() {
        let p = parse(&["--cache-aware", "--slo", "0.1"]);
        assert!(p.flag("cache-aware"));
        assert_eq!(p.number_or("slo", 0.0).unwrap(), 0.1);
    }

    #[test]
    fn numeric_validation() {
        let p = parse(&["--keys", "abc"]);
        assert!(p.number_or::<u64>("keys", 1).is_err());
        assert_eq!(p.number_or::<u64>("missing", 7).unwrap(), 7);
    }

    #[test]
    fn require_fails_on_missing_or_empty() {
        let p = parse(&["cmd"]);
        assert!(p.require("o").is_err());
        assert!(p.positional_required("trace file").is_ok());
        assert!(parse(&[]).positional_required("trace file").is_err());
    }
}
