//! Typed CLI errors with distinct process exit codes.
//!
//! Every fatal path through the tool is classified so scripts can react
//! to *why* `mnemo` failed without scraping stderr:
//!
//! | class             | exit code | examples                                   |
//! |-------------------|-----------|--------------------------------------------|
//! | [`CliError::Lint`]   | 1      | `mnemo lint` found rule violations         |
//! | [`CliError::Usage`]  | 2      | unknown command, bad flag value            |
//! | [`CliError::Io`]     | 3      | unreadable trace path, unwritable output   |
//! | [`CliError::Parse`]  | 4      | malformed trace line, invalid fault plan   |
//! | [`CliError::Engine`] | 5      | simulation / advisor pipeline failure      |
//! | [`CliError::Perf`]   | 6      | `mnemo perf compare` found regressions     |
//! | [`CliError::Chaos`]  | 7      | `mnemo chaos` runs diverged after restart  |

/// A fatal CLI error carrying its process exit code class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `mnemo lint` ran successfully but found violations; the message
    /// is the full rendered report (printed on stdout, not stderr, so
    /// `--format json` output stays machine-readable). Exit code 1,
    /// matching the standalone `mnemo-lint` binary.
    Lint(String),
    /// Bad invocation: unknown command, missing argument, out-of-range
    /// or unparsable option value. Exit code 2.
    Usage(String),
    /// Filesystem failure on a user-supplied path. Exit code 3.
    Io(String),
    /// A user-supplied file exists but its contents are malformed
    /// (trace file, fault plan). Exit code 4.
    Parse(String),
    /// The simulation or advisor pipeline failed on valid input.
    /// Exit code 5.
    Engine(String),
    /// `mnemo perf compare` ran successfully but found findings that
    /// fail the gate (wall regression over threshold, deterministic
    /// counter drift, missing bench). Like [`CliError::Lint`], the
    /// message is the full rendered summary and goes to stdout.
    /// Exit code 6.
    Perf(String),
    /// `mnemo chaos` completed its kill/restart runs but the recovered
    /// transcript or state dump diverged from the uninterrupted golden
    /// run (or quarantine accounting leaked). The message is the
    /// rendered chaos report row, printed on stdout. Exit code 7.
    Chaos(String),
}

impl CliError {
    /// The process exit code for this error class.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Lint(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Parse(_) => 4,
            CliError::Engine(_) => 5,
            CliError::Perf(_) => 6,
            CliError::Chaos(_) => 7,
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            CliError::Lint(m)
            | CliError::Usage(m)
            | CliError::Io(m)
            | CliError::Parse(m)
            | CliError::Engine(m)
            | CliError::Perf(m)
            | CliError::Chaos(m) => m,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

impl std::error::Error for CliError {}

/// The argument-parsing helpers report plain strings; at the CLI
/// boundary those are always usage errors.
impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError::Usage(message)
    }
}

/// Classify a fault-plan load failure: unreadable file vs malformed
/// contents (which carries the offending line number).
impl From<mnemo_faults::LoadError> for CliError {
    fn from(e: mnemo_faults::LoadError) -> CliError {
        match e {
            mnemo_faults::LoadError::Io(io) => CliError::Io(io.to_string()),
            mnemo_faults::LoadError::Parse(p) => CliError::Parse(p.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_stable() {
        let errors = [
            CliError::Lint("l".into()),
            CliError::Usage("u".into()),
            CliError::Io("i".into()),
            CliError::Parse("p".into()),
            CliError::Engine("e".into()),
            CliError::Perf("p".into()),
            CliError::Chaos("c".into()),
        ];
        let codes: Vec<i32> = errors.iter().map(|e| e.exit_code()).collect();
        assert_eq!(codes, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn display_is_the_bare_message() {
        assert_eq!(
            CliError::Io("no such file".into()).to_string(),
            "no such file"
        );
    }

    #[test]
    fn strings_classify_as_usage() {
        let e: CliError = String::from("bad flag").into();
        assert_eq!(e.exit_code(), 2);
    }
}
