//! The `mnemo` binary: forwards arguments to the library.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match mnemo_cli::run(&argv) {
        Ok(output) => println!("{output}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}
