//! The `mnemo` binary: forwards arguments to the library.

#![warn(clippy::unwrap_used)]

use std::io::Write;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match mnemo_cli::run(&argv) {
        Ok(output) => {
            // A closed pipe (`mnemo ... | head`) is a normal way to end
            // output early, not a crash.
            let stdout = std::io::stdout();
            if writeln!(stdout.lock(), "{output}").is_err() {
                std::process::exit(0);
            }
        }
        Err(err) => {
            // Lint findings and perf-compare summaries are the command's
            // *output* (possibly JSON for machine consumers), not a
            // diagnostic: keep them on stdout.
            match &err {
                mnemo_cli::CliError::Lint(report) | mnemo_cli::CliError::Perf(report) => {
                    print!("{report}");
                }
                other => eprintln!("error: {other}"),
            }
            std::process::exit(err.exit_code());
        }
    }
}
