//! N-tier memory hierarchies with pluggable tiering policies.
//!
//! The Mnemo paper evaluates a two-tier DRAM/NVM testbed; this crate
//! generalizes the reproduction to *N*-tier hierarchies (DRAM + NVM +
//! SSD-swap, any depth) built on [`hybridmem::TierStack`]:
//!
//! * [`hierarchy`] — named presets ([`hierarchy::paper_two_tier`],
//!   [`hierarchy::dram_optane_ssd`]) and a TOML-subset hierarchy spec
//!   file format with line-numbered errors;
//! * [`policy`] — the [`TieringPolicy`] trait (initial placement,
//!   access observation, epoch re-planning) and its catalog: the
//!   paper's greedy hotness ranking (bit-identical to the two-tier
//!   Pattern Engine at N=2), LRU-style recency, write-asymmetry-aware
//!   mapping, and random/oracle baselines.
//!
//! The `kvsim` crate drives these policies against simulated key-value
//! servers; the `tier_matrix` bench sweeps the full policy × hierarchy
//! grid.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hierarchy;
pub mod policy;

pub use hierarchy::{
    dram_optane_ssd, load_hierarchy, paper_two_tier, parse_hierarchy, preset, HierarchyLoadError,
    SpecError, PRESETS,
};
pub use policy::{
    AsymPolicy, GreedyPolicy, KeyStat, LruPolicy, OraclePolicy, PolicyKind, RandomPolicy,
    TieringPolicy,
};
