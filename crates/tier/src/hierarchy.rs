//! Hierarchy presets and the hierarchy spec-file format.
//!
//! A hierarchy is a [`StackSpec`]: an ordered list of tiers (fastest
//! first), each with Table-I-style timing, a capacity and a $/GiB price,
//! plus the shared LLC in front. This module provides the named presets
//! the benches sweep over and a hand-rolled TOML-subset parser (the
//! vendored `serde` shim has no derive payload) whose every error carries
//! the 1-based line it was found on — same discipline as fault plans.
//!
//! ```toml
//! # three-tier pyramid
//! [[tier]]
//! name = "dram"
//! capacity_gib = 4
//! read_latency_ns = 65.7
//! bandwidth_bytes_per_ns = 14.9
//! write_latency_factor = 0.2
//! write_overlap_factor = 3.0
//! price_per_gib = 6.0
//!
//! [[tier]]
//! name = "optane"
//! capacity_gib = 16
//! read_latency_ns = 305.0
//! bandwidth_bytes_per_ns = 6.6
//! write_latency_factor = 0.31
//! write_overlap_factor = 0.35
//! price_per_gib = 2.0
//! ```
//!
//! An optional `[cache]` section overrides the paper's 12 MB LLC.

use hybridmem::cache::CacheKind;
use hybridmem::spec::TierSpec;
use hybridmem::stack::{StackSpec, TierDef};
use hybridmem::{CacheConfig, HybridSpec};

/// The paper's two-tier testbed as a stack: FastMem (DRAM, $6/GiB) over
/// SlowMem (emulated NVM at the paper's 0.2 price fraction).
pub fn paper_two_tier() -> StackSpec {
    StackSpec::two_tier(&HybridSpec::paper_testbed())
}

/// A three-tier pyramid: the paper's DRAM, Optane-DC-style persistent
/// memory (write-asymmetric), and an SSD-backed swap tier. Capacities
/// follow the testbed's proportions (4 GB DRAM, 4x NVM, 8x swap).
pub fn dram_optane_ssd() -> StackSpec {
    StackSpec {
        tiers: vec![
            TierDef {
                name: "dram".to_string(),
                spec: TierSpec::paper_fastmem(),
                capacity_bytes: 4 << 30,
                price_per_gib: 6.0,
            },
            TierDef {
                name: "optane".to_string(),
                spec: TierSpec::optane_dc(),
                capacity_bytes: 16 << 30,
                price_per_gib: 2.0,
            },
            TierDef {
                name: "ssd".to_string(),
                spec: TierSpec {
                    read_latency_ns: 10_000.0,
                    bandwidth_bytes_per_ns: 3.2,
                    write_latency_factor: 0.5,
                    write_overlap_factor: 1.0,
                },
                capacity_bytes: 32 << 30,
                price_per_gib: 0.1,
            },
        ],
        cache: CacheConfig::paper_llc(),
    }
}

/// Names of the built-in hierarchy presets, in sweep order.
pub const PRESETS: [&str; 2] = ["paper_two_tier", "dram_optane_ssd"];

/// Resolve a built-in hierarchy preset by name.
pub fn preset(name: &str) -> Option<StackSpec> {
    match name {
        "paper_two_tier" => Some(paper_two_tier()),
        "dram_optane_ssd" => Some(dram_optane_ssd()),
        _ => None,
    }
}

/// A hierarchy spec-file parse or validation error, with the offending
/// 1-based line (0 for document-level errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number; 0 for document-level errors.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl SpecError {
    fn at(line: usize, reason: impl Into<String>) -> SpecError {
        SpecError {
            line,
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "hierarchy spec: {}", self.reason)
        } else {
            write!(f, "hierarchy spec line {}: {}", self.line, self.reason)
        }
    }
}

impl std::error::Error for SpecError {}

/// Errors from [`load_hierarchy`].
#[derive(Debug)]
pub enum HierarchyLoadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file's contents were not a valid hierarchy.
    Parse(SpecError),
}

impl std::fmt::Display for HierarchyLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierarchyLoadError::Io(e) => write!(f, "cannot read hierarchy file: {e}"),
            HierarchyLoadError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HierarchyLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HierarchyLoadError::Io(e) => Some(e),
            HierarchyLoadError::Parse(e) => Some(e),
        }
    }
}

/// Load a hierarchy spec file (resolving a preset name first, so CLI
/// flags can say `--hierarchy dram_optane_ssd` or point at a file).
pub fn load_hierarchy(path: &std::path::Path) -> Result<StackSpec, HierarchyLoadError> {
    let text = std::fs::read_to_string(path).map_err(HierarchyLoadError::Io)?;
    parse_hierarchy(&text).map_err(HierarchyLoadError::Parse)
}

// --------------------------------------------------------------- parser --

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(u64),
    Float(f64),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "a string",
            Value::Int(_) => "an integer",
            Value::Float(_) => "a float",
        }
    }
}

/// One `[[tier]]` or `[cache]` table: keyed scalars with their lines.
#[derive(Debug, Default)]
struct Record {
    line: usize,
    fields: Vec<(String, Value, usize)>,
}

impl Record {
    fn insert(&mut self, key: String, value: Value, line: usize) -> Result<(), SpecError> {
        if self.fields.iter().any(|(k, _, _)| *k == key) {
            return Err(SpecError::at(line, format!("duplicate key `{key}`")));
        }
        self.fields.push((key, value, line));
        Ok(())
    }

    fn get(&self, key: &str) -> Option<(&Value, usize)> {
        self.fields
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, l)| (v, *l))
    }

    fn str(&self, key: &str) -> Result<Option<(&str, usize)>, SpecError> {
        match self.get(key) {
            None => Ok(None),
            Some((Value::Str(s), l)) => Ok(Some((s, l))),
            Some((v, l)) => Err(SpecError::at(
                l,
                format!("`{key}` must be a string, got {}", v.type_name()),
            )),
        }
    }

    fn u64(&self, key: &str) -> Result<Option<u64>, SpecError> {
        match self.get(key) {
            None => Ok(None),
            Some((Value::Int(n), _)) => Ok(Some(*n)),
            Some((v, l)) => Err(SpecError::at(
                l,
                format!(
                    "`{key}` must be a non-negative integer, got {}",
                    v.type_name()
                ),
            )),
        }
    }

    fn f64(&self, key: &str) -> Result<Option<f64>, SpecError> {
        match self.get(key) {
            None => Ok(None),
            Some((Value::Float(x), _)) => Ok(Some(*x)),
            Some((Value::Int(n), _)) => Ok(Some(*n as f64)),
            Some((v, l)) => Err(SpecError::at(
                l,
                format!("`{key}` must be a number, got {}", v.type_name()),
            )),
        }
    }

    fn require_f64(&self, key: &str) -> Result<f64, SpecError> {
        self.f64(key)?
            .ok_or_else(|| SpecError::at(self.line, format!("missing required field `{key}`")))
    }

    fn known_keys(&self, allowed: &[&str]) -> Result<(), SpecError> {
        for (k, _, l) in &self.fields {
            if !allowed.contains(&k.as_str()) {
                return Err(SpecError::at(*l, format!("unknown field `{k}`")));
            }
        }
        Ok(())
    }

    /// Capacity from exactly one of `capacity_bytes` / `capacity_mib` /
    /// `capacity_gib`.
    fn capacity(&self) -> Result<u64, SpecError> {
        let candidates = [
            ("capacity_bytes", 1u64),
            ("capacity_mib", 1 << 20),
            ("capacity_gib", 1 << 30),
        ];
        let mut found: Option<(u64, usize)> = None;
        for (key, unit) in candidates {
            if let Some(n) = self.u64(key)? {
                let line = self.get(key).map(|(_, l)| l).unwrap_or(self.line);
                if found.is_some() {
                    return Err(SpecError::at(
                        line,
                        "capacity given more than once (use exactly one of \
                         capacity_bytes, capacity_mib, capacity_gib)",
                    ));
                }
                let bytes = n.checked_mul(unit).ok_or_else(|| {
                    SpecError::at(line, format!("`{key}` overflows a byte count"))
                })?;
                found = Some((bytes, line));
            }
        }
        found.map(|(bytes, _)| bytes).ok_or_else(|| {
            SpecError::at(
                self.line,
                "missing capacity (one of capacity_bytes, capacity_mib, capacity_gib)",
            )
        })
    }
}

/// Strip a trailing comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_scalar(text: &str, line: usize) -> Result<Value, SpecError> {
    let t = text.trim();
    if t.is_empty() {
        return Err(SpecError::at(line, "missing value"));
    }
    if let Some(stripped) = t.strip_prefix('"') {
        let Some(inner) = stripped.strip_suffix('"') else {
            return Err(SpecError::at(line, format!("unterminated string {t}")));
        };
        if inner.contains('"') {
            return Err(SpecError::at(line, format!("malformed string {t}")));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    let digits = t.replace('_', "");
    if let Ok(n) = digits.parse::<u64>() {
        return Ok(Value::Int(n));
    }
    if let Ok(x) = digits.parse::<f64>() {
        if x.is_finite() {
            return Ok(Value::Float(x));
        }
    }
    Err(SpecError::at(line, format!("cannot parse value `{t}`")))
}

#[derive(Debug, Default)]
struct RawHierarchy {
    cache: Option<Record>,
    tiers: Vec<Record>,
}

enum Section {
    Top,
    Cache,
    Tier,
}

fn parse_raw(text: &str) -> Result<RawHierarchy, SpecError> {
    let mut raw = RawHierarchy::default();
    let mut section = Section::Top;
    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            match header.trim() {
                "tier" | "tiers" => {
                    raw.tiers.push(Record {
                        line: lineno,
                        fields: Vec::new(),
                    });
                    section = Section::Tier;
                }
                other => {
                    return Err(SpecError::at(
                        lineno,
                        format!("unknown array table `[[{other}]]`"),
                    ))
                }
            }
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            match header.trim() {
                "cache" => {
                    if raw.cache.is_some() {
                        return Err(SpecError::at(lineno, "duplicate [cache] section"));
                    }
                    raw.cache = Some(Record {
                        line: lineno,
                        fields: Vec::new(),
                    });
                    section = Section::Cache;
                }
                other => {
                    return Err(SpecError::at(
                        lineno,
                        format!("unknown section `[{other}]`"),
                    ))
                }
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(SpecError::at(
                lineno,
                format!("expected `key = value`, got `{line}`"),
            ));
        };
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(SpecError::at(lineno, format!("invalid key `{key}`")));
        }
        let value = parse_scalar(value, lineno)?;
        match section {
            Section::Top => {
                return Err(SpecError::at(
                    lineno,
                    format!("`{key}` outside any section (expected [[tier]] or [cache])"),
                ))
            }
            Section::Cache => {
                // raw.cache is Some whenever section is Cache.
                if let Some(c) = raw.cache.as_mut() {
                    c.insert(key.to_string(), value, lineno)?;
                }
            }
            Section::Tier => {
                // raw.tiers is non-empty whenever section is Tier.
                if let Some(t) = raw.tiers.last_mut() {
                    t.insert(key.to_string(), value, lineno)?;
                }
            }
        }
    }
    Ok(raw)
}

fn build_cache(record: &Record) -> Result<CacheConfig, SpecError> {
    record.known_keys(&[
        "kind",
        "capacity_bytes",
        "capacity_mib",
        "capacity_gib",
        "line_bytes",
        "ways",
        "hit_latency_ns",
        "bandwidth_bytes_per_ns",
    ])?;
    let mut cache = CacheConfig::paper_llc();
    if let Some((kind, line)) = record.str("kind")? {
        cache.kind = match kind {
            "none" => CacheKind::None,
            "object_lru" => CacheKind::ObjectLru,
            "set_associative" => CacheKind::SetAssociative,
            other => {
                return Err(SpecError::at(
                    line,
                    format!(
                        "unknown cache kind `{other}` \
                         (expected one of: none, object_lru, set_associative)"
                    ),
                ))
            }
        };
    }
    if record.get("capacity_bytes").is_some()
        || record.get("capacity_mib").is_some()
        || record.get("capacity_gib").is_some()
    {
        cache.capacity_bytes = record.capacity()?;
    }
    if let Some(n) = record.u64("line_bytes")? {
        cache.line_bytes = n;
    }
    if let Some(n) = record.u64("ways")? {
        cache.ways = hybridmem::num::usize_from_u64(n);
    }
    if let Some(x) = record.f64("hit_latency_ns")? {
        cache.hit_latency_ns = x;
    }
    if let Some(x) = record.f64("bandwidth_bytes_per_ns")? {
        cache.bandwidth_bytes_per_ns = x;
    }
    Ok(cache)
}

/// Parse a hierarchy spec from the TOML subset (`[[tier]]` tables of
/// scalars plus an optional `[cache]` section). The parsed spec is
/// validated ([`StackSpec::validate`]) before being returned, with the
/// validation failure attributed to the offending `[[tier]]` line.
pub fn parse_hierarchy(text: &str) -> Result<StackSpec, SpecError> {
    let raw = parse_raw(text)?;
    if raw.tiers.is_empty() {
        return Err(SpecError::at(0, "hierarchy has no [[tier]] tables"));
    }
    let mut tiers = Vec::with_capacity(raw.tiers.len());
    let mut lines = Vec::with_capacity(raw.tiers.len());
    for t in &raw.tiers {
        t.known_keys(&[
            "name",
            "capacity_bytes",
            "capacity_mib",
            "capacity_gib",
            "read_latency_ns",
            "bandwidth_bytes_per_ns",
            "write_latency_factor",
            "write_overlap_factor",
            "price_per_gib",
        ])?;
        let (name, _) = t
            .str("name")?
            .ok_or_else(|| SpecError::at(t.line, "missing required field `name`"))?;
        tiers.push(TierDef {
            name: name.to_string(),
            spec: TierSpec {
                read_latency_ns: t.require_f64("read_latency_ns")?,
                bandwidth_bytes_per_ns: t.require_f64("bandwidth_bytes_per_ns")?,
                write_latency_factor: t.f64("write_latency_factor")?.unwrap_or(1.0),
                write_overlap_factor: t.f64("write_overlap_factor")?.unwrap_or(1.0),
            },
            capacity_bytes: t.capacity()?,
            price_per_gib: t.require_f64("price_per_gib")?,
        });
        lines.push(t.line);
    }
    let cache = match &raw.cache {
        Some(record) => build_cache(record)?,
        None => CacheConfig::paper_llc(),
    };
    let spec = StackSpec { tiers, cache };
    if let Err(reason) = spec.validate() {
        // Attribute the failure to the tier it names, falling back to
        // the first tier's line for stack-level problems.
        let line = spec
            .tiers
            .iter()
            .position(|t| reason.contains(&format!("'{}'", t.name)))
            .map(|i| lines[i])
            .unwrap_or(lines[0]);
        return Err(SpecError::at(line, reason));
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem::TierId;

    const THREE_TIER: &str = r#"
# pyramid under test
[cache]
kind = "object_lru"
capacity_mib = 12

[[tier]]
name = "dram"
capacity_gib = 4
read_latency_ns = 65.7
bandwidth_bytes_per_ns = 14.9
write_latency_factor = 0.2
write_overlap_factor = 3.0
price_per_gib = 6.0

[[tier]]
name = "optane"
capacity_gib = 16
read_latency_ns = 305.0
bandwidth_bytes_per_ns = 6.6
write_latency_factor = 0.31
write_overlap_factor = 0.35
price_per_gib = 2.0

[[tier]]
name = "ssd"
capacity_gib = 32
read_latency_ns = 10000.0
bandwidth_bytes_per_ns = 3.2
write_latency_factor = 0.5
price_per_gib = 0.1
"#;

    #[test]
    fn parses_a_three_tier_spec() {
        let spec = parse_hierarchy(THREE_TIER).unwrap();
        assert_eq!(spec.len(), 3);
        assert_eq!(spec.tier_by_name("optane"), Some(TierId(1)));
        assert_eq!(spec.tiers[0].capacity_bytes, 4 << 30);
        assert_eq!(spec.cache.capacity_bytes, 12 << 20);
        assert_eq!(spec.tiers[2].spec.write_overlap_factor, 1.0);
        assert!((spec.cost_usd() - (4.0 * 6.0 + 16.0 * 2.0 + 32.0 * 0.1)).abs() < 1e-9);
    }

    #[test]
    fn presets_resolve_and_validate() {
        for name in PRESETS {
            let spec = preset(name).unwrap();
            assert!(spec.validate().is_ok(), "{name}");
        }
        assert!(preset("tape_library").is_none());
        assert_eq!(paper_two_tier().len(), 2);
        assert_eq!(dram_optane_ssd().len(), 3);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let missing = THREE_TIER.replace("name = \"optane\"\n", "");
        let err = parse_hierarchy(&missing).unwrap_err();
        assert_eq!(err.line, 16, "points at the nameless [[tier]]: {err}");
        assert!(err.reason.contains("missing required field `name`"));

        let bad_value = THREE_TIER.replace(
            "bandwidth_bytes_per_ns = 6.6",
            "bandwidth_bytes_per_ns = \"fast\"",
        );
        let err = parse_hierarchy(&bad_value).unwrap_err();
        assert_eq!(err.line, 20, "{err}");
        assert!(err.reason.contains("must be a number"));

        let unknown = THREE_TIER.replace("price_per_gib = 0.1", "cost = 0.1");
        let err = parse_hierarchy(&unknown).unwrap_err();
        assert!(err.reason.contains("unknown field `cost`"));
        assert_eq!(err.line, 31, "{err}");
    }

    #[test]
    fn validation_failures_name_the_tier_line() {
        let dup = THREE_TIER.replace("name = \"optane\"", "name = \"DRAM\"");
        let err = parse_hierarchy(&dup).unwrap_err();
        assert!(err.reason.contains("duplicate tier name"), "{err}");
        assert_eq!(err.line, 16, "points at the second [[tier]]: {err}");
    }

    #[test]
    fn capacity_must_be_given_exactly_once() {
        let twice = THREE_TIER.replace(
            "name = \"ssd\"\ncapacity_gib = 32",
            "name = \"ssd\"\ncapacity_gib = 32\ncapacity_mib = 1",
        );
        let err = parse_hierarchy(&twice).unwrap_err();
        assert!(err.reason.contains("more than once"), "{err}");
        let none = THREE_TIER.replace("capacity_gib = 32\n", "");
        let err = parse_hierarchy(&none).unwrap_err();
        assert!(err.reason.contains("missing capacity"), "{err}");
    }

    #[test]
    fn empty_document_is_rejected() {
        let err = parse_hierarchy("# nothing here\n").unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.reason.contains("no [[tier]]"));
    }

    #[test]
    fn unknown_cache_kind_is_rejected_with_candidates() {
        let bad = THREE_TIER.replace("kind = \"object_lru\"", "kind = \"victim\"");
        let err = parse_hierarchy(&bad).unwrap_err();
        assert_eq!(err.line, 4, "{err}");
        assert!(err.reason.contains("unknown cache kind `victim`"));
        assert!(err.reason.contains("set_associative"));
    }
}
