//! Pluggable tiering policies over an N-tier hierarchy.
//!
//! A [`TieringPolicy`] decides where keys live in a [`StackSpec`]: an
//! initial placement before the run ([`TieringPolicy::place`]), an
//! access-stream observer ([`TieringPolicy::on_access`]) and an epoch
//! re-planning hook ([`TieringPolicy::on_epoch`]) whose desired
//! assignments the server turns into charged migrations.
//!
//! The catalog:
//!
//! * [`GreedyPolicy`] — the paper's hotness ranking (`accesses / size`,
//!   §V-B), float-op-identical to the two-tier Pattern Engine so the
//!   legacy golden figures stay byte-stable at N=2;
//! * [`LruPolicy`] — recency ranking: each epoch refills the stack with
//!   the most recently touched keys on top;
//! * [`AsymPolicy`] — write-asymmetry-aware mapping in the spirit of
//!   Song et al.: write-hot keys fill the write-cheapest tiers first,
//!   read-hot keys fill the read-cheapest;
//! * [`RandomPolicy`] — seeded capacity-weighted random placement (the
//!   "no intelligence" floor);
//! * [`OraclePolicy`] — placement from pre-loaded *future* per-epoch
//!   stats (the clairvoyant ceiling).
//!
//! All policies are deterministic: orderings break ties by key id and
//! randomness is a pure function of the seed and key.

use hybridmem::stack::StackSpec;
use hybridmem::{AccessKind, DetHashMap, TierId};

/// Per-key workload statistics a policy plans from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyStat {
    /// Key id.
    pub key: u64,
    /// Logical value size in bytes.
    pub bytes: u64,
    /// Read count in the window described by this stat.
    pub reads: u64,
    /// Write count in the window described by this stat.
    pub writes: u64,
}

impl KeyStat {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// A tier-placement policy.
///
/// `place` and `on_epoch` return one assignment per entry of `stats`, in
/// the same order. Policies must respect tier capacities against the
/// *logical* byte sizes in `stats` (engines add allocator headers on
/// top, so capacity planning leaves that headroom to the caller).
pub trait TieringPolicy: Send {
    /// Stable policy name (CSV column, CLI flag value).
    fn name(&self) -> &'static str;

    /// Initial placement for the whole dataset, before the run starts.
    fn place(&mut self, stats: &[KeyStat], hier: &StackSpec) -> Vec<TierId>;

    /// Observe one request of the running trace. `seq` is the 0-based
    /// request index — the policy's only clock.
    fn on_access(&mut self, key: u64, kind: AccessKind, seq: u64) {
        let _ = (key, kind, seq);
    }

    /// Re-plan at an epoch boundary: desired `(key, tier)` assignments.
    /// The server diffs them against current placements and charges a
    /// migration for every difference. `stats` describes the epoch that
    /// just ended. The default keeps the current placement.
    fn on_epoch(&mut self, stats: &[KeyStat], hier: &StackSpec) -> Vec<(u64, TierId)> {
        let _ = (stats, hier);
        Vec::new()
    }
}

/// Build a [`TierId`] from a stack index (stacks are bounded well below
/// `u8::MAX` tiers).
fn tier_id(index: usize) -> TierId {
    TierId(u8::try_from(index).unwrap_or(u8::MAX))
}

/// Fill tiers in `tier_order` with keys in `key_order` (indices into
/// `stats`), skip-but-continue per tier exactly like the two-tier
/// Pattern Engine's `fill_capacity`: a key that no longer fits is
/// skipped, later smaller keys may still be packed. Keys left over after
/// every listed tier go to the tier with the most remaining free bytes
/// (ties to the topmost), matching the legacy "everything else lands in
/// SlowMem" behaviour whenever the last tier has room.
fn fill(
    stats: &[KeyStat],
    key_order: &[usize],
    tier_order: &[usize],
    free: &mut [u64],
    out: &mut [Option<TierId>],
) {
    for &ti in tier_order {
        for &ki in key_order {
            if out[ki].is_some() {
                continue;
            }
            let bytes = stats[ki].bytes;
            if bytes <= free[ti] {
                free[ti] -= bytes;
                out[ki] = Some(tier_id(ti));
            }
        }
    }
    for &ki in key_order {
        if out[ki].is_none() {
            let mut best = 0usize;
            for (ti, &f) in free.iter().enumerate() {
                if f > free[best] {
                    best = ti;
                }
            }
            free[best] = free[best].saturating_sub(stats[ki].bytes);
            out[ki] = Some(tier_id(best));
        }
    }
}

/// Unwrap a fully-filled assignment vector.
fn assignments(out: Vec<Option<TierId>>) -> Vec<TierId> {
    // `fill` assigns every key (the fallback arm is total).
    out.into_iter().flatten().collect()
}

/// Key indices ordered by the paper's placement weight — `accesses /
/// size`, descending, ties by key id — with the exact float operations
/// of the two-tier Pattern Engine (`MnemoT::weight_order`).
fn weight_order(stats: &[KeyStat]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..stats.len()).collect();
    order.sort_by(|&a, &b| {
        let sa = &stats[a];
        let sb = &stats[b];
        let wa = sa.accesses() as f64 / sa.bytes.max(1) as f64;
        let wb = sb.accesses() as f64 / sb.bytes.max(1) as f64;
        wb.total_cmp(&wa).then(sa.key.cmp(&sb.key))
    });
    order
}

/// Greedy fill in `key_order` through the stack top-down.
fn fill_stack_order(stats: &[KeyStat], key_order: &[usize], hier: &StackSpec) -> Vec<TierId> {
    let mut free: Vec<u64> = hier.tiers.iter().map(|t| t.capacity_bytes).collect();
    let tier_order: Vec<usize> = (0..hier.len()).collect();
    let mut out = vec![None; stats.len()];
    fill(stats, key_order, &tier_order, &mut free, &mut out);
    assignments(out)
}

// --------------------------------------------------------------- greedy --

/// The paper's hotness-ranking policy generalized to N tiers: keys in
/// placement-weight order fill the stack top-down, skip-but-continue
/// per tier. At N=2 this reproduces `MnemoT::fill_capacity` exactly.
#[derive(Debug, Clone, Default)]
pub struct GreedyPolicy;

impl TieringPolicy for GreedyPolicy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn place(&mut self, stats: &[KeyStat], hier: &StackSpec) -> Vec<TierId> {
        fill_stack_order(stats, &weight_order(stats), hier)
    }

    fn on_epoch(&mut self, stats: &[KeyStat], hier: &StackSpec) -> Vec<(u64, TierId)> {
        let tiers = self.place(stats, hier);
        stats.iter().map(|s| s.key).zip(tiers).collect()
    }
}

// ----------------------------------------------------------------- lru --

/// Recency policy: the initial placement is a key-id-order fill (no
/// history yet); each epoch refills the stack with the most recently
/// accessed keys on top. Ties (equal recency, including never-accessed)
/// break by key id.
#[derive(Debug, Clone, Default)]
pub struct LruPolicy {
    /// key -> sequence number of its most recent access + 1 (0 = never).
    last_access: DetHashMap<u64, u64>,
}

impl TieringPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn place(&mut self, stats: &[KeyStat], hier: &StackSpec) -> Vec<TierId> {
        let order: Vec<usize> = (0..stats.len()).collect();
        fill_stack_order(stats, &order, hier)
    }

    fn on_access(&mut self, key: u64, _kind: AccessKind, seq: u64) {
        self.last_access.insert(key, seq + 1);
    }

    fn on_epoch(&mut self, stats: &[KeyStat], hier: &StackSpec) -> Vec<(u64, TierId)> {
        let mut order: Vec<usize> = (0..stats.len()).collect();
        order.sort_by(|&a, &b| {
            let ra = self.last_access.get(&stats[a].key).copied().unwrap_or(0);
            let rb = self.last_access.get(&stats[b].key).copied().unwrap_or(0);
            rb.cmp(&ra).then(stats[a].key.cmp(&stats[b].key))
        });
        let tiers = fill_stack_order(stats, &order, hier);
        stats.iter().map(|s| s.key).zip(tiers).collect()
    }
}

// ---------------------------------------------------------------- asym --

/// Reference transfer size for per-byte tier cost ranking: large enough
/// that bandwidth matters, small enough that latency still shows.
const ASYM_REF_BYTES: u64 = 4096;

/// Write-asymmetry-aware policy (after Song et al.'s asymmetry-aware
/// placement): write-hot keys (more writes than reads) are packed into
/// the tiers with the cheapest per-byte *writes* first, so NVM-style
/// devices with expensive writes hold read-mostly data; the remaining
/// keys fill the cheapest-*read* tiers. Within each pass keys are
/// ordered by the dominant-direction weight (`writes/size` resp.
/// `reads/size`).
#[derive(Debug, Clone, Default)]
pub struct AsymPolicy;

impl AsymPolicy {
    fn tier_order_by_cost(hier: &StackSpec, kind: AccessKind) -> Vec<usize> {
        let mut order: Vec<usize> = (0..hier.len()).collect();
        order.sort_by(|&a, &b| {
            let ca = hier.tiers[a].spec.access_ns(kind, ASYM_REF_BYTES);
            let cb = hier.tiers[b].spec.access_ns(kind, ASYM_REF_BYTES);
            ca.total_cmp(&cb).then(a.cmp(&b))
        });
        order
    }
}

impl TieringPolicy for AsymPolicy {
    fn name(&self) -> &'static str {
        "asym"
    }

    fn place(&mut self, stats: &[KeyStat], hier: &StackSpec) -> Vec<TierId> {
        let mut free: Vec<u64> = hier.tiers.iter().map(|t| t.capacity_bytes).collect();
        let mut out = vec![None; stats.len()];

        let mut write_hot: Vec<usize> = (0..stats.len())
            .filter(|&i| stats[i].writes > stats[i].reads)
            .collect();
        write_hot.sort_by(|&a, &b| {
            let wa = stats[a].writes as f64 / stats[a].bytes.max(1) as f64;
            let wb = stats[b].writes as f64 / stats[b].bytes.max(1) as f64;
            wb.total_cmp(&wa).then(stats[a].key.cmp(&stats[b].key))
        });
        fill(
            stats,
            &write_hot,
            &Self::tier_order_by_cost(hier, AccessKind::Write),
            &mut free,
            &mut out,
        );

        let mut read_rest: Vec<usize> = (0..stats.len())
            .filter(|&i| stats[i].writes <= stats[i].reads)
            .collect();
        read_rest.sort_by(|&a, &b| {
            let wa = stats[a].reads as f64 / stats[a].bytes.max(1) as f64;
            let wb = stats[b].reads as f64 / stats[b].bytes.max(1) as f64;
            wb.total_cmp(&wa).then(stats[a].key.cmp(&stats[b].key))
        });
        fill(
            stats,
            &read_rest,
            &Self::tier_order_by_cost(hier, AccessKind::Read),
            &mut free,
            &mut out,
        );
        assignments(out)
    }

    fn on_epoch(&mut self, stats: &[KeyStat], hier: &StackSpec) -> Vec<(u64, TierId)> {
        let tiers = self.place(stats, hier);
        stats.iter().map(|s| s.key).zip(tiers).collect()
    }
}

// -------------------------------------------------------------- random --

/// SplitMix64 — a tiny, well-mixed pure hash (Vigna's reference
/// constants), used so random placement is a function of `(seed, key)`
/// alone and therefore byte-stable under any worker count.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Capacity-weighted random placement: each key draws a tier with
/// probability proportional to tier capacity; if the drawn tier is full
/// the walk continues down the stack cyclically. The "no intelligence"
/// baseline every real policy must beat.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    seed: u64,
}

impl RandomPolicy {
    /// Build with a placement seed.
    pub fn new(seed: u64) -> RandomPolicy {
        RandomPolicy { seed }
    }
}

impl TieringPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn place(&mut self, stats: &[KeyStat], hier: &StackSpec) -> Vec<TierId> {
        let mut free: Vec<u64> = hier.tiers.iter().map(|t| t.capacity_bytes).collect();
        let total: u128 = hier
            .tiers
            .iter()
            .map(|t| u128::from(t.capacity_bytes))
            .sum();
        let mut out = Vec::with_capacity(stats.len());
        for s in stats {
            let draw = u128::from(splitmix64(self.seed ^ s.key)) % total.max(1);
            let mut chosen = hier.len() - 1;
            let mut cumulative = 0u128;
            for (ti, t) in hier.tiers.iter().enumerate() {
                cumulative += u128::from(t.capacity_bytes);
                if draw < cumulative {
                    chosen = ti;
                    break;
                }
            }
            // Walk from the drawn tier until the key fits; fall back to
            // the drawn tier if the whole stack is full.
            let mut placed = chosen;
            for step in 0..hier.len() {
                let ti = (chosen + step) % hier.len();
                if stats_fit(s.bytes, free[ti]) {
                    placed = ti;
                    break;
                }
            }
            free[placed] = free[placed].saturating_sub(s.bytes);
            out.push(tier_id(placed));
        }
        out
    }
}

fn stats_fit(bytes: u64, free: u64) -> bool {
    bytes <= free
}

// -------------------------------------------------------------- oracle --

/// Clairvoyant policy: placements come from pre-loaded *future* window
/// stats (the stats of the epoch about to run, not the one that just
/// ended), greedily filled like [`GreedyPolicy`]. With a single window
/// covering the whole trace it coincides with greedy; with per-epoch
/// windows it is the ceiling online policies are measured against.
#[derive(Debug, Clone)]
pub struct OraclePolicy {
    windows: Vec<Vec<KeyStat>>,
    next: usize,
}

impl OraclePolicy {
    /// Build from future per-epoch stats windows, in epoch order. The
    /// first window informs the initial placement.
    pub fn new(windows: Vec<Vec<KeyStat>>) -> OraclePolicy {
        OraclePolicy { windows, next: 0 }
    }

    /// Greedy assignment from a window, mapped back onto `stats` order.
    fn assign(&self, window: &[KeyStat], stats: &[KeyStat], hier: &StackSpec) -> Vec<TierId> {
        // Future knowledge for keys present in the window; keys the
        // window never touches keep weight 0 (cold).
        let mut merged: Vec<KeyStat> = stats
            .iter()
            .map(|s| KeyStat {
                reads: 0,
                writes: 0,
                ..*s
            })
            .collect();
        let index: DetHashMap<u64, usize> =
            stats.iter().enumerate().map(|(i, s)| (s.key, i)).collect();
        for w in window {
            if let Some(&i) = index.get(&w.key) {
                merged[i].reads = w.reads;
                merged[i].writes = w.writes;
            }
        }
        fill_stack_order(&merged, &weight_order(&merged), hier)
    }
}

impl TieringPolicy for OraclePolicy {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn place(&mut self, stats: &[KeyStat], hier: &StackSpec) -> Vec<TierId> {
        match self.windows.first() {
            Some(window) => {
                let out = self.assign(window, stats, hier);
                self.next = 1;
                out
            }
            None => fill_stack_order(stats, &weight_order(stats), hier),
        }
    }

    fn on_epoch(&mut self, stats: &[KeyStat], hier: &StackSpec) -> Vec<(u64, TierId)> {
        let Some(window) = self.windows.get(self.next) else {
            return Vec::new();
        };
        let tiers = self.assign(window, stats, hier);
        self.next += 1;
        stats.iter().map(|s| s.key).zip(tiers).collect()
    }
}

// ------------------------------------------------------------ registry --

/// The policy catalog, for CLI flags and bench sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`GreedyPolicy`].
    Greedy,
    /// [`LruPolicy`].
    Lru,
    /// [`AsymPolicy`].
    Asym,
    /// [`RandomPolicy`].
    Random,
    /// [`OraclePolicy`].
    Oracle,
}

impl PolicyKind {
    /// Every policy, in sweep (and CSV column) order.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Greedy,
        PolicyKind::Lru,
        PolicyKind::Asym,
        PolicyKind::Random,
        PolicyKind::Oracle,
    ];

    /// Stable name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Greedy => "greedy",
            PolicyKind::Lru => "lru",
            PolicyKind::Asym => "asym",
            PolicyKind::Random => "random",
            PolicyKind::Oracle => "oracle",
        }
    }

    /// Resolve by name.
    pub fn by_name(name: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Instantiate. `seed` feeds [`RandomPolicy`]; `windows` pre-loads
    /// [`OraclePolicy`] with future per-epoch stats (an empty slice
    /// degrades the oracle to greedy).
    pub fn build(self, seed: u64, windows: &[Vec<KeyStat>]) -> Box<dyn TieringPolicy> {
        match self {
            PolicyKind::Greedy => Box::new(GreedyPolicy),
            PolicyKind::Lru => Box::new(LruPolicy::default()),
            PolicyKind::Asym => Box::new(AsymPolicy),
            PolicyKind::Random => Box::new(RandomPolicy::new(seed)),
            PolicyKind::Oracle => Box::new(OraclePolicy::new(windows.to_vec())),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{dram_optane_ssd, paper_two_tier};
    use hybridmem::stack::TierDef;
    use hybridmem::TierSpec;

    fn stats(n: u64) -> Vec<KeyStat> {
        (0..n)
            .map(|key| KeyStat {
                key,
                bytes: 256 + (key * 131) % 4096,
                reads: (key * 7) % 50,
                writes: (key * 3) % 20,
            })
            .collect()
    }

    fn occupancy(stats: &[KeyStat], tiers: &[TierId], hier: &StackSpec) -> Vec<u64> {
        let mut used = vec![0u64; hier.len()];
        for (s, t) in stats.iter().zip(tiers) {
            used[t.index()] += s.bytes;
        }
        used
    }

    /// A tight hierarchy (tiers smaller than the dataset) forcing real
    /// placement decisions; the last tier absorbs the remainder.
    fn tight_three_tier(total_bytes: u64) -> StackSpec {
        let mut spec = dram_optane_ssd();
        spec.tiers[0].capacity_bytes = total_bytes / 4;
        spec.tiers[1].capacity_bytes = total_bytes / 3;
        spec.tiers[2].capacity_bytes = total_bytes + 4096;
        spec
    }

    #[test]
    fn greedy_matches_two_tier_pattern_engine_semantics() {
        // Crafted stats mirroring `weight_order_on_crafted_trace` in the
        // core crate: the expected order is 1, 2, 0, 3.
        let stats = vec![
            KeyStat {
                key: 0,
                bytes: 1000,
                reads: 2,
                writes: 0,
            },
            KeyStat {
                key: 1,
                bytes: 100,
                reads: 2,
                writes: 0,
            },
            KeyStat {
                key: 2,
                bytes: 100,
                reads: 1,
                writes: 0,
            },
            KeyStat {
                key: 3,
                bytes: 100,
                reads: 0,
                writes: 0,
            },
        ];
        assert_eq!(weight_order(&stats), vec![1, 2, 0, 3]);
        // FastMem of 200 bytes takes keys 1 and 2; the rest go below.
        let mut hier = paper_two_tier();
        hier.tiers[0].capacity_bytes = 200;
        let placed = GreedyPolicy.place(&stats, &hier);
        assert_eq!(
            placed,
            vec![TierId::SLOW, TierId::FAST, TierId::FAST, TierId::SLOW]
        );
    }

    #[test]
    fn greedy_skip_but_continue_packs_later_smaller_keys() {
        let stats = vec![
            KeyStat {
                key: 0,
                bytes: 300,
                reads: 90,
                writes: 0,
            },
            KeyStat {
                key: 1,
                bytes: 300,
                reads: 60,
                writes: 0,
            },
            KeyStat {
                key: 2,
                bytes: 100,
                reads: 10,
                writes: 0,
            },
        ];
        let mut hier = paper_two_tier();
        hier.tiers[0].capacity_bytes = 400;
        // Key 1 (weight 0.2) does not fit after key 0 (300 bytes used),
        // but key 2 (weight 0.1, 100 bytes) still does.
        let placed = GreedyPolicy.place(&stats, &hier);
        assert_eq!(placed, vec![TierId::FAST, TierId::SLOW, TierId::FAST]);
    }

    #[test]
    fn every_policy_respects_capacity_on_a_tight_hierarchy() {
        let stats = stats(400);
        let total: u64 = stats.iter().map(|s| s.bytes).sum();
        let hier = tight_three_tier(total);
        for kind in PolicyKind::ALL {
            let mut policy = kind.build(11, &[]);
            let placed = policy.place(&stats, &hier);
            assert_eq!(placed.len(), stats.len(), "{kind}");
            let used = occupancy(&stats, &placed, &hier);
            for (ti, (&u, t)) in used.iter().zip(&hier.tiers).enumerate() {
                assert!(
                    u <= t.capacity_bytes,
                    "{kind}: tier {ti} holds {u} of {}",
                    t.capacity_bytes
                );
            }
        }
    }

    #[test]
    fn asym_pins_write_hot_keys_to_the_write_cheap_tier() {
        // Two tiers: "wcheap" has slow reads but overlapped cheap
        // writes; "rcheap" is a fast reader with terribly slow writes.
        let hier = StackSpec {
            tiers: vec![
                TierDef {
                    name: "rcheap".to_string(),
                    spec: TierSpec {
                        read_latency_ns: 50.0,
                        bandwidth_bytes_per_ns: 15.0,
                        write_latency_factor: 8.0,
                        write_overlap_factor: 0.05,
                    },
                    capacity_bytes: 1 << 20,
                    price_per_gib: 6.0,
                },
                TierDef {
                    name: "wcheap".to_string(),
                    spec: TierSpec {
                        read_latency_ns: 400.0,
                        bandwidth_bytes_per_ns: 2.0,
                        write_latency_factor: 0.1,
                        write_overlap_factor: 4.0,
                    },
                    capacity_bytes: 1 << 20,
                    price_per_gib: 1.0,
                },
            ],
            cache: hybridmem::CacheConfig::disabled(),
        };
        let stats = vec![
            KeyStat {
                key: 0,
                bytes: 1000,
                reads: 90,
                writes: 1,
            },
            KeyStat {
                key: 1,
                bytes: 1000,
                reads: 1,
                writes: 90,
            },
        ];
        let placed = AsymPolicy.place(&stats, &hier);
        assert_eq!(placed[0], TierId(0), "read-hot key on the read-cheap tier");
        assert_eq!(
            placed[1],
            TierId(1),
            "write-hot key on the write-cheap tier"
        );
    }

    #[test]
    fn lru_promotes_recently_touched_keys_at_epochs() {
        // Uniform sizes so the fill order alone decides the top tier.
        let stats: Vec<KeyStat> = (0..50)
            .map(|key| KeyStat {
                key,
                bytes: 1000,
                reads: 0,
                writes: 0,
            })
            .collect();
        let mut hier = dram_optane_ssd();
        hier.tiers[0].capacity_bytes = 5_000; // exactly five keys
        hier.tiers[1].capacity_bytes = 10_000;
        hier.tiers[2].capacity_bytes = 60_000;
        let mut lru = LruPolicy::default();
        lru.place(&stats, &hier);
        // Touch keys 40..50 in order: 49 is the most recent.
        for (seq, key) in (40..50).enumerate() {
            lru.on_access(key, AccessKind::Read, seq as u64);
        }
        let assign = lru.on_epoch(&stats, &hier);
        let mut top: Vec<u64> = assign
            .iter()
            .filter(|(_, t)| *t == TierId(0))
            .map(|(k, _)| *k)
            .collect();
        top.sort_unstable();
        assert_eq!(top, vec![45, 46, 47, 48, 49]);
    }

    #[test]
    fn random_is_seed_stable_and_seed_sensitive() {
        let stats = stats(200);
        let hier = dram_optane_ssd();
        let a = RandomPolicy::new(7).place(&stats, &hier);
        let b = RandomPolicy::new(7).place(&stats, &hier);
        let c = RandomPolicy::new(8).place(&stats, &hier);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Capacity weighting: the big bottom tier receives the most keys.
        let counts = occupancy(&stats, &a, &hier);
        assert!(counts[2] > counts[0]);
    }

    #[test]
    fn oracle_with_whole_trace_window_equals_greedy() {
        let stats = stats(120);
        let total: u64 = stats.iter().map(|s| s.bytes).sum();
        let hier = tight_three_tier(total);
        let greedy = GreedyPolicy.place(&stats, &hier);
        let oracle = OraclePolicy::new(vec![stats.clone()]).place(&stats, &hier);
        assert_eq!(greedy, oracle);
    }

    #[test]
    fn oracle_follows_future_windows() {
        let stats = vec![
            KeyStat {
                key: 0,
                bytes: 100,
                reads: 0,
                writes: 0,
            },
            KeyStat {
                key: 1,
                bytes: 100,
                reads: 0,
                writes: 0,
            },
        ];
        let mut hier = paper_two_tier();
        hier.tiers[0].capacity_bytes = 100;
        // Epoch 0 is hot on key 0; epoch 1 flips to key 1.
        let w0 = vec![KeyStat {
            key: 0,
            bytes: 100,
            reads: 10,
            writes: 0,
        }];
        let w1 = vec![KeyStat {
            key: 1,
            bytes: 100,
            reads: 10,
            writes: 0,
        }];
        let mut oracle = OraclePolicy::new(vec![w0, w1]);
        let first = oracle.place(&stats, &hier);
        assert_eq!(first, vec![TierId::FAST, TierId::SLOW]);
        let second = oracle.on_epoch(&stats, &hier);
        assert_eq!(second, vec![(0, TierId::SLOW), (1, TierId::FAST)]);
        // Windows exhausted: no further moves.
        assert!(oracle.on_epoch(&stats, &hier).is_empty());
    }

    #[test]
    fn registry_round_trips() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::by_name(kind.name()), Some(kind));
            assert_eq!(kind.build(0, &[]).name(), kind.name());
        }
        assert_eq!(PolicyKind::by_name("clairvoyant"), None);
    }
}
