//! The algebra behind `--jobs`-invariant telemetry, property-tested.
//!
//! Mirrors `histogram_merge_equals_combined` in `hybridmem/src/stats.rs`
//! at the snapshot level: merging per-shard snapshots must be
//! associative, commutative, and equal to recording every event into a
//! single recorder. Snapshots are compared through their sim-domain
//! JSONL rendering — the exact byte string the CI determinism gate
//! diffs — so the properties are checked on what actually ships.

use mnemo_telemetry::{DomainFilter, Recorder, Snapshot};
use proptest::prelude::*;

/// One synthetic recording event, spread across every metric type.
#[derive(Debug, Clone)]
enum Event {
    Count(u8, u64),
    Gauge(u8, f64),
    Observe(u8, f64),
}

fn apply(r: &mut Recorder, e: &Event) {
    match e {
        Event::Count(k, n) => r.count(&format!("c{k}"), *n),
        Event::Gauge(k, v) => r.gauge(&format!("g{k}"), *v),
        Event::Observe(k, v) => r.observe(&format!("h{k}"), *v),
    }
}

/// Gauge/histogram samples are integer-valued: IEEE f64 addition is
/// commutative but *not* associative, so bytewise associativity only
/// holds on exactly-representable sums. The runtime guarantee does not
/// need float associativity — shards are folded in fixed index order —
/// and that end-to-end path is covered by `tests/telemetry.rs`.
fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0u8..4, 0u64..1_000).prop_map(|(k, n)| Event::Count(k, n)),
        (0u8..4, 0u64..1_000_000).prop_map(|(k, v)| Event::Gauge(k, v as f64)),
        (0u8..4, 1u64..1_000_000_000).prop_map(|(k, v)| Event::Observe(k, v as f64)),
    ]
}

fn rendered(snap: &Snapshot) -> String {
    mnemo_telemetry::export::to_jsonl(std::slice::from_ref(snap), DomainFilter::SimOnly)
}

fn record_all(events: &[Event]) -> Snapshot {
    let mut r = Recorder::new();
    for e in events {
        apply(&mut r, e);
    }
    r.snapshot(0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn merge_is_commutative(
        xs in proptest::collection::vec(event_strategy(), 0..40),
        ys in proptest::collection::vec(event_strategy(), 0..40),
    ) {
        let a = record_all(&xs);
        let b = record_all(&ys);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(rendered(&ab), rendered(&ba));
    }

    #[test]
    fn merge_is_associative(
        xs in proptest::collection::vec(event_strategy(), 0..30),
        ys in proptest::collection::vec(event_strategy(), 0..30),
        zs in proptest::collection::vec(event_strategy(), 0..30),
    ) {
        let (a, b, c) = (record_all(&xs), record_all(&ys), record_all(&zs));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(rendered(&left), rendered(&right));
    }

    #[test]
    fn sharded_merge_equals_single_recorder(
        events in proptest::collection::vec(event_strategy(), 1..80),
        shards in 2usize..6,
    ) {
        // Round-robin the events over N shard recorders, then merge.
        let mut recorders: Vec<Recorder> = (0..shards).map(|_| Recorder::new()).collect();
        for (i, e) in events.iter().enumerate() {
            apply(&mut recorders[i % shards], e);
        }
        let mut merged = Snapshot::empty(0);
        for r in &recorders {
            merged.merge(&r.snapshot(0));
        }
        prop_assert_eq!(rendered(&merged), rendered(&record_all(&events)));
    }

    #[test]
    fn empty_snapshot_is_identity(
        events in proptest::collection::vec(event_strategy(), 0..40),
    ) {
        let a = record_all(&events);
        let mut left = Snapshot::empty(0);
        left.merge(&a);
        let mut right = a.clone();
        right.merge(&Snapshot::empty(0));
        prop_assert_eq!(rendered(&left), rendered(&a));
        prop_assert_eq!(rendered(&right), rendered(&a));
    }
}
