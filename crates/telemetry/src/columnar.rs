//! A minimal self-contained columnar writer, inspired by
//! otlp2parquet's telemetry→columnar conversion but with no Parquet
//! dependency (the workspace builds offline against vendored shims).
//!
//! Layout under the target directory:
//!
//! * `schema.csv` — the versioned column manifest: one row per column
//!   file with its kind, metric, domain and field. Readers check the
//!   `version` column against [`SCHEMA_VERSION`].
//! * `columns/` — one file per (metric, field): a one-line header
//!   naming the column, then `epoch,value` rows. Column-per-field files
//!   make single-metric reads cheap and diffs per-metric.
//!
//! Wall-domain column files are named with a `timing-` prefix, so the
//! existing CI convention (`diff -r --exclude='timing-*'`) excludes
//! them from determinism and golden gates without new machinery; the
//! schema manifest likewise lists only sim-domain columns so that it is
//! itself byte-stable.

use crate::export::{fmt_f64, HIST_QUANTILES};
use crate::recorder::{MetricHistogram, TimeDomain};
use crate::snapshot::{Snapshot, SCHEMA_VERSION};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// Make a metric name filesystem-safe without losing readability.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The file a column is written to. Wall-domain columns carry the
/// `timing-` prefix that CI byte diffs exclude.
fn column_file(kind: &str, metric: &str, field: &str, domain: TimeDomain) -> String {
    let base = format!("{kind}.{}.{field}.col", sanitize(metric));
    match domain {
        TimeDomain::Sim => base,
        TimeDomain::Wall => format!("timing-{base}"),
    }
}

/// Write the columnar layout for `snapshots` under `dir` (see module
/// docs). Deterministic: column order is (kind, metric, field) sorted,
/// rows are in epoch order.
pub fn write_columnar(dir: &Path, snapshots: &[Snapshot]) -> io::Result<()> {
    let cols_dir = dir.join("columns");
    fs::create_dir_all(&cols_dir)?;

    // (kind, metric, field) -> (domain, rows of (epoch, rendered value))
    type ColumnKey = (String, String, String);
    type ColumnRows = (TimeDomain, Vec<(u64, String)>);
    let mut columns: BTreeMap<ColumnKey, ColumnRows> = BTreeMap::new();
    let mut push =
        |kind: &str, metric: &str, field: &str, domain: TimeDomain, epoch: u64, value: String| {
            columns
                .entry((kind.to_string(), metric.to_string(), field.to_string()))
                .or_insert_with(|| (domain, Vec::new()))
                .1
                .push((epoch, value));
        };

    for snap in snapshots {
        let epoch = snap.epoch();
        for (name, v) in snap.counters() {
            push(
                "counter",
                name,
                "value",
                TimeDomain::Sim,
                epoch,
                v.to_string(),
            );
        }
        for (name, domain, g) in snap.gauges() {
            push("gauge", name, "sum", domain, epoch, fmt_f64(g.sum));
            push("gauge", name, "count", domain, epoch, g.count.to_string());
            push("gauge", name, "min", domain, epoch, fmt_f64(g.min));
            push("gauge", name, "max", domain, epoch, fmt_f64(g.max));
            push("gauge", name, "mean", domain, epoch, fmt_f64(g.mean()));
        }
        for (name, domain, h) in snap.histograms() {
            push(
                "hist",
                name,
                "count",
                domain,
                epoch,
                h.samples().to_string(),
            );
            push("hist", name, "mean", domain, epoch, fmt_f64(h.mean_value()));
            push("hist", name, "min", domain, epoch, fmt_f64(h.min_value()));
            push("hist", name, "max", domain, epoch, fmt_f64(h.max_value()));
            push("hist", name, "sum", domain, epoch, fmt_f64(h.value_sum()));
            for (label, q) in HIST_QUANTILES {
                push(
                    "hist",
                    name,
                    label,
                    domain,
                    epoch,
                    fmt_f64(h.quantile_value(q)),
                );
            }
        }
    }

    let mut manifest = String::from("version,kind,metric,domain,field,file\n");
    for ((kind, metric, field), (domain, rows)) in &columns {
        let file = column_file(kind, metric, field, *domain);
        if *domain == TimeDomain::Sim {
            manifest.push_str(&format!(
                "{SCHEMA_VERSION},{kind},{metric},{},{field},columns/{file}\n",
                domain.name()
            ));
        }
        let mut body = format!("epoch,{kind}.{metric}.{field}\n");
        for (epoch, value) in rows {
            body.push_str(&format!("{epoch},{value}\n"));
        }
        fs::write(cols_dir.join(file), body)?;
    }
    fs::write(dir.join("schema.csv"), manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn workspace(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mnemo-columnar-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn epochs() -> Vec<Snapshot> {
        (0..3u64)
            .map(|e| {
                let mut r = Recorder::new();
                r.count("kv.requests", 10 * (e + 1));
                r.observe("kv.lat_ns", 100.0 * (e + 1) as f64);
                r.observe_wall("host_ns", 7.0);
                r.snapshot(e)
            })
            .collect()
    }

    #[test]
    fn writes_one_file_per_field_with_headers() {
        let dir = workspace("fields");
        write_columnar(&dir, &epochs()).unwrap();
        let counter =
            fs::read_to_string(dir.join("columns/counter.kv.requests.value.col")).unwrap();
        assert_eq!(
            counter,
            "epoch,counter.kv.requests.value\n0,10\n1,20\n2,30\n"
        );
        let p50 = fs::read_to_string(dir.join("columns/hist.kv.lat_ns.p50.col")).unwrap();
        assert!(p50.starts_with("epoch,hist.kv.lat_ns.p50\n"));
        assert_eq!(p50.lines().count(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wall_columns_carry_timing_prefix_and_stay_out_of_schema() {
        let dir = workspace("wall");
        write_columnar(&dir, &epochs()).unwrap();
        assert!(dir.join("columns/timing-hist.host_ns.count.col").exists());
        let manifest = fs::read_to_string(dir.join("schema.csv")).unwrap();
        assert!(manifest.starts_with("version,kind,metric,domain,field,file\n"));
        assert!(manifest
            .contains("1,counter,kv.requests,sim,value,columns/counter.kv.requests.value.col"));
        assert!(
            !manifest.contains("host_ns"),
            "wall columns must not be in the gated manifest"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sanitizes_hostile_metric_names() {
        assert_eq!(sanitize("a/b c"), "a_b_c");
        assert_eq!(
            column_file("gauge", "x/y", "sum", TimeDomain::Wall),
            "timing-gauge.x_y.sum.col"
        );
    }
}
