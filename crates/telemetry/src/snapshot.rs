//! Epoch snapshots and their order-independent merge.
//!
//! A [`Snapshot`] is the unit of aggregation and export: the frozen
//! state of one recorder (or one shard's slice of an epoch). Merging is
//! **associative and commutative** — counters add, gauges combine
//! sum/count/min/max, histograms merge bucket-wise — so folding shard
//! snapshots in any order equals recording everything into a single
//! recorder. That property is what makes sim-domain telemetry
//! byte-identical under any `--jobs` value, and it is property-tested
//! in this crate.

use crate::recorder::{MetricHistogram, TimeDomain};
use hybridmem::Histogram;
use std::collections::BTreeMap;

/// Version of the exported schema. Bump when the column list or the
/// meaning of any exported field changes; exporters embed it in every
/// artifact so downstream readers can detect drift.
pub const SCHEMA_VERSION: u32 = 1;

/// Order-independent gauge aggregate. Individual observations are not
/// kept; `sum`/`count`/`min`/`max` merge commutatively, which is exactly
/// the set of reductions that survive sharding without an ordered log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeAgg {
    /// Sum of all observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
    /// Smallest observation (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest observation (`f64::NEG_INFINITY` when empty).
    pub max: f64,
}

impl Default for GaugeAgg {
    fn default() -> GaugeAgg {
        GaugeAgg {
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl GaugeAgg {
    /// Fold one observation in.
    pub fn observe(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merge another aggregate in (commutative, associative).
    pub fn merge(&mut self, other: &GaugeAgg) {
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean observation; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Frozen aggregate state of one epoch (or one shard's slice of it).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    epoch: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, (TimeDomain, GaugeAgg)>,
    hists: BTreeMap<String, (TimeDomain, Histogram)>,
}

impl Snapshot {
    /// An empty snapshot for `epoch` — the identity element of
    /// [`Snapshot::merge`].
    pub fn empty(epoch: u64) -> Snapshot {
        Snapshot {
            epoch,
            ..Snapshot::default()
        }
    }

    pub(crate) fn from_parts(
        epoch: u64,
        counters: BTreeMap<String, u64>,
        gauges: BTreeMap<String, (TimeDomain, GaugeAgg)>,
        hists: BTreeMap<String, (TimeDomain, Histogram)>,
    ) -> Snapshot {
        Snapshot {
            epoch,
            counters,
            gauges,
            hists,
        }
    }

    /// Which epoch this snapshot covers.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Merge another snapshot of the same epoch into this one.
    /// Commutative and associative; metric names union, values combine
    /// by their type's reduction.
    pub fn merge(&mut self, other: &Snapshot) {
        debug_assert_eq!(
            self.epoch, other.epoch,
            "merging snapshots from different epochs"
        );
        self.fold(other);
    }

    /// [`Snapshot::merge`] across epoch boundaries: combines the values
    /// but keeps this snapshot's epoch number. This is the whole-run
    /// accumulation behind summary totals, where the epoch identity is
    /// deliberately discarded.
    pub fn fold(&mut self, other: &Snapshot) {
        for (name, n) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += n;
        }
        for (name, (domain, agg)) in &other.gauges {
            let entry = self
                .gauges
                .entry(name.clone())
                .or_insert_with(|| (*domain, GaugeAgg::default()));
            debug_assert_eq!(entry.0, *domain, "gauge '{name}' domain mismatch in merge");
            entry.1.merge(agg);
        }
        for (name, (domain, hist)) in &other.hists {
            let entry = self
                .hists
                .entry(name.clone())
                .or_insert_with(|| (*domain, Histogram::new()));
            debug_assert_eq!(
                entry.0, *domain,
                "histogram '{name}' domain mismatch in merge"
            );
            entry.1.merge_with(hist);
        }
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge aggregate, if recorded.
    pub fn gauge(&self, name: &str) -> Option<&GaugeAgg> {
        self.gauges.get(name).map(|(_, agg)| agg)
    }

    /// Histogram, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name).map(|(_, h)| h)
    }

    /// Time domain of a gauge or histogram metric, if present.
    pub fn domain_of(&self, name: &str) -> Option<TimeDomain> {
        self.gauges
            .get(name)
            .map(|(d, _)| *d)
            .or_else(|| self.hists.get(name).map(|(d, _)| *d))
    }

    /// Counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, TimeDomain, &GaugeAgg)> {
        self.gauges.iter().map(|(k, (d, g))| (k.as_str(), *d, g))
    }

    /// Histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, TimeDomain, &Histogram)> {
        self.hists.iter().map(|(k, (d, h))| (k.as_str(), *d, h))
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample(epoch: u64, base: f64) -> Snapshot {
        let mut r = Recorder::new();
        r.count("c", base as u64);
        r.gauge("g", base);
        r.observe("h", base * 2.0);
        r.snapshot(epoch)
    }

    #[test]
    fn empty_is_merge_identity() {
        let a = sample(3, 5.0);
        let mut merged = Snapshot::empty(3);
        merged.merge(&a);
        assert_eq!(merged.counter("c"), a.counter("c"));
        assert_eq!(merged.gauge("g"), a.gauge("g"));
        assert_eq!(
            merged.histogram("h").unwrap().count(),
            a.histogram("h").unwrap().count()
        );
    }

    #[test]
    fn merge_is_commutative_on_all_types() {
        let a = sample(0, 4.0);
        let b = sample(0, 9.0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counter("c"), ba.counter("c"));
        assert_eq!(ab.gauge("g"), ba.gauge("g"));
        assert_eq!(
            ab.histogram("h").unwrap().mean(),
            ba.histogram("h").unwrap().mean()
        );
    }

    #[test]
    fn merge_unions_disjoint_names() {
        let mut r1 = Recorder::new();
        r1.count("only.left", 1);
        let mut r2 = Recorder::new();
        r2.count("only.right", 2);
        let mut merged = r1.snapshot(0);
        merged.merge(&r2.snapshot(0));
        assert_eq!(merged.counter("only.left"), 1);
        assert_eq!(merged.counter("only.right"), 2);
    }

    #[test]
    fn fold_accumulates_across_epochs() {
        let mut total = Snapshot::empty(0);
        total.fold(&sample(0, 3.0));
        total.fold(&sample(1, 4.0));
        assert_eq!(total.epoch(), 0, "fold keeps the accumulator's epoch");
        assert_eq!(total.counter("c"), 7);
        assert_eq!(total.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn domain_survives_merge() {
        let mut r1 = Recorder::new();
        r1.observe_wall("w", 1.0);
        r1.observe("s", 2.0);
        let mut merged = Snapshot::empty(0);
        merged.merge(&r1.snapshot(0));
        assert_eq!(merged.domain_of("w"), Some(TimeDomain::Wall));
        assert_eq!(merged.domain_of("s"), Some(TimeDomain::Sim));
        assert_eq!(merged.domain_of("missing"), None);
    }
}
