//! Epoch rolling: slicing a run's telemetry into fixed-length windows.
//!
//! An [`EpochLog`] wraps a [`Recorder`] and counts events; every
//! `epoch_len` events it freezes the recorder into a [`Snapshot`] and
//! starts the next epoch empty. Epoch boundaries are defined in *event
//! counts*, not time, so they land on the same requests regardless of
//! worker count — a precondition for `--jobs`-invariant exports.
//!
//! For sharded runs, each shard rolls its own log over its slice of the
//! trace; [`merge_epoch_logs`] then folds the per-shard snapshots
//! epoch-index by epoch-index. Because [`Snapshot::merge`] is
//! commutative, the fold order (and therefore the shard completion
//! order) cannot affect the result.

use crate::recorder::Recorder;
use crate::snapshot::Snapshot;

/// A recorder that rolls over into a fresh snapshot every `epoch_len`
/// events.
#[derive(Debug, Clone)]
pub struct EpochLog {
    recorder: Recorder,
    epoch_len: u64,
    events_in_epoch: u64,
    next_epoch: u64,
    done: Vec<Snapshot>,
}

impl EpochLog {
    /// A log that closes an epoch every `epoch_len` events. An
    /// `epoch_len` of 0 means "one epoch for the whole run" (the log
    /// only closes at [`EpochLog::finish`]).
    pub fn new(epoch_len: u64) -> EpochLog {
        EpochLog {
            recorder: Recorder::new(),
            epoch_len,
            events_in_epoch: 0,
            next_epoch: 0,
            done: Vec::new(),
        }
    }

    /// The recorder for the *current* epoch.
    pub fn recorder(&mut self) -> &mut Recorder {
        &mut self.recorder
    }

    /// Count one event against the current epoch, closing it if the
    /// epoch length is reached.
    pub fn tick(&mut self) {
        self.events_in_epoch += 1;
        if self.epoch_len > 0 && self.events_in_epoch >= self.epoch_len {
            self.roll();
        }
    }

    fn roll(&mut self) {
        let snap = self.recorder.take_snapshot(self.next_epoch);
        self.done.push(snap);
        self.next_epoch += 1;
        self.events_in_epoch = 0;
    }

    /// Number of epochs already closed.
    pub fn closed_epochs(&self) -> usize {
        self.done.len()
    }

    /// Close the trailing partial epoch (if it saw any events or
    /// metrics) and return all snapshots in epoch order.
    pub fn finish(mut self) -> Vec<Snapshot> {
        if self.events_in_epoch > 0 || !self.recorder.is_empty() {
            self.roll();
        }
        self.done
    }
}

/// Fold per-shard epoch snapshot vectors into one vector, merging by
/// epoch index. Shards may have closed different numbers of epochs
/// (trailing partial epochs); missing entries merge as empty.
pub fn merge_epoch_logs(per_shard: &[Vec<Snapshot>]) -> Vec<Snapshot> {
    let epochs = per_shard.iter().map(|s| s.len()).max().unwrap_or(0);
    (0..epochs)
        .map(|i| {
            let mut merged = Snapshot::empty(i as u64);
            for shard in per_shard {
                if let Some(snap) = shard.get(i) {
                    merged.merge(snap);
                }
            }
            merged
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_every_epoch_len_events() {
        let mut log = EpochLog::new(3);
        for i in 0..7 {
            log.recorder().count("events", 1);
            log.recorder().observe("v", i as f64);
            log.tick();
        }
        let snaps = log.finish();
        assert_eq!(snaps.len(), 3); // 3 + 3 + trailing 1
        assert_eq!(snaps[0].epoch(), 0);
        assert_eq!(snaps[2].epoch(), 2);
        assert_eq!(snaps[0].counter("events"), 3);
        assert_eq!(snaps[2].counter("events"), 1);
        assert_eq!(snaps[1].histogram("v").unwrap().count(), 3);
    }

    #[test]
    fn zero_epoch_len_means_single_epoch() {
        let mut log = EpochLog::new(0);
        for _ in 0..100 {
            log.recorder().count("events", 1);
            log.tick();
        }
        let snaps = log.finish();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].counter("events"), 100);
    }

    #[test]
    fn empty_log_finishes_empty() {
        assert!(EpochLog::new(10).finish().is_empty());
    }

    #[test]
    fn sharded_merge_equals_single_log() {
        // Interleave the same 12 events into one log and into three
        // shard logs; the merged per-epoch snapshots must agree.
        let mut single = EpochLog::new(4);
        let mut shards: Vec<EpochLog> = (0..3).map(|_| EpochLog::new(4)).collect();
        for i in 0..12u64 {
            single.recorder().count("n", 1);
            single.recorder().observe("lat", (i * 10) as f64);
            single.tick();
        }
        // Shard by round-robin: each shard sees 4 events -> 1 epoch,
        // but epoch *indices* align because each shard rolls its own
        // slice; compare against a single log with a 12-event epoch.
        let mut whole = EpochLog::new(12);
        for i in 0..12u64 {
            let shard = &mut shards[(i % 3) as usize];
            shard.recorder().count("n", 1);
            shard.recorder().observe("lat", (i * 10) as f64);
            shard.tick();
            whole.recorder().count("n", 1);
            whole.recorder().observe("lat", (i * 10) as f64);
            whole.tick();
        }
        let per_shard: Vec<Vec<Snapshot>> = shards.into_iter().map(|s| s.finish()).collect();
        let merged = merge_epoch_logs(&per_shard);
        let expect = whole.finish();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].counter("n"), expect[0].counter("n"));
        assert_eq!(
            merged[0].histogram("lat").unwrap().mean(),
            expect[0].histogram("lat").unwrap().mean()
        );
    }

    #[test]
    fn merge_handles_uneven_epoch_counts() {
        let mut a = EpochLog::new(2);
        for _ in 0..4 {
            a.recorder().count("n", 1);
            a.tick();
        }
        let mut b = EpochLog::new(2);
        for _ in 0..2 {
            b.recorder().count("n", 1);
            b.tick();
        }
        let merged = merge_epoch_logs(&[a.finish(), b.finish()]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].counter("n"), 4);
        assert_eq!(merged[1].counter("n"), 2);
    }
}
