//! # mnemo-telemetry — the workspace's one observability subsystem
//!
//! The paper's Sensitivity Engine exists to *measure*: per-request
//! service times, tier hit ratios, throughput. Before this crate those
//! measurements were scattered across ad-hoc mechanisms — `hybridmem`
//! histograms aggregated by hand, wall-clock CSVs from the sweep timer,
//! `Instant::now()` pairs in bench binaries. `mnemo-telemetry` replaces
//! all of them with a single recording → aggregation → export pipeline:
//!
//! * [`recorder`] — per-shard [`Recorder`]s: counters, gauges and
//!   log-bucketed histograms (the [`MetricHistogram`] trait extends
//!   [`hybridmem::Histogram`], so the simulator's service-time
//!   distribution machinery is reused, not duplicated), plus
//!   span-scoped timers in *two time domains*: simulated nanoseconds
//!   ([`hybridmem::SimClock`], byte-deterministic under any `--jobs`)
//!   and host wall-clock (diagnostic only, never gated).
//! * [`snapshot`] — epoch [`Snapshot`]s with a stable, versioned schema
//!   ([`SCHEMA_VERSION`]). Merging shard snapshots is associative and
//!   commutative and equals recording into one recorder, so a sharded
//!   run's telemetry is independent of worker count and completion
//!   order.
//! * [`epoch`] — [`EpochLog`]: rolls a recorder over fixed-length event
//!   epochs, producing one snapshot per epoch.
//! * [`export`] — JSONL and long-format CSV renderers (plus the legacy
//!   `timing-*.csv` stage format the CI bench-smoke job reads).
//! * [`columnar`] — a minimal self-contained columnar writer
//!   (otlp2parquet-inspired): one file per metric field with a schema
//!   header, no external Parquet dependency. Wall-domain columns are
//!   written under a `timing-` filename prefix so the CI determinism
//!   and golden gates exclude them exactly like the timing CSVs.
//!
//! Sim-domain metrics are **byte-deterministic**: exporting them after
//! a run with `--jobs 1` and `--jobs 4` yields identical bytes, which
//! CI enforces.
//!
//! # Example
//!
//! ```
//! use mnemo_telemetry::{DomainFilter, Recorder, TimeDomain};
//!
//! let mut shard_a = Recorder::new();
//! let mut shard_b = Recorder::new();
//! shard_a.count("requests", 2);
//! shard_a.observe("service_ns", 120.0);
//! shard_b.count("requests", 1);
//! shard_b.observe("service_ns", 480.0);
//!
//! let mut merged = shard_a.snapshot(0);
//! merged.merge(&shard_b.snapshot(0));
//! assert_eq!(merged.counter("requests"), 3);
//! assert_eq!(merged.histogram("service_ns").unwrap().count(), 2);
//! let jsonl = mnemo_telemetry::export::to_jsonl(&[merged], DomainFilter::SimOnly);
//! assert!(jsonl.contains("\"requests\":3"));
//! let _ = TimeDomain::Sim;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columnar;
pub mod epoch;
pub mod export;
pub mod recorder;
pub mod snapshot;

pub use columnar::write_columnar;
pub use epoch::EpochLog;
pub use export::DomainFilter;
pub use recorder::{
    AccessStatKeys, CacheStatKeys, MetricHistogram, Recorder, SimSpan, SpanRecord, TimeDomain,
};
pub use snapshot::{GaugeAgg, Snapshot, SCHEMA_VERSION};
