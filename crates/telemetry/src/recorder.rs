//! The low-overhead recording core.
//!
//! A [`Recorder`] is deliberately *unshared*: every shard, server or
//! sweep owns its own, so recording is plain memory writes — no locks,
//! no atomics on the hot path ("lock-free" by construction). Cross-shard
//! aggregation happens at snapshot time, where
//! [`Snapshot::merge`](crate::Snapshot::merge) is associative and
//! commutative, so the merged result is independent of shard completion
//! order and worker count.

use crate::snapshot::{GaugeAgg, Snapshot};
use hybridmem::system::CacheStats;
use hybridmem::{AccessStats, Histogram, SimClock};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Which clock a metric's values come from.
///
/// The distinction is load-bearing for CI: sim-domain values are derived
/// from [`hybridmem::SimClock`] arithmetic and deterministic counters, so
/// their export is byte-identical for every `--jobs` value and is gated;
/// wall-domain values are host timings, excluded from every determinism
/// and golden diff (the columnar writer prefixes their files `timing-`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TimeDomain {
    /// Simulated time / deterministic logical quantities.
    Sim,
    /// Host wall-clock time (diagnostic only).
    Wall,
}

impl TimeDomain {
    /// Lower-case schema name.
    pub fn name(&self) -> &'static str {
        match self {
            TimeDomain::Sim => "sim",
            TimeDomain::Wall => "wall",
        }
    }
}

/// The shared histogram abstraction: what the telemetry pipeline needs
/// from a log-bucketed histogram. Implemented for
/// [`hybridmem::Histogram`] so the simulator's service-time machinery is
/// reused rather than re-implemented; alternative backends (e.g. a
/// fixed-bucket histogram for constrained targets) only need this trait.
pub trait MetricHistogram: Default + Clone {
    /// Record one sample.
    fn observe(&mut self, value: f64);
    /// Merge another histogram of the same resolution into this one.
    fn merge_with(&mut self, other: &Self);
    /// Number of samples.
    fn samples(&self) -> u64;
    /// Mean sample; 0 when empty.
    fn mean_value(&self) -> f64;
    /// Smallest sample; 0 when empty.
    fn min_value(&self) -> f64;
    /// Largest sample; 0 when empty.
    fn max_value(&self) -> f64;
    /// Approximate quantile in `[0, 1]`.
    fn quantile_value(&self, q: f64) -> f64;
    /// Sum of all samples (derived; deterministic for identical inputs).
    fn value_sum(&self) -> f64 {
        self.mean_value() * self.samples() as f64
    }
}

impl MetricHistogram for Histogram {
    fn observe(&mut self, value: f64) {
        self.record(value);
    }
    fn merge_with(&mut self, other: &Self) {
        self.merge(other);
    }
    fn samples(&self) -> u64 {
        self.count()
    }
    fn mean_value(&self) -> f64 {
        self.mean()
    }
    fn min_value(&self) -> f64 {
        self.min()
    }
    fn max_value(&self) -> f64 {
        self.max()
    }
    fn quantile_value(&self, q: f64) -> f64 {
        self.quantile(q)
    }
}

/// One completed span: a named, timed region with an item count.
/// Spans are kept in execution order (the legacy `timing-*.csv` stage
/// table is ordered) *and* aggregated into the recorder's histograms,
/// so snapshots see them without needing ordered event storage.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Stage/span name (e.g. `"consult"`, `"panel-a"`).
    pub name: String,
    /// Which clock timed it.
    pub domain: TimeDomain,
    /// Items the span processed (0 when not meaningful).
    pub items: u64,
    /// Span duration in nanoseconds of its domain's clock.
    pub duration_ns: f64,
}

/// An open sim-domain span: captures the virtual clock at start so the
/// matching [`Recorder::end_sim_span`] can charge the difference.
#[derive(Debug, Clone, Copy)]
pub struct SimSpan {
    start_ns: u128,
}

impl SimSpan {
    /// Open a span at the clock's current virtual time.
    pub fn begin(clock: &SimClock) -> SimSpan {
        SimSpan {
            start_ns: clock.now_ns(),
        }
    }
}

/// Precomputed metric names for one [`AccessStats`] prefix, so the
/// per-request telemetry block formats each name once per run instead
/// of six times per request.
#[derive(Debug, Clone)]
pub struct AccessStatKeys {
    reads: String,
    writes: String,
    read_bytes: String,
    write_bytes: String,
    read_ns: String,
    write_ns: String,
}

impl AccessStatKeys {
    /// Build the six metric names under `prefix` (e.g. `kv.fast`).
    pub fn new(prefix: &str) -> AccessStatKeys {
        AccessStatKeys {
            reads: format!("{prefix}.reads"),
            writes: format!("{prefix}.writes"),
            read_bytes: format!("{prefix}.read_bytes"),
            write_bytes: format!("{prefix}.write_bytes"),
            read_ns: format!("{prefix}.read_ns"),
            write_ns: format!("{prefix}.write_ns"),
        }
    }
}

/// Precomputed metric names for one [`CacheStats`] prefix (e.g.
/// `kv.llc`); the cache-stats analogue of [`AccessStatKeys`].
#[derive(Debug, Clone)]
pub struct CacheStatKeys {
    hits: String,
    misses: String,
    hit_bytes: String,
    miss_bytes: String,
}

impl CacheStatKeys {
    /// Build the four metric names under `prefix`.
    pub fn new(prefix: &str) -> CacheStatKeys {
        CacheStatKeys {
            hits: format!("{prefix}.hits"),
            misses: format!("{prefix}.misses"),
            hit_bytes: format!("{prefix}.hit_bytes"),
            miss_bytes: format!("{prefix}.miss_bytes"),
        }
    }
}

/// A single-owner metrics recorder.
#[derive(Debug, Default, Clone)]
pub struct Recorder {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, (TimeDomain, GaugeAgg)>,
    hists: BTreeMap<String, (TimeDomain, Histogram)>,
    spans: Vec<SpanRecord>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Add `n` to a counter. Counters are logical counts — always
    /// sim-domain, always deterministic. The name is only copied the
    /// first time a counter is seen, so steady-state recording does not
    /// allocate.
    pub fn count(&mut self, name: &str, n: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                self.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Record a sim-domain gauge observation (aggregated as
    /// sum/count/min/max so shard merges are order-independent).
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauge_in(name, TimeDomain::Sim, value);
    }

    /// Record a wall-domain gauge observation.
    pub fn gauge_wall(&mut self, name: &str, value: f64) {
        self.gauge_in(name, TimeDomain::Wall, value);
    }

    fn gauge_in(&mut self, name: &str, domain: TimeDomain, value: f64) {
        match self.gauges.get_mut(name) {
            Some(entry) => {
                debug_assert_eq!(entry.0, domain, "gauge '{name}' changed time domain");
                entry.1.observe(value);
            }
            None => {
                let mut agg = GaugeAgg::default();
                agg.observe(value);
                self.gauges.insert(name.to_string(), (domain, agg));
            }
        }
    }

    /// Record a sample into a sim-domain histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.observe_in(name, TimeDomain::Sim, value);
    }

    /// Record a sample into a wall-domain histogram.
    pub fn observe_wall(&mut self, name: &str, value: f64) {
        self.observe_in(name, TimeDomain::Wall, value);
    }

    fn observe_in(&mut self, name: &str, domain: TimeDomain, value: f64) {
        match self.hists.get_mut(name) {
            Some(entry) => {
                debug_assert_eq!(entry.0, domain, "histogram '{name}' changed time domain");
                entry.1.observe(value);
            }
            None => {
                let mut h = Histogram::new();
                h.observe(value);
                self.hists.insert(name.to_string(), (domain, h));
            }
        }
    }

    /// Record a completed span: kept in execution order and aggregated
    /// into `span.<name>.<domain>_ns` (histogram) and
    /// `span.<name>.items` (counter).
    pub fn record_span(&mut self, name: &str, domain: TimeDomain, items: u64, duration_ns: f64) {
        self.observe_in(
            &format!("span.{name}.{}_ns", domain.name()),
            domain,
            duration_ns,
        );
        self.count(&format!("span.{name}.items"), items);
        self.spans.push(SpanRecord {
            name: name.to_string(),
            domain,
            items,
            duration_ns,
        });
    }

    /// Run `f` as a wall-clock span over `items` items.
    pub fn time_wall<T>(&mut self, name: &str, items: u64, f: impl FnOnce() -> T) -> T {
        let t = Instant::now();
        let out = f();
        self.record_wall_span(name, items, t.elapsed());
        out
    }

    /// Record an externally wall-timed span.
    pub fn record_wall_span(&mut self, name: &str, items: u64, wall: Duration) {
        self.record_span(name, TimeDomain::Wall, items, wall.as_secs_f64() * 1e9);
    }

    /// Close a sim-domain span opened with [`SimSpan::begin`] against the
    /// same virtual clock.
    pub fn end_sim_span(&mut self, name: &str, items: u64, span: SimSpan, clock: &SimClock) {
        let elapsed = clock.now_ns().saturating_sub(span.start_ns);
        self.record_span(name, TimeDomain::Sim, items, elapsed as f64);
    }

    /// Fold a device's [`AccessStats`] into counters/gauges under
    /// `prefix` (e.g. `kv.fast`): access + byte counters (sim domain)
    /// and total service-nanosecond gauges. Per-request callers should
    /// precompute an [`AccessStatKeys`] once and use
    /// [`Recorder::record_access_stats_with`] instead, which skips the
    /// six name formats.
    pub fn record_access_stats(&mut self, prefix: &str, stats: &AccessStats) {
        self.record_access_stats_with(&AccessStatKeys::new(prefix), stats);
    }

    /// [`Recorder::record_access_stats`] through precomputed names — no
    /// per-call allocation.
    pub fn record_access_stats_with(&mut self, keys: &AccessStatKeys, stats: &AccessStats) {
        self.count(&keys.reads, stats.reads);
        self.count(&keys.writes, stats.writes);
        self.count(&keys.read_bytes, stats.read_bytes);
        self.count(&keys.write_bytes, stats.write_bytes);
        self.gauge(&keys.read_ns, stats.read_ns);
        self.gauge(&keys.write_ns, stats.write_ns);
    }

    /// Fold LLC [`CacheStats`] into counters under `prefix` (e.g.
    /// `kv.llc`). Per-request callers should precompute a
    /// [`CacheStatKeys`] and use [`Recorder::record_cache_stats_with`].
    pub fn record_cache_stats(&mut self, prefix: &str, stats: &CacheStats) {
        self.record_cache_stats_with(&CacheStatKeys::new(prefix), stats);
    }

    /// [`Recorder::record_cache_stats`] through precomputed names — no
    /// per-call allocation.
    pub fn record_cache_stats_with(&mut self, keys: &CacheStatKeys, stats: &CacheStats) {
        self.count(&keys.hits, stats.hits);
        self.count(&keys.misses, stats.misses);
        self.count(&keys.hit_bytes, stats.hit_bytes);
        self.count(&keys.miss_bytes, stats.miss_bytes);
    }

    /// Completed spans in execution order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Snapshot the current aggregate state (leaves the recorder
    /// untouched).
    pub fn snapshot(&self, epoch: u64) -> Snapshot {
        Snapshot::from_parts(
            epoch,
            self.counters.clone(),
            self.gauges.clone(),
            self.hists.clone(),
        )
    }

    /// Snapshot and reset: the epoch-boundary operation. Spans are
    /// cleared too (they were aggregated into the snapshot's histograms
    /// when recorded).
    pub fn take_snapshot(&mut self, epoch: u64) -> Snapshot {
        let snap = Snapshot::from_parts(
            epoch,
            std::mem::take(&mut self.counters),
            std::mem::take(&mut self.gauges),
            std::mem::take(&mut self.hists),
        );
        self.spans.clear();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem::spec::AccessKind;

    #[test]
    fn counters_accumulate() {
        let mut r = Recorder::new();
        r.count("a", 2);
        r.count("a", 3);
        assert_eq!(r.snapshot(0).counter("a"), 5);
        assert_eq!(r.snapshot(0).counter("missing"), 0);
    }

    #[test]
    fn gauges_aggregate_order_independently() {
        let mut r = Recorder::new();
        r.gauge("g", 1.0);
        r.gauge("g", 9.0);
        r.gauge("g", 5.0);
        let snap = r.snapshot(0);
        let g = snap.gauge("g").unwrap();
        assert_eq!(g.count, 3);
        assert_eq!(g.sum, 15.0);
        assert_eq!(g.min, 1.0);
        assert_eq!(g.max, 9.0);
        assert_eq!(g.mean(), 5.0);
    }

    #[test]
    fn histograms_reuse_hybridmem_buckets() {
        let mut r = Recorder::new();
        for v in [10.0, 20.0, 30.0] {
            r.observe("h", v);
        }
        let snap = r.snapshot(0);
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.samples(), 3);
        assert_eq!(h.mean_value(), 20.0);
        assert!((h.value_sum() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn spans_keep_order_and_aggregate() {
        let mut r = Recorder::new();
        let x = r.time_wall("stage-a", 3, || 42);
        assert_eq!(x, 42);
        r.record_wall_span("stage-b", 1, Duration::from_millis(2));
        assert_eq!(r.spans().len(), 2);
        assert_eq!(r.spans()[0].name, "stage-a");
        assert_eq!(r.spans()[1].name, "stage-b");
        let snap = r.snapshot(0);
        assert_eq!(snap.counter("span.stage-a.items"), 3);
        assert!(snap.histogram("span.stage-b.wall_ns").is_some());
    }

    #[test]
    fn sim_spans_charge_virtual_time() {
        let mut r = Recorder::new();
        let mut clock = SimClock::new();
        let span = SimSpan::begin(&clock);
        clock.advance(1500.0);
        r.end_sim_span("run", 10, span, &clock);
        let snap = r.snapshot(0);
        let h = snap.histogram("span.run.sim_ns").unwrap();
        assert_eq!(h.samples(), 1);
        assert_eq!(h.max_value(), 1500.0);
        assert_eq!(snap.counter("span.run.items"), 10);
    }

    #[test]
    fn take_snapshot_resets() {
        let mut r = Recorder::new();
        r.count("c", 1);
        r.observe("h", 5.0);
        let first = r.take_snapshot(0);
        assert_eq!(first.counter("c"), 1);
        assert!(r.is_empty());
        let second = r.take_snapshot(1);
        assert_eq!(second.counter("c"), 0);
        assert!(second.histogram("h").is_none());
    }

    #[test]
    fn stats_bridges_fold_into_metrics() {
        let mut stats = AccessStats::default();
        stats.record(AccessKind::Read, 64, 100.0);
        stats.record(AccessKind::Write, 32, 200.0);
        let cache = CacheStats {
            hits: 3,
            misses: 1,
            hit_bytes: 300,
            miss_bytes: 100,
        };
        let mut r = Recorder::new();
        r.record_access_stats("dev", &stats);
        r.record_cache_stats("llc", &cache);
        let snap = r.snapshot(0);
        assert_eq!(snap.counter("dev.reads"), 1);
        assert_eq!(snap.counter("dev.write_bytes"), 32);
        assert_eq!(snap.gauge("dev.read_ns").unwrap().sum, 100.0);
        assert_eq!(snap.counter("llc.hits"), 3);
        assert_eq!(snap.counter("llc.miss_bytes"), 100);
    }
}
