//! Row-oriented exporters: JSONL and long-format CSV, plus the legacy
//! `timing-*` stage formats that `par::SweepTimer` historically emitted
//! (kept byte-compatible so the CI bench-smoke exclusion list and any
//! downstream parsers keep working unchanged).
//!
//! Every gated artifact is rendered with [`DomainFilter::SimOnly`]:
//! sim-domain values are deterministic functions of the trace and seed,
//! so their rendered bytes are identical for every `--jobs` value.
//! Wall-domain values only ever appear in artifacts whose names carry
//! the `timing-` prefix, which CI excludes from byte diffs.

use crate::recorder::{MetricHistogram, SpanRecord, TimeDomain};
use crate::snapshot::{Snapshot, SCHEMA_VERSION};
use std::fs;
use std::io;
use std::path::Path;

/// Which time domains an exporter should include.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainFilter {
    /// Everything, wall-clock included (diagnostic artifacts only).
    All,
    /// Sim-domain metrics only — the deterministic, CI-gated subset.
    /// Counters are logical counts and always pass.
    SimOnly,
}

impl DomainFilter {
    /// Whether a metric in `domain` passes this filter.
    pub fn keep(&self, domain: TimeDomain) -> bool {
        match self {
            DomainFilter::All => true,
            DomainFilter::SimOnly => domain == TimeDomain::Sim,
        }
    }
}

/// Quantiles exported for every histogram, with their column names.
pub const HIST_QUANTILES: [(&str, f64); 3] = [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)];

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Canonical float rendering: Rust's shortest-roundtrip `Display`, which
/// maps equal bit patterns to equal strings — all the determinism gate
/// needs, with no precision loss.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // Non-finite values are JSON-hostile; render as null.
        "null".to_string()
    }
}

/// Render snapshots as JSON Lines: one object per epoch, with the
/// schema version embedded in every line.
pub fn to_jsonl(snapshots: &[Snapshot], filter: DomainFilter) -> String {
    let mut out = String::new();
    for snap in snapshots {
        let mut line = format!(
            "{{\"schema\":{SCHEMA_VERSION},\"epoch\":{},\"counters\":{{",
            snap.epoch()
        );
        let counters: Vec<String> = snap
            .counters()
            .map(|(name, v)| format!("\"{}\":{v}", json_escape(name)))
            .collect();
        line.push_str(&counters.join(","));
        line.push_str("},\"gauges\":{");
        let gauges: Vec<String> = snap
            .gauges()
            .filter(|(_, d, _)| filter.keep(*d))
            .map(|(name, d, g)| {
                format!(
                    "\"{}\":{{\"domain\":\"{}\",\"sum\":{},\"count\":{},\"min\":{},\"max\":{},\"mean\":{}}}",
                    json_escape(name),
                    d.name(),
                    fmt_f64(g.sum),
                    g.count,
                    fmt_f64(g.min),
                    fmt_f64(g.max),
                    fmt_f64(g.mean()),
                )
            })
            .collect();
        line.push_str(&gauges.join(","));
        line.push_str("},\"histograms\":{");
        let hists: Vec<String> = snap
            .histograms()
            .filter(|(_, d, _)| filter.keep(*d))
            .map(|(name, d, h)| {
                let quantiles: Vec<String> = HIST_QUANTILES
                    .iter()
                    .map(|(label, q)| format!("\"{label}\":{}", fmt_f64(h.quantile_value(*q))))
                    .collect();
                format!(
                    "\"{}\":{{\"domain\":\"{}\",\"count\":{},\"mean\":{},\"min\":{},\"max\":{},\"sum\":{},{}}}",
                    json_escape(name),
                    d.name(),
                    h.samples(),
                    fmt_f64(h.mean_value()),
                    fmt_f64(h.min_value()),
                    fmt_f64(h.max_value()),
                    fmt_f64(h.value_sum()),
                    quantiles.join(","),
                )
            })
            .collect();
        line.push_str(&hists.join(","));
        line.push_str("}}\n");
        out.push_str(&line);
    }
    out
}

/// Render snapshots as long-format CSV: one row per exported field, in
/// (epoch, kind, name, field) order.
pub fn to_csv(snapshots: &[Snapshot], filter: DomainFilter) -> String {
    let mut out = String::from("schema,epoch,kind,name,domain,field,value\n");
    for snap in snapshots {
        let epoch = snap.epoch();
        for (name, v) in snap.counters() {
            out.push_str(&format!(
                "{SCHEMA_VERSION},{epoch},counter,{name},sim,value,{v}\n"
            ));
        }
        for (name, domain, g) in snap.gauges().filter(|(_, d, _)| filter.keep(*d)) {
            let d = domain.name();
            for (field, value) in [
                ("sum", fmt_f64(g.sum)),
                ("count", g.count.to_string()),
                ("min", fmt_f64(g.min)),
                ("max", fmt_f64(g.max)),
                ("mean", fmt_f64(g.mean())),
            ] {
                out.push_str(&format!(
                    "{SCHEMA_VERSION},{epoch},gauge,{name},{d},{field},{value}\n"
                ));
            }
        }
        for (name, domain, h) in snap.histograms().filter(|(_, d, _)| filter.keep(*d)) {
            let d = domain.name();
            let mut fields = vec![
                ("count".to_string(), h.samples().to_string()),
                ("mean".to_string(), fmt_f64(h.mean_value())),
                ("min".to_string(), fmt_f64(h.min_value())),
                ("max".to_string(), fmt_f64(h.max_value())),
                ("sum".to_string(), fmt_f64(h.value_sum())),
            ];
            for (label, q) in HIST_QUANTILES {
                fields.push((label.to_string(), fmt_f64(h.quantile_value(q))));
            }
            for (field, value) in fields {
                out.push_str(&format!(
                    "{SCHEMA_VERSION},{epoch},hist,{name},{d},{field},{value}\n"
                ));
            }
        }
    }
    out
}

/// The legacy per-stage timing CSV (`sweep,jobs,stage,items,wall_ms` +
/// a `total` row) — byte-compatible with the original
/// `SweepTimer::to_csv` so existing CI parsing and the `timing-*`
/// exclusion convention are untouched.
pub fn timing_csv(label: &str, jobs: usize, spans: &[SpanRecord], total_ms: f64) -> String {
    let mut out = String::from("sweep,jobs,stage,items,wall_ms\n");
    for s in spans {
        out.push_str(&format!(
            "{},{},{},{},{:.3}\n",
            label,
            jobs,
            s.name,
            s.items,
            s.duration_ns / 1e6
        ));
    }
    out.push_str(&format!(
        "{},{},total,{},{:.3}\n",
        label,
        jobs,
        spans.iter().map(|s| s.items).sum::<u64>(),
        total_ms
    ));
    out
}

/// The legacy timing JSON — byte-compatible with the original
/// `SweepTimer::to_json`.
pub fn timing_json(label: &str, jobs: usize, spans: &[SpanRecord], total_ms: f64) -> String {
    let stages: Vec<String> = spans
        .iter()
        .map(|s| {
            format!(
                "{{\"stage\":\"{}\",\"items\":{},\"wall_ms\":{:.3}}}",
                s.name,
                s.items,
                s.duration_ns / 1e6
            )
        })
        .collect();
    format!(
        "{{\"sweep\":\"{}\",\"jobs\":{},\"total_ms\":{:.3},\"stages\":[{}]}}",
        label,
        jobs,
        total_ms,
        stages.join(",")
    )
}

/// Write the standard telemetry artifact set under `dir`:
///
/// * `telemetry.jsonl` — sim-domain JSONL (deterministic, CI-gated);
/// * `telemetry.csv` — sim-domain long CSV (deterministic, CI-gated);
/// * `timing-telemetry.jsonl` — full JSONL including wall-domain
///   metrics (the `timing-` prefix keeps it out of byte diffs);
/// * plus the columnar layout via [`crate::columnar::write_columnar`].
pub fn write_dir(dir: &Path, snapshots: &[Snapshot]) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(
        dir.join("telemetry.jsonl"),
        to_jsonl(snapshots, DomainFilter::SimOnly),
    )?;
    fs::write(
        dir.join("telemetry.csv"),
        to_csv(snapshots, DomainFilter::SimOnly),
    )?;
    fs::write(
        dir.join("timing-telemetry.jsonl"),
        to_jsonl(snapshots, DomainFilter::All),
    )?;
    crate::columnar::write_columnar(dir, snapshots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn snap() -> Snapshot {
        let mut r = Recorder::new();
        r.count("reqs", 7);
        r.gauge("occupancy", 0.5);
        r.observe("lat_ns", 100.0);
        r.observe_wall("wall_ns", 5.0);
        r.snapshot(2)
    }

    #[test]
    fn jsonl_embeds_schema_and_epoch() {
        let line = to_jsonl(&[snap()], DomainFilter::All);
        assert!(line.starts_with("{\"schema\":1,\"epoch\":2,"));
        assert!(line.contains("\"reqs\":7"));
        assert!(line.contains("\"wall_ns\""));
        assert!(line.ends_with("}\n"));
    }

    #[test]
    fn sim_only_filter_drops_wall_metrics() {
        let line = to_jsonl(&[snap()], DomainFilter::SimOnly);
        assert!(line.contains("\"lat_ns\""));
        assert!(line.contains("\"occupancy\""));
        assert!(!line.contains("wall_ns"));
    }

    #[test]
    fn csv_is_long_format_with_schema_column() {
        let csv = to_csv(&[snap()], DomainFilter::SimOnly);
        assert!(csv.starts_with("schema,epoch,kind,name,domain,field,value\n"));
        assert!(csv.contains("1,2,counter,reqs,sim,value,7\n"));
        assert!(csv.contains("1,2,hist,lat_ns,sim,count,1\n"));
        assert!(!csv.contains("wall_ns"));
    }

    #[test]
    fn timing_formats_match_legacy_bytes() {
        let spans = vec![
            SpanRecord {
                name: "consult".into(),
                domain: TimeDomain::Wall,
                items: 3,
                duration_ns: 1_500_000.0,
            },
            SpanRecord {
                name: "write".into(),
                domain: TimeDomain::Wall,
                items: 1,
                duration_ns: 2_000_000.0,
            },
        ];
        let csv = timing_csv("fig-test", 2, &spans, 4.0);
        assert_eq!(
            csv,
            "sweep,jobs,stage,items,wall_ms\n\
             fig-test,2,consult,3,1.500\n\
             fig-test,2,write,1,2.000\n\
             fig-test,2,total,4,4.000\n"
        );
        let json = timing_json("fig-test", 2, &spans, 4.0);
        assert!(json.starts_with("{\"sweep\":\"fig-test\",\"jobs\":2,\"total_ms\":4.000,"));
        assert!(json.contains("{\"stage\":\"consult\",\"items\":3,\"wall_ms\":1.500}"));
    }

    #[test]
    fn floats_render_shortest_roundtrip() {
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn write_dir_produces_gated_and_excluded_files() {
        let dir = std::env::temp_dir().join(format!("mnemo-telemetry-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        write_dir(&dir, &[snap()]).unwrap();
        let jsonl = fs::read_to_string(dir.join("telemetry.jsonl")).unwrap();
        assert!(!jsonl.contains("wall_ns"));
        let full = fs::read_to_string(dir.join("timing-telemetry.jsonl")).unwrap();
        assert!(full.contains("wall_ns"));
        assert!(dir.join("schema.csv").exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
