//! PR acceptance: on a 1M-request scrambled-zipfian stream over 10k
//! keys, the sketch-fed advisor must land within 5% of the exact
//! offline MnemoT consultation's cost factor, while the profiler state
//! stays inside the default 64 KiB budget the whole way.
//!
//! `MNEMO_SCALE` (a divisor, default 1) shrinks the request count so CI
//! can run a cheaper but structurally identical version.

use mnemo::advisor::{Advisor, AdvisorConfig};
use mnemo::sensitivity::SensitivityEngine;
use mnemo_stream::{StreamConfig, StreamProfiler};
use ycsb::{DistKind, WorkloadSpec};

fn scale() -> usize {
    std::env::var("MNEMO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&d| d >= 1)
        .unwrap_or(1)
}

#[test]
fn sketch_fed_advisor_matches_exact_offline_mnemot_within_5_percent() {
    let requests = 1_000_000 / scale();
    let spec = WorkloadSpec {
        distribution: DistKind::ScrambledZipfian { theta: 0.99 },
        ..WorkloadSpec::trending().scaled(10_000, requests)
    };
    let trace = spec.generate(42);

    // One set of measured baselines feeds both paths: the comparison
    // isolates the Pattern Engine (exact vs sketched).
    let config = AdvisorConfig::default();
    let baselines = SensitivityEngine::new(config.spec.clone(), config.noise)
        .measure(kvsim::StoreKind::Redis, &trace)
        .unwrap();
    let advisor = Advisor::new(config);
    let slo = 0.10;

    // Exact offline path: full trace, per-key stats, MnemoT ordering.
    let exact = advisor
        .consult_with_baselines(baselines.clone(), &trace)
        .unwrap()
        .recommend(slo)
        .unwrap();

    // Streaming path: one pass over the events, bounded state.
    let budget = 64 * 1024;
    let mut profiler = StreamProfiler::new(StreamConfig::default());
    for (i, event) in trace.events().enumerate() {
        profiler.observe(&event);
        if i % 100_000 == 0 {
            assert!(
                profiler.memory_bytes() <= budget,
                "profiler footprint {} blew the {budget} B budget mid-stream",
                profiler.memory_bytes()
            );
        }
    }
    assert!(
        profiler.memory_bytes() <= budget,
        "final footprint {}",
        profiler.memory_bytes()
    );

    let approx = profiler.approx_pattern();
    let streamed = advisor
        .consult_with_pattern(baselines, approx.pattern)
        .unwrap()
        .recommend(slo)
        .unwrap();

    let rel = (streamed.cost_reduction - exact.cost_reduction).abs() / exact.cost_reduction;
    assert!(
        rel <= 0.05,
        "sketch-fed cost factor {:.4} vs exact {:.4}: {:.1}% off",
        streamed.cost_reduction,
        exact.cost_reduction,
        100.0 * rel
    );
    // Both must actually honour the SLO.
    assert!(exact.est_slowdown <= slo + 1e-9);
    assert!(streamed.est_slowdown <= slo + 1e-9);
}
