//! Property tests for the sketch guarantees, checked against exact
//! per-key counts on seeded zipfian and uniform traces.
//!
//! * Count-Min estimates never undercount, and stay within the computed
//!   `eps * N` ceiling.
//! * Space-Saving monitors a superset of the true heavy hitters (every
//!   key with frequency above `n / K`), and brackets each monitored
//!   key's true count between `guaranteed()` and `count`.

use mnemo_stream::{CountMinSketch, SpaceSaving};
use proptest::prelude::*;
use ycsb::{DistKind, Trace, WorkloadSpec};

fn trace_for(uniform: bool, theta: f64, seed: u64) -> Trace {
    let distribution = if uniform {
        DistKind::Uniform
    } else {
        DistKind::ScrambledZipfian { theta }
    };
    WorkloadSpec {
        distribution,
        ..WorkloadSpec::trending().scaled(400, 6_000)
    }
    .generate(seed)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn count_min_never_undercounts_and_stays_within_epsilon_n(
        seed in 0u64..1_000_000,
        theta in 0.5f64..0.99,
        uniform in proptest::bool::ANY,
    ) {
        let trace = trace_for(uniform, theta, seed);
        let mut cm = CountMinSketch::new(512, 5);
        for e in trace.events() {
            cm.increment(e.key);
        }
        let bound = cm.error_bound();
        let counts = trace.key_counts();
        for key in 0..trace.keys() {
            let (r, w) = counts[key as usize];
            let true_count = r + w;
            let est = cm.estimate(key);
            prop_assert!(
                est >= true_count,
                "undercount: key {} est {} true {}",
                key, est, true_count
            );
            prop_assert!(
                est <= true_count + bound,
                "bound blown: key {} est {} true {} eps*N {}",
                key, est, true_count, bound
            );
        }
    }

    #[test]
    fn space_saving_monitors_a_superset_of_the_true_heavy_hitters(
        seed in 0u64..1_000_000,
        theta in 0.5f64..0.99,
        uniform in proptest::bool::ANY,
    ) {
        let trace = trace_for(uniform, theta, seed);
        let capacity = 64usize;
        let mut ss = SpaceSaving::new(capacity, 0.2);
        for e in trace.events() {
            ss.observe(&e);
        }
        let by_key: std::collections::HashMap<u64, (u64, u64)> =
            ss.entries().iter().map(|e| (e.key, (e.guaranteed(), e.count))).collect();
        let counts = trace.key_counts();
        let threshold = trace.len() as u64 / capacity as u64;
        for key in 0..trace.keys() {
            let (r, w) = counts[key as usize];
            let true_count = r + w;
            if true_count > threshold {
                prop_assert!(
                    by_key.contains_key(&key),
                    "heavy hitter {} ({} > n/K {}) not monitored",
                    key, true_count, threshold
                );
            }
            if let Some(&(guaranteed, count)) = by_key.get(&key) {
                prop_assert!(
                    guaranteed <= true_count && true_count <= count,
                    "key {}: true {} outside [{}, {}]",
                    key, true_count, guaranteed, count
                );
            }
        }
    }
}
