//! Distinct-key estimation by linear probabilistic counting.
//!
//! Whang, Vander-Zanden & Taylor's estimator: hash every key into an
//! `m`-bit bitmap; with `z` bits still zero, the maximum-likelihood
//! estimate of the distinct count is `-m * ln(z / m)`. Standard error is
//! about `O(sqrt(m))`, so an 8 KiB bitmap (65536 bits) tracks the tens
//! of thousands of keys Mnemo's workloads hold to within ~1%.
//!
//! The profiler needs this because the sketches summarise the *head* of
//! the distribution: reconstructing the tail ("how many more keys exist
//! beyond the monitored top-K, over which the residual mass spreads")
//! requires a cardinality estimate.

use serde::{Deserialize, Serialize};

#[inline]
fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A linear-counting distinct estimator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistinctCounter {
    bits: Vec<u64>,
    mask: u64,
    zeros: u64,
}

impl DistinctCounter {
    /// Create a counter with `2^log2_bits` bitmap bits (e.g. 16 → 64 Kbit
    /// = 8 KiB). Accurate while the distinct count stays below roughly
    /// the bitmap size; beyond saturation the estimate is a lower bound.
    pub fn new(log2_bits: u32) -> DistinctCounter {
        assert!((6..=30).contains(&log2_bits), "log2_bits out of [6,30]");
        let m = 1u64 << log2_bits;
        DistinctCounter {
            bits: vec![0u64; (m / 64) as usize],
            mask: m - 1,
            zeros: m,
        }
    }

    /// Mark `key` as seen.
    pub fn insert(&mut self, key: u64) {
        let bit = mix(key) & self.mask;
        let (word, shift) = ((bit / 64) as usize, bit % 64);
        if self.bits[word] >> shift & 1 == 0 {
            self.bits[word] |= 1 << shift;
            self.zeros -= 1;
        }
    }

    /// Maximum-likelihood estimate of the number of distinct keys seen.
    pub fn estimate(&self) -> u64 {
        let m = (self.mask + 1) as f64;
        if self.zeros == 0 {
            // Saturated: every bit set. Report the (unreachable in
            // practice) saturation point rather than infinity.
            return m as u64 * 16;
        }
        (-m * (self.zeros as f64 / m).ln()).round() as u64
    }

    /// Heap footprint in bytes (the bitmap).
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * std::mem::size_of::<u64>()
    }

    /// Serialisable snapshot of the bitmap, for warm restarts of
    /// long-lived consumers. The zero count is derivable and is
    /// recomputed on import.
    pub fn export_state(&self) -> DistinctState {
        DistinctState {
            bits: self.bits.clone(),
        }
    }

    /// Rebuild a counter from an exported bitmap. Fails when the word
    /// count is not a power-of-two bitmap in the supported size range.
    pub fn import_state(state: &DistinctState) -> Result<DistinctCounter, String> {
        let words = state.bits.len() as u64;
        if words == 0 || !words.is_power_of_two() {
            return Err(format!("bitmap of {words} words is not a power of two"));
        }
        let m = words * 64;
        let log2 = m.ilog2();
        if !(6..=30).contains(&log2) {
            return Err(format!("bitmap of {m} bits out of supported range"));
        }
        let ones: u64 = state.bits.iter().map(|w| w.count_ones() as u64).sum();
        Ok(DistinctCounter {
            bits: state.bits.clone(),
            mask: m - 1,
            zeros: m - ones,
        })
    }
}

/// Exported [`DistinctCounter`] state (see
/// [`DistinctCounter::export_state`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistinctState {
    /// The bitmap, as 64-bit words.
    pub bits: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_counts_are_exact() {
        let mut d = DistinctCounter::new(16);
        for key in 0..100u64 {
            d.insert(key);
            d.insert(key); // duplicates are free
        }
        let est = d.estimate();
        assert!((95..=105).contains(&est), "estimate {est}");
    }

    #[test]
    fn ten_thousand_keys_within_two_percent() {
        let mut d = DistinctCounter::new(16);
        for key in 0..10_000u64 {
            d.insert(key * 2_654_435_761); // arbitrary spread-out ids
        }
        let est = d.estimate() as f64;
        assert!((est - 10_000.0).abs() / 10_000.0 < 0.02, "estimate {est}");
        assert_eq!(d.memory_bytes(), 8192);
    }

    #[test]
    fn empty_counter_estimates_zero() {
        assert_eq!(DistinctCounter::new(10).estimate(), 0);
    }

    #[test]
    fn state_round_trips() {
        let mut d = DistinctCounter::new(10);
        for key in 0..300u64 {
            d.insert(key * 7);
        }
        let back = DistinctCounter::import_state(&d.export_state()).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.estimate(), d.estimate());
    }

    #[test]
    fn import_rejects_corrupt_state() {
        let mut state = DistinctCounter::new(10).export_state();
        state.bits.pop();
        assert!(DistinctCounter::import_state(&state).is_err());
        assert!(DistinctCounter::import_state(&DistinctState { bits: vec![] }).is_err());
    }
}
