//! Sliding-window epochs and the skew-drift detector.
//!
//! The streaming profiler chops the event stream into fixed-length
//! epochs. Within each epoch a small, separate Space-Saving summary
//! tracks the epoch's own heavy hitters; at the boundary the zipfian
//! exponent `theta` is fitted to their rank-frequency curve (the same
//! least-squares fit the offline [`ycsb::fit::SkewReport`] uses, via
//! [`ycsb::fit::fit_zipf_theta`]). Comparing successive epochs' fits —
//! and the overlap of their hot-key sets — yields a drift signal: only
//! when the workload's shape actually moved is a fresh consultation
//! worth its cost.

use crate::topk::SpaceSaving;
use serde::{Deserialize, Serialize};
use ycsb::fit::fit_zipf_theta;
use ycsb::AccessEvent;

/// What a completed epoch looked like.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochSummary {
    /// Epoch ordinal (0-based).
    pub index: u64,
    /// Events in the epoch.
    pub events: u64,
    /// Zipf exponent fitted to the epoch's heavy-hitter counts; `None`
    /// when the epoch saw too few distinct keys to fit.
    pub theta: Option<f64>,
    /// The epoch's *provably* heavy keys — guaranteed count at or above
    /// the Space-Saving churn ceiling `events / epoch_top_k` — hottest
    /// first. Monitored-but-unproven entries are churn and carry no
    /// cross-epoch signal, so they are excluded.
    pub hot_keys: Vec<u64>,
}

/// Decision issued at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Drift {
    /// The first completed epoch: there is nothing to compare against,
    /// but downstream consumers need an initial recommendation.
    Initial,
    /// Skew moved: the fitted theta changed by more than the threshold.
    Theta {
        /// Previous accepted theta.
        from: f64,
        /// Newly fitted theta.
        to: f64,
    },
    /// The hot set itself rotated: too few of the reference epoch's
    /// proven heavy hitters are still monitored in the current epoch.
    HotSet {
        /// Fraction of the reference epoch's proven heavy hitters still
        /// monitored, in `[0,1]`.
        overlap: f64,
    },
    /// No significant change.
    Stable,
}

impl Drift {
    /// Whether this decision should trigger a re-consultation.
    pub fn is_significant(&self) -> bool {
        !matches!(self, Drift::Stable)
    }
}

/// Configuration of the drift detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Events per epoch.
    pub epoch_len: u64,
    /// Re-advise when `|theta_now - theta_then|` exceeds this.
    pub theta_threshold: f64,
    /// Re-advise when the hot-set overlap falls below this fraction.
    pub min_hot_overlap: f64,
    /// Heavy hitters tracked per epoch (also the hot-set comparison
    /// width).
    pub epoch_top_k: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            epoch_len: 50_000,
            theta_threshold: 0.15,
            min_hot_overlap: 0.5,
            epoch_top_k: 128,
        }
    }
}

/// Epoch-windowed skew tracking with drift detection.
#[derive(Debug, Clone)]
pub struct SkewTracker {
    config: DriftConfig,
    window: SpaceSaving,
    in_epoch: u64,
    completed: u64,
    /// Consecutive epochs that elapsed with no traffic (see
    /// [`SkewTracker::note_idle_epoch`]). Reset by every closed epoch.
    idle_streak: u64,
    /// The last epoch accepted as the drift reference (set on `Initial`
    /// and on every significant drift).
    reference: Option<EpochSummary>,
    last: Option<EpochSummary>,
}

impl SkewTracker {
    /// Build a tracker.
    pub fn new(config: DriftConfig) -> SkewTracker {
        assert!(config.epoch_len > 0, "epoch length must be nonzero");
        assert!(config.epoch_top_k > 0, "epoch top-k must be nonzero");
        SkewTracker {
            window: SpaceSaving::new(config.epoch_top_k, 0.2),
            config,
            in_epoch: 0,
            completed: 0,
            idle_streak: 0,
            reference: None,
            last: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// The most recently completed epoch.
    pub fn last_epoch(&self) -> Option<&EpochSummary> {
        self.last.as_ref()
    }

    /// Feed one event. Returns a drift decision exactly at epoch
    /// boundaries, `None` inside an epoch.
    pub fn observe(&mut self, event: &AccessEvent) -> Option<Drift> {
        self.window.observe(event);
        self.in_epoch += 1;
        if self.in_epoch < self.config.epoch_len {
            return None;
        }
        Some(self.close_epoch())
    }

    fn close_epoch(&mut self) -> Drift {
        let entries = self.window.entries();
        let counts: Vec<u64> = entries.iter().map(|e| e.count).collect();
        // A key is provably heavy once its guaranteed (count - error)
        // tally clears the eviction ceiling n/K: churned-in entries
        // cannot reach that, so these keys are real heavy hitters.
        let threshold = (self.in_epoch / self.config.epoch_top_k as u64).max(1);
        let summary = EpochSummary {
            index: self.completed,
            events: self.in_epoch,
            theta: fit_zipf_theta(&counts),
            hot_keys: entries
                .iter()
                .filter(|e| e.guaranteed() >= threshold)
                .map(|e| e.key)
                .collect(),
        };
        let monitored: hybridmem::DetHashSet<u64> = entries.iter().map(|e| e.key).collect();
        self.window.clear();
        self.in_epoch = 0;
        self.completed += 1;
        self.idle_streak = 0;

        let decision = match &self.reference {
            None => Drift::Initial,
            Some(reference) => Self::compare(&self.config, reference, &summary, &monitored),
        };
        if decision.is_significant() {
            self.reference = Some(summary.clone());
        }
        self.last = Some(summary);
        decision
    }

    fn compare(
        config: &DriftConfig,
        reference: &EpochSummary,
        now: &EpochSummary,
        now_monitored: &hybridmem::DetHashSet<u64>,
    ) -> Drift {
        if let (Some(from), Some(to)) = (reference.theta, now.theta) {
            if (from - to).abs() > config.theta_threshold {
                return Drift::Theta { from, to };
            }
        }
        // Are the reference epoch's proven heavy hitters still at least
        // *monitored* now? Dropping out of the whole summary is a much
        // stronger signal than slipping below the proof threshold, which
        // borderline keys do from epoch to epoch by chance. Fewer than 4
        // proven keys carries no signal (one miss swings the fraction).
        let width = reference.hot_keys.len();
        if width >= 4 {
            let kept = reference
                .hot_keys
                .iter()
                .filter(|k| now_monitored.contains(k))
                .count();
            let overlap = kept as f64 / width as f64;
            if overlap < config.min_hot_overlap {
                return Drift::HotSet { overlap };
            }
        }
        Drift::Stable
    }

    /// Note that one epoch's worth of scheduler time elapsed with *no*
    /// traffic. Drivers with their own clock (the serve daemon's epoch
    /// tick) call this instead of [`SkewTracker::observe`] when a tenant
    /// was silent for the whole epoch.
    ///
    /// One idle epoch is tolerated — brief gaps between bursts carry no
    /// drift signal. Beyond that the retained reference and last
    /// summaries describe traffic that is now stale, so they are
    /// dropped: when the tenant resumes, the next completed epoch
    /// compares against nothing and yields [`Drift::Initial`], forcing a
    /// fresh consultation instead of a comparison with a frozen
    /// pre-idle snapshot. Without this, a tenant idle for hours would
    /// come back and be judged "stable" against advice sized for
    /// traffic that no longer exists.
    pub fn note_idle_epoch(&mut self) {
        self.completed += 1;
        self.idle_streak += 1;
        if self.idle_streak > 1 {
            self.reference = None;
            self.last = None;
        }
    }

    /// Consecutive idle epochs noted since the last closed epoch.
    pub fn idle_streak(&self) -> u64 {
        self.idle_streak
    }

    /// Heap footprint in bytes (the per-epoch summary window; the two
    /// retained summaries are bounded by `2 * epoch_top_k` keys).
    pub fn memory_bytes(&self) -> usize {
        self.window.memory_bytes() + 2 * self.config.epoch_top_k * std::mem::size_of::<u64>()
    }

    /// Serialisable snapshot of the tracker, for warm restarts.
    pub fn export_state(&self) -> TrackerState {
        TrackerState {
            window: self.window.export_state(),
            in_epoch: self.in_epoch,
            completed: self.completed,
            idle_streak: self.idle_streak,
            reference: self.reference.clone(),
            last: self.last.clone(),
        }
    }

    /// Rebuild a tracker from an exported state under `config`.
    pub fn import_state(config: DriftConfig, state: &TrackerState) -> Result<SkewTracker, String> {
        if state.in_epoch >= config.epoch_len {
            return Err(format!(
                "in-epoch count {} at or above epoch length {}",
                state.in_epoch, config.epoch_len
            ));
        }
        let mut out = SkewTracker::new(config);
        out.window = SpaceSaving::import_state(config.epoch_top_k, 0.2, &state.window)?;
        out.in_epoch = state.in_epoch;
        out.completed = state.completed;
        out.idle_streak = state.idle_streak;
        out.reference = state.reference.clone();
        out.last = state.last.clone();
        Ok(out)
    }
}

/// Exported [`SkewTracker`] state (see [`SkewTracker::export_state`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerState {
    /// The in-progress epoch's heavy-hitter window.
    pub window: crate::topk::TopKState,
    /// Events in the in-progress epoch.
    pub in_epoch: u64,
    /// Completed epochs.
    pub completed: u64,
    /// Consecutive idle epochs.
    pub idle_streak: u64,
    /// The drift reference epoch, if any.
    pub reference: Option<EpochSummary>,
    /// The most recently completed epoch, if any.
    pub last: Option<EpochSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ycsb::dist::DistKind;
    use ycsb::opmix::OpMix;
    use ycsb::sizes::{SizeClass, SizeModel};
    use ycsb::WorkloadSpec;

    fn events_for(dist: DistKind, seed: u64, requests: usize) -> Vec<AccessEvent> {
        WorkloadSpec {
            name: "epoch".into(),
            distribution: dist,
            ops: OpMix::read_only(),
            sizes: SizeModel::Single(SizeClass::Caption),
            keys: 2_000,
            requests,
            use_case: String::new(),
        }
        .generate(seed)
        .events()
        .collect()
    }

    fn drive(tracker: &mut SkewTracker, events: &[AccessEvent]) -> Vec<Drift> {
        events.iter().filter_map(|e| tracker.observe(e)).collect()
    }

    #[test]
    fn boundaries_fire_every_epoch_len() {
        let config = DriftConfig {
            epoch_len: 1_000,
            ..DriftConfig::default()
        };
        let mut tracker = SkewTracker::new(config);
        let events = events_for(DistKind::Zipfian { theta: 0.99 }, 1, 5_500);
        let decisions = drive(&mut tracker, &events);
        assert_eq!(decisions.len(), 5, "5 full epochs out of 5500 events");
        assert_eq!(decisions[0], Drift::Initial);
    }

    #[test]
    fn steady_workload_is_stable_after_the_initial_epoch() {
        let config = DriftConfig {
            epoch_len: 5_000,
            ..DriftConfig::default()
        };
        let mut tracker = SkewTracker::new(config);
        let events = events_for(DistKind::Zipfian { theta: 0.99 }, 2, 40_000);
        let decisions = drive(&mut tracker, &events);
        assert_eq!(decisions[0], Drift::Initial);
        assert!(
            decisions[1..].iter().all(|d| !d.is_significant()),
            "steady zipfian must not re-trigger: {decisions:?}"
        );
    }

    #[test]
    fn skew_change_is_detected() {
        let config = DriftConfig {
            epoch_len: 5_000,
            ..DriftConfig::default()
        };
        let mut tracker = SkewTracker::new(config);
        // Zipfian 0.99, then near-uniform: theta collapses.
        let mut events = events_for(DistKind::Zipfian { theta: 0.99 }, 3, 20_000);
        events.extend(events_for(DistKind::Uniform, 4, 20_000));
        let decisions = drive(&mut tracker, &events);
        assert!(
            decisions[4..].iter().any(|d| d.is_significant()),
            "uniform switch must drift: {decisions:?}"
        );
    }

    #[test]
    fn hot_set_rotation_is_detected_even_at_equal_skew() {
        let config = DriftConfig {
            epoch_len: 5_000,
            ..DriftConfig::default()
        };
        let mut tracker = SkewTracker::new(config);
        // Same zipfian shape, but the key popularity ranking is permuted
        // differently per phase (scrambled zipfian with different seeds
        // maps ranks to different keys).
        let mut events = events_for(DistKind::ScrambledZipfian { theta: 0.99 }, 5, 20_000);
        let mut phase2 = events_for(DistKind::ScrambledZipfian { theta: 0.99 }, 99, 20_000);
        // Shift phase-2 keys so the hot sets are disjoint while sizes stay
        // in range.
        for e in &mut phase2 {
            e.key = 1_999 - e.key;
        }
        events.extend(phase2);
        let decisions = drive(&mut tracker, &events);
        let significant: Vec<&Drift> = decisions[4..]
            .iter()
            .filter(|d| d.is_significant())
            .collect();
        assert!(
            !significant.is_empty(),
            "rotated hot set must drift: {decisions:?}"
        );
    }

    #[test]
    fn idle_gap_resets_the_drift_reference() {
        let config = DriftConfig {
            epoch_len: 5_000,
            ..DriftConfig::default()
        };
        let mut tracker = SkewTracker::new(config);
        // Two active epochs establish a reference...
        let events = events_for(DistKind::Zipfian { theta: 0.99 }, 11, 10_000);
        let decisions = drive(&mut tracker, &events);
        assert_eq!(decisions[0], Drift::Initial);
        assert!(tracker.last_epoch().is_some());
        // ...then the tenant goes idle for more than one epoch.
        tracker.note_idle_epoch();
        assert!(
            tracker.last_epoch().is_some(),
            "a single idle epoch is tolerated"
        );
        tracker.note_idle_epoch();
        assert_eq!(tracker.idle_streak(), 2);
        assert!(
            tracker.last_epoch().is_none(),
            "an idle gap must drop the stale summaries"
        );
        // Traffic resumes: the first completed epoch re-advises from
        // scratch instead of comparing against the pre-idle snapshot.
        let resumed = events_for(DistKind::Zipfian { theta: 0.99 }, 12, 5_000);
        let decisions = drive(&mut tracker, &resumed);
        assert_eq!(decisions, vec![Drift::Initial]);
        assert_eq!(tracker.idle_streak(), 0, "traffic clears the streak");
    }

    #[test]
    fn single_idle_epoch_keeps_the_reference() {
        let config = DriftConfig {
            epoch_len: 5_000,
            ..DriftConfig::default()
        };
        let mut tracker = SkewTracker::new(config);
        drive(
            &mut tracker,
            &events_for(DistKind::Zipfian { theta: 0.99 }, 13, 10_000),
        );
        tracker.note_idle_epoch();
        // The same steady workload after a one-epoch gap stays stable.
        let decisions = drive(
            &mut tracker,
            &events_for(DistKind::Zipfian { theta: 0.99 }, 13, 5_000),
        );
        assert_eq!(decisions, vec![Drift::Stable]);
    }

    #[test]
    fn state_round_trips() {
        let config = DriftConfig {
            epoch_len: 5_000,
            ..DriftConfig::default()
        };
        let mut tracker = SkewTracker::new(config);
        let events = events_for(DistKind::Zipfian { theta: 0.99 }, 14, 12_500);
        drive(&mut tracker, &events);
        let back = SkewTracker::import_state(config, &tracker.export_state()).unwrap();
        assert_eq!(back.last_epoch(), tracker.last_epoch());
        // Both continue identically.
        let more = events_for(DistKind::Zipfian { theta: 0.99 }, 15, 7_500);
        let mut a = tracker;
        let mut b = back;
        assert_eq!(drive(&mut a, &more), drive(&mut b, &more));
    }

    #[test]
    fn import_rejects_overfull_epoch() {
        let config = DriftConfig {
            epoch_len: 100,
            ..DriftConfig::default()
        };
        let mut state = SkewTracker::new(config).export_state();
        state.in_epoch = 100;
        assert!(SkewTracker::import_state(config, &state).is_err());
    }

    #[test]
    fn memory_is_bounded_by_configuration() {
        let tracker = SkewTracker::new(DriftConfig::default());
        assert!(
            tracker.memory_bytes() < 16 * 1024,
            "{}",
            tracker.memory_bytes()
        );
    }
}
