//! The incremental re-advise loop: sketches → advisor, only on drift.
//!
//! An [`OnlineAdvisor`] pairs a [`StreamProfiler`] with a configured
//! [`mnemo::Advisor`] and the two measured baselines the paper's
//! Sensitivity Engine produced up front. Events flow in continuously;
//! at every epoch boundary the skew-drift detector decides whether the
//! workload's shape moved, and only then is the sketch state converted
//! into an approximate pattern and pushed through the estimate/advisor
//! pipeline for a fresh SLO sweet-spot recommendation. A steady
//! workload therefore costs O(1) amortised per event, with consultation
//! work proportional to how often the workload actually changes.
//!
//! Drift handling is two-step: when an epoch closes with significant
//! drift, the accumulated sketches describe a *mixture* of the old and
//! new regimes, so the profiler is reset instead of consulted. One
//! epoch later the fresh state describes the new regime alone and the
//! advice is emitted then, carrying the original drift as its trigger.

use crate::epoch::Drift;
use crate::profiler::{StreamConfig, StreamProfiler};
use mnemo::advisor::{Advisor, Recommendation};
use mnemo::sensitivity::Baselines;
use ycsb::AccessEvent;

/// One re-advise emission.
#[derive(Debug, Clone)]
pub struct Readvice {
    /// Events consumed when the advice was produced.
    pub at_event: u64,
    /// Why the re-consultation ran.
    pub trigger: Drift,
    /// The fresh sweet-spot recommendation (`None` only for a degenerate
    /// empty curve).
    pub recommendation: Option<Recommendation>,
    /// Profiler footprint at emission time, for observability.
    pub profiler_bytes: usize,
}

/// The streaming consultant.
pub struct OnlineAdvisor {
    profiler: StreamProfiler,
    advisor: Advisor,
    baselines: Baselines,
    slo: f64,
    consultations: u64,
    /// Drift that caused the last profiler reset; attached as the
    /// trigger of the advice emitted one epoch later.
    pending: Option<Drift>,
}

impl OnlineAdvisor {
    /// Build the loop from pre-measured baselines. `slo` is the slowdown
    /// budget passed to every re-consultation (e.g. `0.10`).
    pub fn new(
        config: StreamConfig,
        advisor: Advisor,
        baselines: Baselines,
        slo: f64,
    ) -> OnlineAdvisor {
        assert!((0.0..=1.0).contains(&slo), "slo {slo} out of [0,1]");
        OnlineAdvisor {
            profiler: StreamProfiler::new(config),
            advisor,
            baselines,
            slo,
            consultations: 0,
            pending: None,
        }
    }

    /// The profiler (for inspection: footprint, top keys, epoch state).
    pub fn profiler(&self) -> &StreamProfiler {
        &self.profiler
    }

    /// How many full consultations have run — the work the drift
    /// detector saved is `epochs - consultations`.
    pub fn consultations(&self) -> u64 {
        self.consultations
    }

    /// Feed one event. Returns fresh advice once per regime: at the
    /// close of the first epoch after start-up or after a drift-induced
    /// reset. Epochs that close *with* drift reset the profiler and
    /// return `None` — the advice follows one epoch later, from state
    /// that describes the new regime alone.
    pub fn on_event(&mut self, event: &AccessEvent) -> Option<Readvice> {
        self.on_event_inner(event, None)
    }

    /// [`Self::on_event`], recording every epoch-boundary drift
    /// decision, the profiler occupancy at each boundary, and any
    /// advice emission into `tel` (see [`crate::telemetry`] for the
    /// metric names). All recorded quantities derive from the event
    /// stream alone, so the telemetry stays sim-domain deterministic.
    pub fn on_event_telemetered(
        &mut self,
        event: &AccessEvent,
        tel: &mut mnemo_telemetry::Recorder,
    ) -> Option<Readvice> {
        self.on_event_inner(event, Some(tel))
    }

    fn on_event_inner(
        &mut self,
        event: &AccessEvent,
        mut tel: Option<&mut mnemo_telemetry::Recorder>,
    ) -> Option<Readvice> {
        let drift = self.profiler.observe(event)?;
        if let Some(t) = tel.as_deref_mut() {
            crate::telemetry::record_drift(t, &drift);
            crate::telemetry::record_profiler(t, &self.profiler);
        }
        let advice = match drift {
            Drift::Initial => {
                let trigger = self.pending.take().unwrap_or(Drift::Initial);
                Some(self.readvise(trigger))
            }
            drift if drift.is_significant() => {
                self.pending = Some(drift);
                self.profiler.reset();
                None
            }
            _ => None,
        };
        if let (Some(t), Some(a)) = (tel, advice.as_ref()) {
            crate::telemetry::record_readvice(t, a);
        }
        advice
    }

    /// Force a consultation from the current sketch state (used at
    /// stream end, or by callers with their own trigger policy).
    pub fn readvise(&mut self, trigger: Drift) -> Readvice {
        self.consultations += 1;
        let approx = self.profiler.approx_pattern();
        let recommendation = self
            .advisor
            .consult_with_pattern(self.baselines.clone(), approx.pattern)
            .ok()
            .and_then(|c| c.recommend(self.slo));
        Readvice {
            at_event: self.profiler.events(),
            trigger,
            recommendation,
            profiler_bytes: self.profiler.memory_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::DriftConfig;
    use kvsim::StoreKind;
    use mnemo::advisor::AdvisorConfig;
    use mnemo::sensitivity::SensitivityEngine;
    use ycsb::{DistKind, WorkloadSpec};

    fn online_for(trace: &ycsb::Trace, epoch_len: u64) -> OnlineAdvisor {
        let config = AdvisorConfig::default();
        let baselines = SensitivityEngine::new(config.spec.clone(), config.noise)
            .measure(StoreKind::Redis, trace)
            .unwrap();
        let stream_config = StreamConfig {
            drift: DriftConfig {
                epoch_len,
                ..DriftConfig::default()
            },
            ..StreamConfig::default()
        };
        OnlineAdvisor::new(stream_config, Advisor::new(config), baselines, 0.10)
    }

    #[test]
    fn first_epoch_advises_then_steady_state_stays_quiet() {
        let trace = WorkloadSpec::trending().scaled(500, 20_000).generate(5);
        let mut online = online_for(&trace, 4_000);
        let advice: Vec<Readvice> = trace.events().filter_map(|e| online.on_event(&e)).collect();
        assert!(!advice.is_empty(), "the initial epoch must advise");
        assert_eq!(advice[0].trigger, Drift::Initial);
        assert!(advice[0].recommendation.is_some());
        // 5 epochs, but a steady workload re-advises only the first time.
        assert!(
            online.consultations() < 3,
            "steady workload consulted {} times",
            online.consultations()
        );
    }

    #[test]
    fn drift_produces_fresh_advice() {
        // Phase 1 zipfian, phase 2 uniform: the sweet spot moves (uniform
        // spreads mass, needing more FastMem for the same SLO).
        let zipf = WorkloadSpec {
            distribution: DistKind::ScrambledZipfian { theta: 0.99 },
            ..WorkloadSpec::trending().scaled(500, 15_000)
        }
        .generate(6);
        let uniform = WorkloadSpec {
            distribution: DistKind::Uniform,
            ..WorkloadSpec::trending().scaled(500, 15_000)
        }
        .generate(7);
        let mut online = online_for(&zipf, 5_000);
        let mut advice = Vec::new();
        for e in zipf.events().chain(uniform.events()) {
            advice.extend(online.on_event(&e));
        }
        assert!(
            advice.len() >= 2,
            "phase change must re-advise: {}",
            advice.len()
        );
        let first = advice.first().unwrap().recommendation.unwrap();
        let last = advice.last().unwrap().recommendation.unwrap();
        assert!(
            last.fast_ratio > first.fast_ratio,
            "uniform phase needs more FastMem: {} -> {}",
            first.fast_ratio,
            last.fast_ratio
        );
        // Every emission reports a bounded profiler.
        for a in &advice {
            assert!(a.profiler_bytes <= 64 * 1024);
        }
    }

    #[test]
    fn telemetered_on_event_matches_plain_and_records_epochs() {
        let trace = WorkloadSpec::trending().scaled(500, 20_000).generate(5);
        let mut plain = online_for(&trace, 4_000);
        let mut traced = online_for(&trace, 4_000);
        let mut tel = mnemo_telemetry::Recorder::new();
        for e in trace.events() {
            let a = plain.on_event(&e);
            let b = traced.on_event_telemetered(&e, &mut tel);
            assert_eq!(a.is_some(), b.is_some(), "telemetry must not change advice");
        }
        let snap = tel.snapshot(0);
        assert_eq!(snap.counter("stream.epochs"), 20_000 / 4_000);
        assert_eq!(
            snap.counter("stream.advise.emitted"),
            traced.consultations(),
            "every consultation shows up as an emission"
        );
        assert!(snap.gauge("stream.profiler.bytes").unwrap().max > 0.0);
    }
}
