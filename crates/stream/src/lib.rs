//! # mnemo-stream — the streaming Pattern Engine
//!
//! Mnemo's offline pipeline assumes the whole workload trace is
//! available up front: the Pattern Engine walks it once and holds exact
//! per-key statistics. In production the "trace" is an unbounded stream
//! of requests against a live store, and holding per-key state for the
//! full key space is exactly the overhead Mnemo exists to avoid. This
//! crate profiles that stream in **O(k) memory, independent of key count
//! and stream length**, and re-runs the consultation only when the
//! workload's shape actually changes:
//!
//! * [`sketch`] — Count-Min sketches for per-key read/write counts, with
//!   computed `eps * N` one-sided error bounds;
//! * [`topk`] — Space-Saving heavy hitters: the head of the access
//!   distribution, with per-key op split and record-size EWMA;
//! * [`distinct`] — linear-counting cardinality of the touched key set;
//! * [`epoch`] — sliding-window epochs whose zipfian exponent (fitted
//!   with [`ycsb::fit::fit_zipf_theta`], the same fit the offline skew
//!   report uses) and hot-set overlap drive a drift detector;
//! * [`profiler`] — [`StreamProfiler`]: the composition, plus the
//!   head-exact/tail-uniform reconstruction of an approximate
//!   [`mnemo::PatternEngine`];
//! * [`advise`] — [`OnlineAdvisor`]: the incremental re-advise loop
//!   feeding reconstructed patterns through `Advisor::consult_with_pattern`
//!   and re-emitting an SLO sweet spot only on significant drift;
//! * [`telemetry`] — bridges mapping profiler occupancy, drift epochs
//!   and re-advise emissions onto `mnemo-telemetry` metrics, shared by
//!   `mnemo watch` and embedded consumers.
//!
//! Events come from [`ycsb::Trace::events`] in replay, or live from
//! `kvsim::Server::run_with_tap`.
//!
//! # Example
//!
//! ```
//! use mnemo_stream::{StreamConfig, StreamProfiler};
//! use ycsb::WorkloadSpec;
//!
//! let trace = WorkloadSpec::trending().scaled(300, 5_000).generate(7);
//! let mut profiler = StreamProfiler::new(StreamConfig::default());
//! for event in trace.events() {
//!     profiler.observe(&event);
//! }
//! // Bounded state, whole-stream coverage:
//! assert!(profiler.memory_bytes() <= 64 * 1024);
//! assert_eq!(profiler.events(), trace.len() as u64);
//! // The reconstructed pattern feeds the ordinary advisor pipeline.
//! let approx = profiler.approx_pattern();
//! assert_eq!(approx.pattern.total_requests(), trace.len() as u64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advise;
pub mod distinct;
pub mod epoch;
pub mod profiler;
pub mod sketch;
pub mod telemetry;
pub mod topk;

pub use advise::{OnlineAdvisor, Readvice};
pub use distinct::{DistinctCounter, DistinctState};
pub use epoch::{Drift, DriftConfig, EpochSummary, SkewTracker, TrackerState};
pub use profiler::{ApproxPattern, ProfilerState, StreamConfig, StreamProfiler};
pub use sketch::{CountMinSketch, SketchState};
pub use topk::{SpaceSaving, TopEntry, TopKState};
