//! Telemetry bridges for the streaming Pattern Engine.
//!
//! The streaming loop's observable state — sketch occupancy, distinct
//! keys, drift decisions, re-advise emissions — maps onto the
//! `mnemo-telemetry` metric types here, in one place, so `mnemo watch`
//! and any embedded consumer record the identical metric names. All
//! quantities are derived from the event stream alone (no wall clock),
//! so everything recorded here is sim-domain and export-deterministic.

use crate::advise::Readvice;
use crate::epoch::Drift;
use crate::profiler::StreamProfiler;
use mnemo_telemetry::Recorder;

/// The counter name a drift decision increments
/// (`stream.drift.<kind>`).
pub fn drift_counter(drift: &Drift) -> &'static str {
    match drift {
        Drift::Initial => "stream.drift.initial",
        Drift::Theta { .. } => "stream.drift.theta",
        Drift::HotSet { .. } => "stream.drift.hotset",
        Drift::Stable => "stream.drift.stable",
    }
}

/// Record one epoch-boundary drift decision.
pub fn record_drift(tel: &mut Recorder, drift: &Drift) {
    tel.count("stream.epochs", 1);
    tel.count(drift_counter(drift), 1);
    if drift.is_significant() {
        tel.count("stream.drift.significant", 1);
    }
    match drift {
        Drift::Theta { from, to } => {
            tel.gauge("stream.drift.theta_delta", (to - from).abs());
        }
        Drift::HotSet { overlap } => {
            tel.gauge("stream.drift.hotset_overlap", *overlap);
        }
        _ => {}
    }
}

/// Record the profiler's current occupancy (gauges, so repeated
/// sampling aggregates as min/mean/max rather than double-counting).
pub fn record_profiler(tel: &mut Recorder, profiler: &StreamProfiler) {
    tel.gauge("stream.profiler.bytes", profiler.memory_bytes() as f64);
    tel.gauge(
        "stream.profiler.distinct_keys",
        profiler.distinct_keys() as f64,
    );
    tel.gauge(
        "stream.profiler.count_error_bound",
        profiler.count_error_bound() as f64,
    );
}

/// Record a re-advise emission and the recommendation it carried.
pub fn record_readvice(tel: &mut Recorder, advice: &Readvice) {
    tel.count("stream.advise.emitted", 1);
    tel.count(drift_counter(&advice.trigger), 1);
    tel.gauge("stream.advise.profiler_bytes", advice.profiler_bytes as f64);
    match &advice.recommendation {
        Some(rec) => {
            tel.count("stream.advise.with_recommendation", 1);
            tel.gauge("stream.advise.fast_ratio", rec.fast_ratio);
            tel.gauge("stream.advise.fast_bytes", rec.fast_bytes as f64);
        }
        None => {
            tel.count("stream.advise.degenerate", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::StreamConfig;
    use ycsb::WorkloadSpec;

    #[test]
    fn drift_decisions_map_to_distinct_counters() {
        let mut tel = Recorder::new();
        record_drift(&mut tel, &Drift::Initial);
        record_drift(&mut tel, &Drift::Stable);
        record_drift(&mut tel, &Drift::Theta { from: 0.6, to: 0.9 });
        record_drift(&mut tel, &Drift::HotSet { overlap: 0.25 });
        let snap = tel.snapshot(0);
        assert_eq!(snap.counter("stream.epochs"), 4);
        assert_eq!(snap.counter("stream.drift.initial"), 1);
        assert_eq!(snap.counter("stream.drift.stable"), 1);
        assert_eq!(snap.counter("stream.drift.significant"), 3);
        let delta = snap.gauge("stream.drift.theta_delta").unwrap();
        assert!((delta.max - 0.3).abs() < 1e-12);
        assert_eq!(snap.gauge("stream.drift.hotset_overlap").unwrap().max, 0.25);
    }

    #[test]
    fn profiler_occupancy_lands_as_gauges() {
        let trace = WorkloadSpec::trending().scaled(300, 5_000).generate(7);
        let mut profiler = StreamProfiler::new(StreamConfig::default());
        let mut tel = Recorder::new();
        for event in trace.events() {
            profiler.observe(&event);
        }
        record_profiler(&mut tel, &profiler);
        record_profiler(&mut tel, &profiler);
        let snap = tel.snapshot(0);
        let bytes = snap.gauge("stream.profiler.bytes").unwrap();
        assert_eq!(bytes.count, 2, "sampling twice must not double-count");
        assert!(bytes.max > 0.0);
        assert!(snap.gauge("stream.profiler.distinct_keys").unwrap().max > 0.0);
    }

    #[test]
    fn readvice_records_trigger_and_recommendation() {
        let mut tel = Recorder::new();
        record_readvice(
            &mut tel,
            &Readvice {
                at_event: 100,
                trigger: Drift::Initial,
                recommendation: None,
                profiler_bytes: 4096,
            },
        );
        let snap = tel.snapshot(0);
        assert_eq!(snap.counter("stream.advise.emitted"), 1);
        assert_eq!(snap.counter("stream.advise.degenerate"), 1);
        assert_eq!(snap.counter("stream.drift.initial"), 1);
        assert_eq!(
            snap.gauge("stream.advise.profiler_bytes").unwrap().max,
            4096.0
        );
    }
}
