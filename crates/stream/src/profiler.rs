//! The streaming Pattern Engine: bounded-memory `Req(keys)`.
//!
//! Where the offline [`mnemo::PatternEngine`] walks a materialised trace
//! and holds one [`mnemo::KeyStats`] per key, the [`StreamProfiler`]
//! consumes an unbounded [`ycsb::AccessEvent`] stream and keeps only:
//!
//! * a Space-Saving top-K of the hottest keys (with per-key read/write
//!   split and a size EWMA) — the *head* of the distribution, tracked
//!   exactly up to the summary's guaranteed error;
//! * two Count-Min sketches (reads / writes) for point queries on any
//!   key, with computed `eps * N` error bounds;
//! * a linear-counting bitmap for the distinct-key cardinality;
//! * a per-epoch skew tracker for drift detection.
//!
//! Memory is O(K + sketch area), independent of both key count and
//! stream length; [`StreamProfiler::memory_bytes`] reports the exact
//! footprint so callers can assert a budget.
//!
//! [`StreamProfiler::approx_pattern`] converts the summary back into a
//! full per-key [`mnemo::PatternEngine`] the estimate/advisor pipeline
//! accepts: monitored keys become individual synthetic keys with their
//! tracked statistics ("head-exact"); the residual request mass is
//! spread over the estimated remaining distinct keys as a power-law
//! continuation of the head's rank-frequency curve, at the global mean
//! record size ("tail-fitted").

use crate::distinct::{DistinctCounter, DistinctState};
use crate::epoch::{Drift, DriftConfig, SkewTracker, TrackerState};
use crate::sketch::{CountMinSketch, SketchState};
use crate::topk::{SpaceSaving, TopEntry, TopKState};
use mnemo::{KeyStats, PatternEngine};
use ycsb::fit::fit_zipf_theta;
use ycsb::{AccessEvent, Op};

/// Sizing of every bounded structure in the profiler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Keys monitored exactly (Space-Saving capacity).
    pub top_k: usize,
    /// Count-Min row width (rounded up to a power of two).
    pub cm_width: usize,
    /// Count-Min rows.
    pub cm_depth: usize,
    /// Distinct-counter bitmap bits, as a power of two (`2^log2_bits`).
    pub distinct_log2_bits: u32,
    /// Smoothing factor for per-key size EWMAs.
    pub ewma_alpha: f64,
    /// Epoch and drift thresholds.
    pub drift: DriftConfig,
}

impl Default for StreamConfig {
    /// The reference configuration: fits the 64 KiB default budget with
    /// headroom (see `memory_bytes`), sized for workloads of ~10k keys.
    fn default() -> Self {
        StreamConfig {
            top_k: 256,
            cm_width: 1024,
            cm_depth: 4,
            distinct_log2_bits: 15,
            ewma_alpha: 0.2,
            drift: DriftConfig::default(),
        }
    }
}

impl StreamConfig {
    /// Scale the default configuration to approximately fit a memory
    /// budget, splitting it in the default shape: about half to the two
    /// Count-Min sketches, a quarter to the top-K summary, the rest to
    /// the distinct bitmap and the epoch tracker. Panics below 4 KiB —
    /// no useful summary fits there.
    pub fn with_budget_bytes(budget: usize) -> StreamConfig {
        assert!(budget >= 4 * 1024, "streaming budget below 4 KiB");
        let scale = budget as f64 / (64.0 * 1024.0);
        let default = StreamConfig::default();
        let top_k = ((default.top_k as f64 * scale) as usize).max(16);
        StreamConfig {
            top_k,
            cm_width: ((default.cm_width as f64 * scale) as usize).max(64),
            cm_depth: default.cm_depth,
            distinct_log2_bits: {
                // Bitmap scales in power-of-two steps.
                let target = (1u64 << default.distinct_log2_bits) as f64 * scale;
                (target as u64).max(4096).ilog2()
            },
            ewma_alpha: default.ewma_alpha,
            drift: DriftConfig {
                epoch_top_k: (default.drift.epoch_top_k as f64 * scale).max(16.0) as usize,
                ..default.drift
            },
        }
    }
}

/// The streaming profiler.
#[derive(Debug, Clone)]
pub struct StreamProfiler {
    config: StreamConfig,
    top: SpaceSaving,
    cm_reads: CountMinSketch,
    cm_writes: CountMinSketch,
    distinct: DistinctCounter,
    skew: SkewTracker,
    events: u64,
    reads: u64,
    writes: u64,
    /// Global mean record size over events (exact; mass-weighted, which
    /// biases toward hot keys' sizes — documented tail approximation).
    bytes_sum: f64,
}

impl StreamProfiler {
    /// Build a profiler.
    pub fn new(config: StreamConfig) -> StreamProfiler {
        StreamProfiler {
            top: SpaceSaving::new(config.top_k, config.ewma_alpha),
            cm_reads: CountMinSketch::new(config.cm_width, config.cm_depth),
            cm_writes: CountMinSketch::new(config.cm_width, config.cm_depth),
            distinct: DistinctCounter::new(config.distinct_log2_bits),
            skew: SkewTracker::new(config.drift),
            config,
            events: 0,
            reads: 0,
            writes: 0,
            bytes_sum: 0.0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Discard all accumulated state, keeping the configuration. Used
    /// after a regime change: the sketches then describe a mixture of
    /// the old and new workloads, and restarting yields advice for the
    /// new regime alone after one fresh epoch.
    pub fn reset(&mut self) {
        *self = StreamProfiler::new(self.config);
    }

    /// Consume one event. Returns a drift decision at epoch boundaries.
    pub fn observe(&mut self, event: &AccessEvent) -> Option<Drift> {
        self.events += 1;
        self.bytes_sum += event.bytes as f64;
        match event.op {
            Op::Read => {
                self.reads += 1;
                self.cm_reads.increment(event.key);
            }
            Op::Update => {
                self.writes += 1;
                self.cm_writes.increment(event.key);
            }
        }
        self.top.observe(event);
        self.distinct.insert(event.key);
        self.skew.observe(event)
    }

    /// Apply one idle epoch's decay. Long-lived consumers whose
    /// scheduler (not the event count) defines epochs call this when a
    /// tenant saw no traffic for a whole epoch: the heavy-hitter counts
    /// halve and the size EWMAs relax instead of freezing at their
    /// last-traffic values, and after more than one idle epoch the
    /// drift reference is dropped so resuming traffic re-advises fresh
    /// (see [`SkewTracker::note_idle_epoch`]). The Count-Min sketches
    /// and the distinct bitmap are whole-stream totals, not rates, and
    /// are left untouched.
    pub fn note_idle_epoch(&mut self) {
        self.top.decay_idle_epoch();
        self.skew.note_idle_epoch();
    }

    /// Events consumed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Estimated distinct keys seen.
    pub fn distinct_keys(&self) -> u64 {
        self.distinct.estimate()
    }

    /// The monitored heavy hitters, hottest first.
    pub fn top_entries(&self) -> Vec<TopEntry> {
        self.top.entries()
    }

    /// Sketch-estimated `(reads, writes)` of an arbitrary key — never
    /// undercounts; over by at most [`Self::count_error_bound`] each.
    pub fn estimate_key(&self, key: u64) -> (u64, u64) {
        (self.cm_reads.estimate(key), self.cm_writes.estimate(key))
    }

    /// Count-Min one-sided error ceiling at the current stream length,
    /// in requests (the larger of the two sketches' bounds).
    pub fn count_error_bound(&self) -> u64 {
        self.cm_reads
            .error_bound()
            .max(self.cm_writes.error_bound())
    }

    /// The epoch/drift tracker.
    pub fn skew(&self) -> &SkewTracker {
        &self.skew
    }

    /// Exact profiler state footprint in bytes: every bounded structure,
    /// summed. Constant in stream length and key count.
    pub fn memory_bytes(&self) -> usize {
        self.top.memory_bytes()
            + self.cm_reads.memory_bytes()
            + self.cm_writes.memory_bytes()
            + self.distinct.memory_bytes()
            + self.skew.memory_bytes()
    }

    /// Reconstruct an approximate [`PatternEngine`].
    ///
    /// Head: each monitored key becomes one synthetic key. Its access
    /// count is the Space-Saving *guaranteed* count (`count - error`,
    /// never an overcount), split into reads/writes by the Count-Min
    /// point estimates (clamped to the total), with its EWMA size. Tail:
    /// the residual mass — total events minus head mass — spreads over
    /// the estimated remaining distinct keys following the zipf exponent
    /// fitted to the head (uniformly when the head is flat), at the
    /// global mean record size. Key ids are synthetic (head first, then
    /// tail); [`ApproxPattern::head_keys`] maps them back.
    ///
    /// The result feeds `Advisor::consult_with_pattern` unchanged: the
    /// estimate curve depends only on the per-key statistics multiset,
    /// not on key identity.
    pub fn approx_pattern(&self) -> ApproxPattern {
        let entries = self.top.entries();
        let mut stats: Vec<KeyStats> = Vec::with_capacity(entries.len() + 1);
        let mut head_keys: Vec<u64> = Vec::with_capacity(entries.len());
        let mut head_mass = 0u64;
        for e in &entries {
            let total = e.guaranteed();
            if total == 0 {
                continue;
            }
            // Count-Min point estimates split the total into ops. Both
            // are over-estimates, so normalise to the (reliable) total.
            let (cm_r, cm_w) = self.estimate_key(e.key);
            let reads = if cm_r + cm_w > 0 {
                ((total as f64 * cm_r as f64 / (cm_r + cm_w) as f64).round() as u64).min(total)
            } else {
                e.reads.min(total)
            };
            stats.push(KeyStats {
                reads,
                writes: total - reads,
                bytes: (e.size_ewma.round() as u64).max(1),
            });
            head_keys.push(e.key);
            head_mass += total;
        }

        let tail_mass = self.events.saturating_sub(head_mass);
        let tail_keys = self
            .distinct
            .estimate()
            .saturating_sub(head_keys.len() as u64);
        let mean_size = if self.events > 0 {
            (self.bytes_sum / self.events as f64).round().max(1.0) as u64
        } else {
            1
        };
        if tail_keys > 0 {
            // Continue the head's rank-frequency curve into the tail: fit
            // the zipf exponent to the guaranteed head counts and give
            // tail rank r weight (head + r)^-theta. A flat head (theta 0)
            // degenerates to a uniform tail. Shape matters: a uniform
            // tail makes the advisor buy far more FastMem than the real
            // decaying distribution needs.
            let guaranteed: Vec<u64> = entries.iter().map(|e| e.guaranteed()).collect();
            let theta = fit_zipf_theta(&guaranteed).unwrap_or(0.0);
            let head_len = head_keys.len() as u64;
            // powf dominates this loop and the serve daemon re-plans
            // from approx patterns every tick: compute each rank's
            // weight once and reuse it in the assignment pass below.
            let weights: Vec<f64> = (1..=tail_keys)
                .map(|r| ((head_len + r) as f64).powf(-theta))
                .collect();
            let total_weight: f64 = weights.iter().sum();
            let read_frac = if self.events > 0 {
                self.reads as f64 / self.events as f64
            } else {
                0.0
            };
            // Cumulative rounding conserves the mass exactly; the last
            // rank absorbs any float drift.
            let mut cum = 0.0;
            let mut assigned = 0u64;
            for r in 1..=tail_keys {
                cum += weights[(r - 1) as usize] / total_weight * tail_mass as f64;
                let upto = if r == tail_keys {
                    tail_mass
                } else {
                    (cum.round() as u64).min(tail_mass)
                };
                let total = upto - assigned;
                assigned = upto;
                let reads = (total as f64 * read_frac).round() as u64;
                stats.push(KeyStats {
                    reads,
                    writes: total - reads,
                    bytes: mean_size,
                });
            }
        } else if tail_mass > 0 {
            // Cardinality underestimated below the head size: keep the
            // mass on one synthetic overflow key rather than lose it.
            let reads =
                (tail_mass as f64 * self.reads as f64 / self.events.max(1) as f64).round() as u64;
            stats.push(KeyStats {
                reads,
                writes: tail_mass - reads,
                bytes: mean_size,
            });
        }

        ApproxPattern {
            pattern: PatternEngine::from_stats(stats),
            head_keys,
        }
    }

    /// Serialisable snapshot of the whole profiler, for warm restarts of
    /// long-lived consumers (the serve daemon's state dump).
    pub fn export_state(&self) -> ProfilerState {
        ProfilerState {
            top: self.top.export_state(),
            cm_reads: self.cm_reads.export_state(),
            cm_writes: self.cm_writes.export_state(),
            distinct: self.distinct.export_state(),
            skew: self.skew.export_state(),
            events: self.events,
            reads: self.reads,
            writes: self.writes,
            bytes_sum: self.bytes_sum,
        }
    }

    /// Rebuild a profiler from an exported state under `config`. The
    /// state must have come from a profiler of the same shape; any
    /// structural mismatch (sketch dimensions, over-capacity summaries)
    /// fails with a description rather than resuming silently wrong.
    pub fn from_state(
        config: StreamConfig,
        state: &ProfilerState,
    ) -> Result<StreamProfiler, String> {
        let reference = StreamProfiler::new(config);
        let cm_reads = CountMinSketch::import_state(&state.cm_reads)?;
        let cm_writes = CountMinSketch::import_state(&state.cm_writes)?;
        if cm_reads.width() != reference.cm_reads.width()
            || cm_reads.depth() != reference.cm_reads.depth()
            || cm_writes.width() != reference.cm_writes.width()
            || cm_writes.depth() != reference.cm_writes.depth()
        {
            return Err("sketch dimensions do not match the configuration".into());
        }
        let distinct = DistinctCounter::import_state(&state.distinct)?;
        if distinct.memory_bytes() != reference.distinct.memory_bytes() {
            return Err("distinct bitmap size does not match the configuration".into());
        }
        if !state.bytes_sum.is_finite() || state.bytes_sum < 0.0 {
            return Err(format!(
                "bytes_sum {} is not a valid total",
                state.bytes_sum
            ));
        }
        Ok(StreamProfiler {
            top: SpaceSaving::import_state(config.top_k, config.ewma_alpha, &state.top)?,
            cm_reads,
            cm_writes,
            distinct,
            skew: SkewTracker::import_state(config.drift, &state.skew)?,
            config,
            events: state.events,
            reads: state.reads,
            writes: state.writes,
            bytes_sum: state.bytes_sum,
        })
    }
}

/// Exported [`StreamProfiler`] state (see
/// [`StreamProfiler::export_state`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilerState {
    /// Heavy-hitter summary.
    pub top: TopKState,
    /// Read-op sketch.
    pub cm_reads: SketchState,
    /// Write-op sketch.
    pub cm_writes: SketchState,
    /// Distinct-key bitmap.
    pub distinct: DistinctState,
    /// Epoch/drift tracker.
    pub skew: TrackerState,
    /// Events consumed.
    pub events: u64,
    /// Read events.
    pub reads: u64,
    /// Write events.
    pub writes: u64,
    /// Sum of event sizes in bytes.
    pub bytes_sum: f64,
}

/// An approximate pattern plus the mapping from synthetic head ids back
/// to real keys.
#[derive(Debug, Clone)]
pub struct ApproxPattern {
    /// The reconstructed pattern (synthetic key ids: head entries first,
    /// in descending hotness, then uniform tail keys).
    pub pattern: PatternEngine,
    /// Real key of each head id (`head_keys[i]` is synthetic key `i`).
    pub head_keys: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ycsb::WorkloadSpec;

    fn profile(spec: WorkloadSpec, seed: u64) -> (StreamProfiler, ycsb::Trace) {
        let trace = spec.generate(seed);
        let mut p = StreamProfiler::new(StreamConfig::default());
        for e in trace.events() {
            p.observe(&e);
        }
        (p, trace)
    }

    #[test]
    fn default_config_fits_64_kib() {
        let p = StreamProfiler::new(StreamConfig::default());
        assert!(
            p.memory_bytes() <= 64 * 1024,
            "footprint {}",
            p.memory_bytes()
        );
        // And it is a real summary, not a degenerate one.
        assert!(
            p.memory_bytes() >= 32 * 1024,
            "footprint {}",
            p.memory_bytes()
        );
    }

    #[test]
    fn budget_scaling_is_monotone_and_respected() {
        let mut last = 0;
        for budget in [8 * 1024, 16 * 1024, 64 * 1024, 256 * 1024] {
            let p = StreamProfiler::new(StreamConfig::with_budget_bytes(budget));
            let used = p.memory_bytes();
            assert!(used <= budget + budget / 2, "budget {budget} used {used}");
            assert!(used > last, "more budget must buy more summary");
            last = used;
        }
    }

    #[test]
    fn totals_and_cardinality_are_tracked() {
        let (p, trace) = profile(WorkloadSpec::trending().scaled(2_000, 30_000), 7);
        assert_eq!(p.events(), trace.len() as u64);
        let true_distinct = trace.unique_keys_requested() as f64;
        let est = p.distinct_keys() as f64;
        assert!(
            (est - true_distinct).abs() / true_distinct < 0.05,
            "distinct est {est} vs true {true_distinct}"
        );
    }

    #[test]
    fn approx_pattern_conserves_request_mass() {
        let (p, trace) = profile(WorkloadSpec::trending().scaled(2_000, 30_000), 8);
        let approx = p.approx_pattern();
        let total = approx.pattern.total_requests();
        // Head uses guaranteed (lower-bound) counts, so the tail absorbs
        // the difference: totals match exactly.
        assert_eq!(total, trace.len() as u64);
        // Reads/writes split approximately matches the workload mix.
        let reads: u64 = approx.pattern.stats().iter().map(|s| s.reads).sum();
        let true_reads = (trace.read_fraction() * trace.len() as f64).round();
        assert!(
            (reads as f64 - true_reads).abs() / true_reads.max(1.0) < 0.05,
            "reads {reads} vs {true_reads}"
        );
    }

    #[test]
    fn head_keys_are_the_true_hottest_keys() {
        // A zipfian head is steep enough that the hottest keys exceed the
        // Space-Saving guarantee threshold `n / K` by a wide margin.
        let spec = WorkloadSpec {
            distribution: ycsb::DistKind::ScrambledZipfian { theta: 0.99 },
            ..WorkloadSpec::trending().scaled(2_000, 30_000)
        };
        let (p, trace) = profile(spec, 9);
        let counts = trace.key_counts();
        let mut true_order: Vec<u64> = (0..trace.keys()).collect();
        true_order.sort_by_key(|&k| std::cmp::Reverse(counts[k as usize].0 + counts[k as usize].1));
        let approx = p.approx_pattern();
        let head: std::collections::HashSet<u64> = approx.head_keys.iter().copied().collect();
        // The 16 genuinely hottest keys must all be monitored.
        for &k in &true_order[..16] {
            assert!(head.contains(&k), "hot key {k} missing from head");
        }
    }

    #[test]
    fn point_estimates_never_undercount() {
        let (p, trace) = profile(WorkloadSpec::timeline().scaled(1_000, 20_000), 10);
        let counts = trace.key_counts();
        let bound = p.count_error_bound();
        for key in (0..trace.keys()).step_by(37) {
            let (r, w) = p.estimate_key(key);
            let (tr, tw) = counts[key as usize];
            assert!(r >= tr && w >= tw, "undercount at {key}");
            assert!(r <= tr + bound && w <= tw + bound, "bound blown at {key}");
        }
    }

    #[test]
    fn idle_decay_shrinks_head_and_resumes_fresh() {
        let spec = WorkloadSpec::trending().scaled(500, 12_000);
        let (mut p, _) = profile(spec, 11);
        let hot_before = p.top_entries()[0].count;
        let ewma_before = p.top_entries()[0].size_ewma;
        p.note_idle_epoch();
        p.note_idle_epoch();
        let top = p.top_entries();
        assert!(top[0].count < hot_before, "counts must decay while idle");
        assert!(
            top[0].size_ewma < ewma_before,
            "sizes must decay while idle"
        );
        assert!(
            p.skew().last_epoch().is_none(),
            "idle gap must drop the drift reference"
        );
    }

    #[test]
    fn state_round_trip_preserves_behaviour() {
        let spec = WorkloadSpec::trending().scaled(800, 15_000);
        let trace = spec.generate(12);
        let config = StreamConfig::default();
        let mut p = StreamProfiler::new(config);
        for e in trace.events().take(9_000) {
            p.observe(&e);
        }
        let back = StreamProfiler::from_state(config, &p.export_state()).unwrap();
        assert_eq!(back.events(), p.events());
        assert_eq!(back.distinct_keys(), p.distinct_keys());
        assert_eq!(back.top_entries(), p.top_entries());
        // Continuing both with the rest of the trace stays identical.
        let mut a = p;
        let mut b = back;
        for e in trace.events().skip(9_000) {
            assert_eq!(a.observe(&e), b.observe(&e));
        }
        assert_eq!(
            a.approx_pattern().pattern.stats(),
            b.approx_pattern().pattern.stats()
        );
    }

    #[test]
    fn from_state_rejects_mismatched_config() {
        let p = StreamProfiler::new(StreamConfig::default());
        let state = p.export_state();
        let other = StreamConfig {
            cm_width: 64,
            ..StreamConfig::default()
        };
        assert!(StreamProfiler::from_state(other, &state).is_err());
    }

    #[test]
    fn empty_profiler_reconstructs_an_empty_pattern() {
        let p = StreamProfiler::new(StreamConfig::default());
        let approx = p.approx_pattern();
        assert_eq!(approx.pattern.key_count(), 0);
        assert_eq!(approx.pattern.total_requests(), 0);
        assert!(approx.head_keys.is_empty());
    }
}
