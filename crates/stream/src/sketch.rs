//! Count-Min sketch: per-key counters in sublinear space.
//!
//! A `depth × width` grid of saturating counters. Each key hashes to one
//! counter per row; an update increments all of them and a query takes
//! the row-wise minimum. Collisions only ever *inflate* a counter, so
//! the estimate never undercounts, and with `N` total increments the
//! one-sided error is bounded:
//!
//! ```text
//! true <= estimate <= true + eps * N   with probability >= 1 - delta,
//! eps = e / width,  delta = e^-depth
//! ```
//!
//! (Cormode & Muthukrishnan's analysis; `e` is Euler's number.) The
//! profiler keeps two of these — one for reads, one for writes — so the
//! per-key operation mix survives summarisation.

use serde::{Deserialize, Serialize};

/// Mixer used to derive the per-row counter index (SplitMix64 finaliser:
/// cheap, well-distributed, and deterministic across runs).
#[inline]
fn mix(key: u64, row_seed: u64) -> u64 {
    let mut z = key ^ row_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A Count-Min sketch over `u64` keys with `u32` counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    counters: Vec<u32>,
    total: u64,
}

impl CountMinSketch {
    /// Create a sketch. `width` is rounded up to a power of two (so the
    /// row index is a mask, not a modulo); `depth` is the number of
    /// independent rows. Both must be nonzero.
    pub fn new(width: usize, depth: usize) -> CountMinSketch {
        assert!(width > 0 && depth > 0, "sketch dimensions must be nonzero");
        let width = width.next_power_of_two();
        CountMinSketch {
            width,
            depth,
            counters: vec![0; width * depth],
            total: 0,
        }
    }

    /// Dimension the sketch for a one-sided error of at most
    /// `epsilon * N` with failure probability `delta`.
    pub fn with_error_bound(epsilon: f64, delta: f64) -> CountMinSketch {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon out of (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta out of (0,1)");
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        CountMinSketch::new(width, depth)
    }

    /// Row width (after power-of-two rounding).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total increments recorded (the `N` of the error bound).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `eps` of the error bound: estimates exceed true counts by at
    /// most `epsilon() * total()` with probability `1 - delta()`.
    pub fn epsilon(&self) -> f64 {
        std::f64::consts::E / self.width as f64
    }

    /// The failure probability of the error bound.
    pub fn delta(&self) -> f64 {
        (-(self.depth as f64)).exp()
    }

    /// The absolute error ceiling at the current stream length, in
    /// requests: `epsilon() * total()`, rounded up.
    pub fn error_bound(&self) -> u64 {
        (self.epsilon() * self.total as f64).ceil() as u64
    }

    /// Record one occurrence of `key`.
    pub fn increment(&mut self, key: u64) {
        self.total += 1;
        for row in 0..self.depth {
            let idx = row * self.width + (mix(key, row as u64 + 1) as usize & (self.width - 1));
            self.counters[idx] = self.counters[idx].saturating_add(1);
        }
    }

    /// Estimated count of `key` (never below the true count).
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.depth)
            .map(|row| {
                self.counters
                    [row * self.width + (mix(key, row as u64 + 1) as usize & (self.width - 1))]
            })
            .min()
            .unwrap_or(0) as u64
    }

    /// Heap footprint in bytes (counters only; the struct header is
    /// negligible and excluded consistently across all sketches).
    pub fn memory_bytes(&self) -> usize {
        self.counters.len() * std::mem::size_of::<u32>()
    }

    /// Serialisable snapshot of the sketch, for warm restarts of
    /// long-lived consumers.
    pub fn export_state(&self) -> SketchState {
        SketchState {
            width: self.width,
            depth: self.depth,
            counters: self.counters.clone(),
            total: self.total,
        }
    }

    /// Rebuild a sketch from an exported state. Fails on inconsistent
    /// dimensions (width not a power of two, counter grid of the wrong
    /// size).
    pub fn import_state(state: &SketchState) -> Result<CountMinSketch, String> {
        if state.width == 0 || !state.width.is_power_of_two() {
            return Err(format!("sketch width {} not a power of two", state.width));
        }
        if state.depth == 0 {
            return Err("sketch depth is zero".into());
        }
        if state.counters.len() != state.width * state.depth {
            return Err(format!(
                "sketch grid holds {} counters, expected {}",
                state.counters.len(),
                state.width * state.depth
            ));
        }
        Ok(CountMinSketch {
            width: state.width,
            depth: state.depth,
            counters: state.counters.clone(),
            total: state.total,
        })
    }
}

/// Exported [`CountMinSketch`] state (see
/// [`CountMinSketch::export_state`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchState {
    /// Row width (a power of two).
    pub width: usize,
    /// Number of rows.
    pub depth: usize,
    /// The `depth × width` counter grid, row-major.
    pub counters: Vec<u32>,
    /// Total increments recorded.
    pub total: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_rounds_to_power_of_two() {
        let s = CountMinSketch::new(1000, 4);
        assert_eq!(s.width(), 1024);
        assert_eq!(s.depth(), 4);
        assert_eq!(s.memory_bytes(), 1024 * 4 * 4);
    }

    #[test]
    fn error_bound_dimensioning() {
        let s = CountMinSketch::with_error_bound(0.01, 0.01);
        // width >= e/0.01 ~ 272 -> 512 after rounding; depth >= ln(100) ~ 5.
        assert!(s.width() >= 272);
        assert_eq!(s.depth(), 5);
        assert!(s.epsilon() <= 0.01);
        assert!(s.delta() <= 0.01);
    }

    #[test]
    fn never_undercounts_and_error_is_bounded() {
        let mut s = CountMinSketch::new(256, 4);
        // 100 keys, key k appears k+1 times.
        for key in 0..100u64 {
            for _ in 0..=key {
                s.increment(key);
            }
        }
        assert_eq!(s.total(), 5050);
        for key in 0..100u64 {
            let est = s.estimate(key);
            assert!(est > key, "undercount for {key}: {est}");
            assert!(
                est <= key + 1 + s.error_bound(),
                "estimate {est} for {key} above bound {}",
                s.error_bound()
            );
        }
    }

    #[test]
    fn state_round_trips() {
        let mut s = CountMinSketch::new(128, 3);
        for key in 0..500u64 {
            s.increment(key % 40);
        }
        let back = CountMinSketch::import_state(&s.export_state()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.estimate(7), s.estimate(7));
    }

    #[test]
    fn import_rejects_corrupt_state() {
        let mut state = CountMinSketch::new(128, 3).export_state();
        state.counters.pop();
        assert!(CountMinSketch::import_state(&state).is_err());
        let mut bad_width = CountMinSketch::new(128, 3).export_state();
        bad_width.width = 100;
        assert!(CountMinSketch::import_state(&bad_width).is_err());
    }

    #[test]
    fn unseen_keys_estimate_near_zero() {
        let mut s = CountMinSketch::new(4096, 4);
        for key in 0..50u64 {
            s.increment(key);
        }
        // With 50 increments in 4096-wide rows, an unseen key almost
        // surely hits an untouched counter in at least one of 4 rows.
        let ghost: u64 = (1000..1100).map(|k| s.estimate(k)).sum();
        assert!(
            ghost <= 2,
            "unseen keys should estimate ~0, got sum {ghost}"
        );
    }
}
