//! Space-Saving heavy hitters: the top-K keys of an unbounded stream in
//! O(K) memory.
//!
//! Metwally, Agrawal & El Abbadi's algorithm: keep at most `K` monitored
//! entries. A monitored key's arrival increments its counter; an
//! unmonitored key evicts the entry with the *smallest* counter,
//! inheriting that counter as its over-estimation `error`. Guarantees,
//! for a stream of `n` events:
//!
//! * every entry satisfies `count - error <= true <= count`;
//! * any key with true frequency `> n / K` is monitored — the reported
//!   set is a **superset** of the true heavy hitters at that threshold.
//!
//! Beyond the textbook algorithm, each entry also tracks what Mnemo's
//! Pattern Engine needs per key: the read/write split of its counted
//! arrivals and an EWMA of the record sizes observed for it, so the
//! monitored head of the distribution can be converted back into
//! [`mnemo::KeyStats`].

use hybridmem::DetHashMap;
use serde::{Deserialize, Serialize};
use ycsb::{AccessEvent, Op};

/// One monitored key.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopEntry {
    /// The key.
    pub key: u64,
    /// Upper bound on the key's true count.
    pub count: u64,
    /// Over-estimation inherited at takeover: `count - error` lower-bounds
    /// the true count.
    pub error: u64,
    /// Read arrivals counted while monitored.
    pub reads: u64,
    /// Write arrivals counted while monitored.
    pub writes: u64,
    /// EWMA of record sizes observed for this key (bytes).
    pub size_ewma: f64,
}

impl TopEntry {
    /// Guaranteed lower bound on the true count.
    pub fn guaranteed(&self) -> u64 {
        self.count - self.error
    }
}

/// Exported [`SpaceSaving`] state, for warm restarts of long-lived
/// consumers (see [`SpaceSaving::export_state`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TopKState {
    /// Monitored entries, in internal (not sorted) order.
    pub entries: Vec<TopEntry>,
    /// Events observed.
    pub observed: u64,
}

/// The Space-Saving summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpaceSaving {
    capacity: usize,
    ewma_alpha: f64,
    entries: Vec<TopEntry>,
    /// key -> index into `entries`.
    index: DetHashMap<u64, usize>,
    observed: u64,
}

impl SpaceSaving {
    /// Track up to `capacity` keys; `ewma_alpha` is the smoothing factor
    /// for per-key size estimates (weight of the newest observation).
    pub fn new(capacity: usize, ewma_alpha: f64) -> SpaceSaving {
        assert!(capacity > 0, "capacity must be nonzero");
        assert!((0.0..=1.0).contains(&ewma_alpha), "alpha out of [0,1]");
        SpaceSaving {
            capacity,
            ewma_alpha,
            entries: Vec::with_capacity(capacity),
            index: DetHashMap::with_capacity_and_hasher(capacity, Default::default()),
            observed: 0,
        }
    }

    /// Number of keys that can be monitored at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events observed so far (the `n` of the guarantees).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Record one access.
    pub fn observe(&mut self, event: &AccessEvent) {
        self.observed += 1;
        if let Some(&i) = self.index.get(&event.key) {
            self.bump(i, event);
            return;
        }
        if self.entries.len() < self.capacity {
            self.index.insert(event.key, self.entries.len());
            self.entries.push(TopEntry {
                key: event.key,
                count: 0,
                error: 0,
                reads: 0,
                writes: 0,
                size_ewma: event.bytes as f64,
            });
            let i = self.entries.len() - 1;
            self.bump(i, event);
            return;
        }
        // Take over the minimum-count entry; its count becomes our error.
        let min = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.count)
            .map(|(i, _)| i)
            // mnemo-lint: allow(R001, "new() asserts capacity > 0 and this branch only runs when entries is full, hence nonempty")
            .expect("capacity > 0");
        let evicted = self.entries[min];
        self.index.remove(&evicted.key);
        self.index.insert(event.key, min);
        // The inherited count is all error; the op split and size of the
        // evicted key do not transfer.
        self.entries[min] = TopEntry {
            key: event.key,
            count: evicted.count,
            error: evicted.count,
            reads: 0,
            writes: 0,
            size_ewma: event.bytes as f64,
        };
        self.bump(min, event);
    }

    fn bump(&mut self, i: usize, event: &AccessEvent) {
        let e = &mut self.entries[i];
        e.count += 1;
        match event.op {
            Op::Read => e.reads += 1,
            Op::Update => e.writes += 1,
        }
        e.size_ewma += self.ewma_alpha * (event.bytes as f64 - e.size_ewma);
    }

    /// Monitored entries, hottest first (descending count, ties by key).
    pub fn entries(&self) -> Vec<TopEntry> {
        let mut out = self.entries.clone();
        out.sort_by_key(|e| (std::cmp::Reverse(e.count), e.key));
        out
    }

    /// The monitored key set.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|e| e.key)
    }

    /// Whether `key` is currently monitored.
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// Forget everything (capacity and alpha are kept). Used by the
    /// per-epoch skew tracker between windows.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
        self.observed = 0;
    }

    /// Decay every monitored entry for one epoch that saw *no* traffic.
    ///
    /// A long-lived consumer (the serve daemon) calls this once per idle
    /// epoch so a tenant that stops sending requests sees its rate
    /// statistics halve and its size EWMAs relax toward zero instead of
    /// freezing at their last-traffic values forever. Counts, errors and
    /// the read/write split halve (integer floor, which preserves
    /// `error <= count` and hence the `guaranteed()` lower bound); the
    /// size EWMA takes one smoothing step toward zero — the same update
    /// the live path would apply to a zero-byte pseudo-observation.
    /// Entries whose count reaches zero are dropped and `observed`
    /// halves with them, keeping the `n / K` guarantee consistent.
    pub fn decay_idle_epoch(&mut self) {
        for e in &mut self.entries {
            e.count /= 2;
            e.error /= 2;
            e.reads /= 2;
            e.writes /= 2;
            e.size_ewma -= self.ewma_alpha * e.size_ewma;
        }
        self.entries.retain(|e| e.count > 0);
        self.index.clear();
        for (i, e) in self.entries.iter().enumerate() {
            self.index.insert(e.key, i);
        }
        self.observed /= 2;
    }

    /// Serialisable snapshot of the summary: the monitored entries (in
    /// internal order) and the observation count. Capacity and alpha are
    /// configuration and travel separately.
    pub fn export_state(&self) -> TopKState {
        TopKState {
            entries: self.entries.clone(),
            observed: self.observed,
        }
    }

    /// Rebuild a summary from an exported state under the given
    /// configuration. Fails when the state cannot have come from a
    /// summary of this shape (too many entries, duplicate keys, or an
    /// entry whose error exceeds its count).
    pub fn import_state(
        capacity: usize,
        ewma_alpha: f64,
        state: &TopKState,
    ) -> Result<SpaceSaving, String> {
        if state.entries.len() > capacity {
            return Err(format!(
                "top-k state holds {} entries but capacity is {capacity}",
                state.entries.len()
            ));
        }
        let mut out = SpaceSaving::new(capacity, ewma_alpha);
        for (i, e) in state.entries.iter().enumerate() {
            if e.error > e.count {
                return Err(format!("entry for key {} has error > count", e.key));
            }
            if out.index.insert(e.key, i).is_some() {
                return Err(format!("duplicate key {} in top-k state", e.key));
            }
            out.entries.push(*e);
        }
        out.observed = state.observed;
        Ok(out)
    }

    /// Heap footprint in bytes: the entry array plus the key index
    /// (estimated at one entry-slot pair per monitored key).
    pub fn memory_bytes(&self) -> usize {
        self.capacity * std::mem::size_of::<TopEntry>()
            + self.capacity * (std::mem::size_of::<u64>() + std::mem::size_of::<usize>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(key: u64, bytes: u64) -> AccessEvent {
        AccessEvent {
            key,
            op: Op::Read,
            bytes,
        }
    }

    fn write(key: u64, bytes: u64) -> AccessEvent {
        AccessEvent {
            key,
            op: Op::Update,
            bytes,
        }
    }

    #[test]
    fn exact_when_under_capacity() {
        let mut ss = SpaceSaving::new(8, 0.2);
        for _ in 0..5 {
            ss.observe(&read(1, 100));
        }
        ss.observe(&write(2, 200));
        let entries = ss.entries();
        assert_eq!(entries[0].key, 1);
        assert_eq!(entries[0].count, 5);
        assert_eq!(entries[0].error, 0);
        assert_eq!(entries[0].reads, 5);
        assert_eq!(
            entries[1],
            TopEntry {
                key: 2,
                count: 1,
                error: 0,
                reads: 0,
                writes: 1,
                size_ewma: 200.0,
            }
        );
    }

    #[test]
    fn heavy_hitters_survive_churn() {
        // Two heavy keys among a parade of one-shot keys: capacity 4
        // must keep both heavies monitored with tight bounds.
        let mut ss = SpaceSaving::new(4, 0.2);
        for i in 0..1000u64 {
            ss.observe(&read(1, 50));
            ss.observe(&read(2, 50));
            ss.observe(&read(1000 + i, 10)); // never repeats
        }
        assert!(ss.contains(1));
        assert!(ss.contains(2));
        let hot: Vec<_> = ss.entries().into_iter().take(2).collect();
        for e in hot {
            assert!(e.count >= 1000, "count {}", e.count);
            assert!(e.guaranteed() <= 1000);
        }
    }

    #[test]
    fn takeover_inherits_count_as_error() {
        let mut ss = SpaceSaving::new(1, 0.5);
        for _ in 0..10 {
            ss.observe(&read(7, 100));
        }
        ss.observe(&write(9, 40));
        let e = ss.entries()[0];
        assert_eq!(e.key, 9);
        assert_eq!(e.count, 11);
        assert_eq!(e.error, 10);
        assert_eq!(e.guaranteed(), 1);
        assert_eq!((e.reads, e.writes), (0, 1), "op split restarts at takeover");
        assert_eq!(e.size_ewma, 40.0, "size restarts at takeover");
    }

    #[test]
    fn size_ewma_tracks_observed_bytes() {
        let mut ss = SpaceSaving::new(2, 0.5);
        ss.observe(&read(3, 100));
        ss.observe(&read(3, 200)); // 100 + 0.5*(200-100) = 150
        let e = ss.entries()[0];
        assert!((e.size_ewma - 150.0).abs() < 1e-9);
    }

    #[test]
    fn idle_decay_halves_counts_and_relaxes_sizes() {
        let mut ss = SpaceSaving::new(4, 0.2);
        for _ in 0..8 {
            ss.observe(&read(1, 100));
        }
        ss.observe(&write(2, 50));
        ss.decay_idle_epoch();
        let entries = ss.entries();
        assert_eq!(entries[0].key, 1);
        assert_eq!(entries[0].count, 4);
        assert_eq!(entries[0].reads, 4);
        assert!(entries[0].size_ewma < 100.0, "EWMA must relax, not freeze");
        // Key 2 had count 1 -> halves to 0 -> dropped entirely.
        assert!(!ss.contains(2), "zero-count entries are dropped");
        assert_eq!(ss.observed(), 4);
        // Repeated idle epochs drain the summary completely.
        for _ in 0..8 {
            ss.decay_idle_epoch();
        }
        assert!(ss.entries().is_empty());
    }

    #[test]
    fn idle_decay_preserves_guarantee_invariant() {
        let mut ss = SpaceSaving::new(1, 0.2);
        for _ in 0..9 {
            ss.observe(&read(7, 10));
        }
        ss.observe(&read(8, 10)); // takeover: count 10, error 9
        ss.decay_idle_epoch();
        let e = ss.entries()[0];
        assert!(e.error <= e.count, "error {} > count {}", e.error, e.count);
        assert_eq!(e.guaranteed(), 1);
    }

    #[test]
    fn state_round_trips() {
        let mut ss = SpaceSaving::new(4, 0.2);
        for i in 0..20u64 {
            ss.observe(&read(i % 6, 10 + i));
        }
        let state = ss.export_state();
        let back = SpaceSaving::import_state(4, 0.2, &state).unwrap();
        assert_eq!(back.entries(), ss.entries());
        assert_eq!(back.observed(), ss.observed());
        // And the rebuilt index keeps working.
        let mut a = ss.clone();
        let mut b = back;
        for i in 0..50u64 {
            a.observe(&read(i % 9, 64));
            b.observe(&read(i % 9, 64));
        }
        assert_eq!(a.entries(), b.entries());
    }

    #[test]
    fn import_rejects_corrupt_state() {
        let over = TopKState {
            entries: (0..5)
                .map(|k| TopEntry {
                    key: k,
                    count: 1,
                    error: 0,
                    reads: 1,
                    writes: 0,
                    size_ewma: 1.0,
                })
                .collect(),
            observed: 5,
        };
        assert!(SpaceSaving::import_state(4, 0.2, &over).is_err());
        let dup = TopKState {
            entries: vec![
                TopEntry {
                    key: 1,
                    count: 2,
                    error: 0,
                    reads: 2,
                    writes: 0,
                    size_ewma: 1.0,
                };
                2
            ],
            observed: 4,
        };
        assert!(SpaceSaving::import_state(4, 0.2, &dup).is_err());
    }

    #[test]
    fn clear_resets_but_keeps_shape() {
        let mut ss = SpaceSaving::new(3, 0.2);
        for i in 0..10 {
            ss.observe(&read(i, 10));
        }
        let mem = ss.memory_bytes();
        ss.clear();
        assert_eq!(ss.observed(), 0);
        assert!(ss.entries().is_empty());
        assert_eq!(
            ss.memory_bytes(),
            mem,
            "budget is capacity-, not fill-, based"
        );
    }
}
