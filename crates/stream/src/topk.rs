//! Space-Saving heavy hitters: the top-K keys of an unbounded stream in
//! O(K) memory.
//!
//! Metwally, Agrawal & El Abbadi's algorithm: keep at most `K` monitored
//! entries. A monitored key's arrival increments its counter; an
//! unmonitored key evicts the entry with the *smallest* counter,
//! inheriting that counter as its over-estimation `error`. Guarantees,
//! for a stream of `n` events:
//!
//! * every entry satisfies `count - error <= true <= count`;
//! * any key with true frequency `> n / K` is monitored — the reported
//!   set is a **superset** of the true heavy hitters at that threshold.
//!
//! Beyond the textbook algorithm, each entry also tracks what Mnemo's
//! Pattern Engine needs per key: the read/write split of its counted
//! arrivals and an EWMA of the record sizes observed for it, so the
//! monitored head of the distribution can be converted back into
//! [`mnemo::KeyStats`].

use hybridmem::DetHashMap;
use serde::{Deserialize, Serialize};
use ycsb::{AccessEvent, Op};

/// One monitored key.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopEntry {
    /// The key.
    pub key: u64,
    /// Upper bound on the key's true count.
    pub count: u64,
    /// Over-estimation inherited at takeover: `count - error` lower-bounds
    /// the true count.
    pub error: u64,
    /// Read arrivals counted while monitored.
    pub reads: u64,
    /// Write arrivals counted while monitored.
    pub writes: u64,
    /// EWMA of record sizes observed for this key (bytes).
    pub size_ewma: f64,
}

impl TopEntry {
    /// Guaranteed lower bound on the true count.
    pub fn guaranteed(&self) -> u64 {
        self.count - self.error
    }
}

/// The Space-Saving summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpaceSaving {
    capacity: usize,
    ewma_alpha: f64,
    entries: Vec<TopEntry>,
    /// key -> index into `entries`.
    index: DetHashMap<u64, usize>,
    observed: u64,
}

impl SpaceSaving {
    /// Track up to `capacity` keys; `ewma_alpha` is the smoothing factor
    /// for per-key size estimates (weight of the newest observation).
    pub fn new(capacity: usize, ewma_alpha: f64) -> SpaceSaving {
        assert!(capacity > 0, "capacity must be nonzero");
        assert!((0.0..=1.0).contains(&ewma_alpha), "alpha out of [0,1]");
        SpaceSaving {
            capacity,
            ewma_alpha,
            entries: Vec::with_capacity(capacity),
            index: DetHashMap::with_capacity_and_hasher(capacity, Default::default()),
            observed: 0,
        }
    }

    /// Number of keys that can be monitored at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events observed so far (the `n` of the guarantees).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Record one access.
    pub fn observe(&mut self, event: &AccessEvent) {
        self.observed += 1;
        if let Some(&i) = self.index.get(&event.key) {
            self.bump(i, event);
            return;
        }
        if self.entries.len() < self.capacity {
            self.index.insert(event.key, self.entries.len());
            self.entries.push(TopEntry {
                key: event.key,
                count: 0,
                error: 0,
                reads: 0,
                writes: 0,
                size_ewma: event.bytes as f64,
            });
            let i = self.entries.len() - 1;
            self.bump(i, event);
            return;
        }
        // Take over the minimum-count entry; its count becomes our error.
        let min = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.count)
            .map(|(i, _)| i)
            // mnemo-lint: allow(R001, "new() asserts capacity > 0 and this branch only runs when entries is full, hence nonempty")
            .expect("capacity > 0");
        let evicted = self.entries[min];
        self.index.remove(&evicted.key);
        self.index.insert(event.key, min);
        // The inherited count is all error; the op split and size of the
        // evicted key do not transfer.
        self.entries[min] = TopEntry {
            key: event.key,
            count: evicted.count,
            error: evicted.count,
            reads: 0,
            writes: 0,
            size_ewma: event.bytes as f64,
        };
        self.bump(min, event);
    }

    fn bump(&mut self, i: usize, event: &AccessEvent) {
        let e = &mut self.entries[i];
        e.count += 1;
        match event.op {
            Op::Read => e.reads += 1,
            Op::Update => e.writes += 1,
        }
        e.size_ewma += self.ewma_alpha * (event.bytes as f64 - e.size_ewma);
    }

    /// Monitored entries, hottest first (descending count, ties by key).
    pub fn entries(&self) -> Vec<TopEntry> {
        let mut out = self.entries.clone();
        out.sort_by_key(|e| (std::cmp::Reverse(e.count), e.key));
        out
    }

    /// The monitored key set.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|e| e.key)
    }

    /// Whether `key` is currently monitored.
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// Forget everything (capacity and alpha are kept). Used by the
    /// per-epoch skew tracker between windows.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
        self.observed = 0;
    }

    /// Heap footprint in bytes: the entry array plus the key index
    /// (estimated at one entry-slot pair per monitored key).
    pub fn memory_bytes(&self) -> usize {
        self.capacity * std::mem::size_of::<TopEntry>()
            + self.capacity * (std::mem::size_of::<u64>() + std::mem::size_of::<usize>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(key: u64, bytes: u64) -> AccessEvent {
        AccessEvent {
            key,
            op: Op::Read,
            bytes,
        }
    }

    fn write(key: u64, bytes: u64) -> AccessEvent {
        AccessEvent {
            key,
            op: Op::Update,
            bytes,
        }
    }

    #[test]
    fn exact_when_under_capacity() {
        let mut ss = SpaceSaving::new(8, 0.2);
        for _ in 0..5 {
            ss.observe(&read(1, 100));
        }
        ss.observe(&write(2, 200));
        let entries = ss.entries();
        assert_eq!(entries[0].key, 1);
        assert_eq!(entries[0].count, 5);
        assert_eq!(entries[0].error, 0);
        assert_eq!(entries[0].reads, 5);
        assert_eq!(
            entries[1],
            TopEntry {
                key: 2,
                count: 1,
                error: 0,
                reads: 0,
                writes: 1,
                size_ewma: 200.0,
            }
        );
    }

    #[test]
    fn heavy_hitters_survive_churn() {
        // Two heavy keys among a parade of one-shot keys: capacity 4
        // must keep both heavies monitored with tight bounds.
        let mut ss = SpaceSaving::new(4, 0.2);
        for i in 0..1000u64 {
            ss.observe(&read(1, 50));
            ss.observe(&read(2, 50));
            ss.observe(&read(1000 + i, 10)); // never repeats
        }
        assert!(ss.contains(1));
        assert!(ss.contains(2));
        let hot: Vec<_> = ss.entries().into_iter().take(2).collect();
        for e in hot {
            assert!(e.count >= 1000, "count {}", e.count);
            assert!(e.guaranteed() <= 1000);
        }
    }

    #[test]
    fn takeover_inherits_count_as_error() {
        let mut ss = SpaceSaving::new(1, 0.5);
        for _ in 0..10 {
            ss.observe(&read(7, 100));
        }
        ss.observe(&write(9, 40));
        let e = ss.entries()[0];
        assert_eq!(e.key, 9);
        assert_eq!(e.count, 11);
        assert_eq!(e.error, 10);
        assert_eq!(e.guaranteed(), 1);
        assert_eq!((e.reads, e.writes), (0, 1), "op split restarts at takeover");
        assert_eq!(e.size_ewma, 40.0, "size restarts at takeover");
    }

    #[test]
    fn size_ewma_tracks_observed_bytes() {
        let mut ss = SpaceSaving::new(2, 0.5);
        ss.observe(&read(3, 100));
        ss.observe(&read(3, 200)); // 100 + 0.5*(200-100) = 150
        let e = ss.entries()[0];
        assert!((e.size_ewma - 150.0).abs() < 1e-9);
    }

    #[test]
    fn clear_resets_but_keeps_shape() {
        let mut ss = SpaceSaving::new(3, 0.2);
        for i in 0..10 {
            ss.observe(&read(i, 10));
        }
        let mem = ss.memory_bytes();
        ss.clear();
        assert_eq!(ss.observed(), 0);
        assert!(ss.entries().is_empty());
        assert_eq!(
            ss.memory_bytes(),
            mem,
            "budget is capacity-, not fill-, based"
        );
    }
}
