//! Lint codes, severities, and findings.

use std::fmt;

/// Every lint the pass enforces. Codes are stable public API: CI
/// artifacts, allow directives, and CONTRIBUTING.md all refer to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Wall-clock reads (`Instant::now`, `SystemTime`, …) outside the
    /// telemetry wall-time module. Wall time is nondeterministic; sim
    /// results must be functions of `SimClock` and the seed only.
    D001,
    /// `HashMap`/`HashSet` with the default `RandomState` hasher in
    /// non-test code: iteration order varies per process.
    D002,
    /// `thread::spawn` / raw `crossbeam::scope` outside `mnemo-par`,
    /// the one crate allowed to fork.
    D003,
    /// Floating-point `sum()`/`fold`/`product` inside a closure passed
    /// to a `mnemo-par` pool: reduction order would depend on the
    /// worker count. Reduce over the index-ordered result instead.
    D004,
    /// Raw `std::time::Instant` mentioned inside `crates/bench` outside
    /// the perf harness: bench wall-clock must flow through the
    /// telemetry-span `SweepTimer` so it lands in the `timing-*` /
    /// `BENCH_CORE.json` artifacts instead of ad-hoc prints.
    D005,
    /// Nondeterminism (wall-clock read, entropy-seeded RNG, or
    /// default-hasher map) *transitively* reachable — through the
    /// cross-crate call graph — from a closure scheduled on the
    /// `mnemo-par` pool. The token rules (D001/D002) catch the leaf;
    /// this catches the leaf hiding two calls below the closure.
    D006,
    /// Floating-point reduction (`.sum::<f64>()` & friends) reachable
    /// from a pool-scheduled closure through at least one call. The
    /// direct-in-closure case is D004; this is its transitive twin.
    D007,
    /// `unwrap()`/`expect()`/`panic!` outside tests and benches.
    R001,
    /// Bare `as` integer cast in `hybridmem` byte/nanosecond
    /// arithmetic: silently truncates or loses sign. Use the checked
    /// helpers in `hybridmem::num`.
    R002,
    /// `panic!`/`unwrap`/`expect` reachable (transitively) from a
    /// `mnemo-serve` request or journal hot-path function: a panic
    /// there takes down the daemon mid-request instead of degrading.
    R003,
    /// `std::process::exit` outside `main.rs`: skips destructors and
    /// makes library code untestable.
    S001,
    /// Lock-acquisition-order conflict: two lock receivers are acquired
    /// in order A→B on one call path and B→A on another — the classic
    /// deadlock shape, detected lexically across the call graph.
    C001,
    /// Heap allocation reachable from a `hybridmem` per-request charge
    /// path (`touch`/`access*`/`record*`): the PR 7 alloc-count perf
    /// gates pinned these paths alloc-free; an allocation here is a
    /// perf regression the counters would only catch at bench time.
    P001,
    /// Malformed `mnemo-lint:` directive (unknown code, or missing the
    /// mandatory justification string).
    M001,
    /// An allow directive that suppressed nothing — stale escape
    /// hatches get deleted, not collected.
    M002,
}

/// All enforceable codes, in report order.
pub const ALL_CODES: [Code; 15] = [
    Code::D001,
    Code::D002,
    Code::D003,
    Code::D004,
    Code::D005,
    Code::D006,
    Code::D007,
    Code::R001,
    Code::R002,
    Code::R003,
    Code::S001,
    Code::C001,
    Code::P001,
    Code::M001,
    Code::M002,
];

impl Code {
    /// Parse a code name as written in an allow directive.
    pub fn parse(s: &str) -> Option<Code> {
        ALL_CODES.iter().copied().find(|c| c.as_str() == s)
    }

    /// The stable code string (`"D001"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::D001 => "D001",
            Code::D002 => "D002",
            Code::D003 => "D003",
            Code::D004 => "D004",
            Code::D005 => "D005",
            Code::D006 => "D006",
            Code::D007 => "D007",
            Code::R001 => "R001",
            Code::R002 => "R002",
            Code::R003 => "R003",
            Code::S001 => "S001",
            Code::C001 => "C001",
            Code::P001 => "P001",
            Code::M001 => "M001",
            Code::M002 => "M002",
        }
    }

    /// One-line rationale, shown with every finding.
    pub fn explain(&self) -> &'static str {
        match self {
            Code::D001 => {
                "wall-clock read outside the telemetry wall-time module breaks \
                           --jobs byte-determinism"
            }
            Code::D002 => {
                "default-hasher HashMap/HashSet iterates in per-process random order; \
                           use BTreeMap/BTreeSet or hybridmem::det::{DetHashMap, DetHashSet}"
            }
            Code::D003 => {
                "thread creation outside mnemo-par bypasses the bounded deterministic \
                           pool"
            }
            Code::D004 => {
                "float reduction inside a pool closure depends on worker scheduling; \
                           reduce over the index-ordered results instead"
            }
            Code::D005 => {
                "ad-hoc Instant timing in crates/bench bypasses the SweepTimer span \
                           pipeline; time stages through mnemo_par::SweepTimer so the \
                           perf harness sees them"
            }
            Code::D006 => {
                "nondeterminism (wall clock, entropy RNG, default hasher) is reachable \
                           through the call graph from a closure scheduled on the mnemo-par \
                           pool; the output would depend on worker timing"
            }
            Code::D007 => {
                "a float reduction is reachable through the call graph from a \
                           pool-scheduled closure; reduction order would depend on the \
                           worker count"
            }
            Code::R001 => {
                "unwrap/expect/panic in non-test code turns recoverable failures into \
                           aborts; propagate a typed error"
            }
            Code::R002 => {
                "bare `as` integer cast on byte/ns arithmetic can truncate; use \
                           hybridmem::num helpers"
            }
            Code::R003 => {
                "a panic (panic!/unwrap/expect) is reachable from a mnemo-serve \
                           request/journal hot path; the daemon must degrade, not abort"
            }
            Code::S001 => {
                "process::exit outside main.rs skips destructors and exits from \
                           library code"
            }
            Code::C001 => {
                "two locks are acquired in opposite orders on different call paths — \
                           the classic deadlock shape; pick one global order"
            }
            Code::P001 => {
                "heap allocation reachable from a hybridmem per-request charge path; \
                           these paths are pinned alloc-free by the perf gates"
            }
            Code::M001 => {
                "malformed mnemo-lint directive: expected \
                           `mnemo-lint: allow(CODE, \"justification\")`"
            }
            Code::M002 => "allow directive suppressed nothing; delete it",
        }
    }

    /// Extended help shown by `mnemo lint --explain CODE` and embedded
    /// in the SARIF rule metadata: what the rule matches, why the
    /// invariant exists, and how to fix or suppress a finding.
    pub fn help(&self) -> &'static str {
        match self {
            Code::D001 => {
                "Matches `Instant::now()`, any `SystemTime` mention, and chrono-style \
                 `Utc::now()`/`Local::now()` outside crates/telemetry/src/recorder.rs. \
                 Simulation results must be functions of SimClock and the seed only, or \
                 the --jobs byte-diff gates break. Fix: thread sim time in, or record \
                 wall time through the telemetry recorder's sanctioned span API."
            }
            Code::D002 => {
                "Matches any `HashMap`/`HashSet` identifier in non-test code. The \
                 default RandomState hasher iterates in a per-process random order, so \
                 any iteration leaks nondeterminism. Fix: BTreeMap/BTreeSet when order \
                 matters, or the fixed-seed hybridmem::det::{DetHashMap, DetHashSet}."
            }
            Code::D003 => {
                "Matches `thread::spawn`, `.spawn(`, and `crossbeam::scope/thread` \
                 outside crates/par. All parallelism must go through the bounded \
                 deterministic mnemo-par pool so --jobs invariance holds."
            }
            Code::D004 => {
                "Matches `.sum::<f32|f64>()`, `.product::<f32|f64>()`, and \
                 `.fold(<float literal>, ..)` lexically inside the argument of a \
                 pool-receiver `map/map_slice/map_chunked/run_jobs/join` call. Float \
                 addition is not associative; reduce sequentially over the \
                 index-ordered results the pool hands back instead."
            }
            Code::D005 => {
                "Matches any `Instant` identifier in crates/bench outside \
                 crates/bench/src/perf/. Bench stages timed with a raw Instant never \
                 reach the timing-* CSVs or BENCH_CORE.json, so the perf harness \
                 under-reports them. Fix: time stages through mnemo_par::SweepTimer."
            }
            Code::D006 => {
                "Reachability twin of D001/D002: walks the workspace call graph from \
                 every closure scheduled on a mnemo-par pool entry point \
                 (map/map_slice/map_chunked/run_jobs/join on a pool-ish receiver) and \
                 flags wall-clock reads, entropy-seeded RNG (thread_rng/from_entropy/ \
                 RandomState), or default-hasher maps reachable through at least one \
                 call edge. The finding sits at the pool call site and names the call \
                 path to the offending leaf. Fix the leaf, or allow at the call site \
                 with a justification explaining why the path is benign."
            }
            Code::D007 => {
                "Reachability twin of D004: flags float reductions (turbofished \
                 .sum/.product, float-seeded .fold) in functions reachable from a \
                 pool-scheduled closure through at least one call edge. A per-item \
                 sequential reduction inside one mapped item is deterministic — if \
                 that is what the path does, say so in an allow justification."
            }
            Code::R001 => {
                "Matches `.unwrap()`, `.expect(`, and `panic!(` outside test regions. \
                 Library code propagates typed errors; a panic in production aborts \
                 the whole process. Fix: `?`, `ok_or`, or a typed error enum."
            }
            Code::R002 => {
                "Matches `<expr> as <int type>` in crates/hybridmem. Byte and \
                 nanosecond arithmetic silently truncates or loses sign under `as`; \
                 use the checked helpers in hybridmem::num."
            }
            Code::R003 => {
                "Walks the call graph from the mnemo-serve request hot path \
                 (ServeEngine::ingest/tick/replan/advise_now and their per-tenant \
                 helpers) and the journal write path (append/sync/rotate) and flags \
                 panic!/unwrap/expect reachable through at least one call edge — \
                 including R001-allowed sites, whose local justification does not \
                 cover being on a daemon hot path. The serving contract is degraded \
                 answers, never aborts. Fix the leaf or allow at the root with a \
                 justification for the whole path."
            }
            Code::S001 => {
                "Matches `process::exit` outside main.rs / src/bin/. Exiting from \
                 library code skips destructors (flushes, lock releases) and makes \
                 the code untestable. Fix: return a typed error to the entry point."
            }
            Code::C001 => {
                "Lexical lock-order audit: within each function the linter records \
                 the order in which lock receivers are acquired (`.lock()`, empty-arg \
                 `.read()`/`.write()`, and the serve-style `lock(&x)` helper), \
                 propagates acquisitions through the call graph, and flags any pair \
                 of receivers acquired as A then B on one path and B then A on \
                 another — the classic deadlock shape. Receivers are identified by \
                 field/variable name, so distinct locks sharing a name can alias. \
                 Fix: acquire in one global order, or allow with the reason the \
                 orders can never interleave."
            }
            Code::P001 => {
                "Walks the call graph from the hybridmem per-request charge paths \
                 (touch/touch_n/access/access_bytes/access_at/access_ns/access_ns_n \
                 and the AccessStats record/record_n sinks) and flags reachable heap \
                 allocations (vec!/format!/Box::new/with_capacity/to_vec/to_string/ \
                 to_owned/String::from/.collect). PR 7's alloc-count perf gates \
                 pinned these paths alloc-free; this catches regressions at lint \
                 time instead of bench time."
            }
            Code::M001 => {
                "An allow directive that does not parse: unknown code, missing \
                 parens, or a missing/empty justification string. The format is \
                 `// mnemo-lint: allow(CODE, \"non-empty reason\")`."
            }
            Code::M002 => {
                "Allow-directive hygiene: a directive that suppressed nothing \
                 (stale), whose justification contains no letters or digits, or \
                 whose justification is duplicated verbatim more than three times \
                 across the scanned tree (copy-paste suppressions stop being \
                 justifications). Delete the stale ones; write real reasons for \
                 the rest."
            }
        }
    }

    /// Findings in D/R/S codes are errors; directive hygiene (M*) is a
    /// warning unless `--deny-warnings` promotes it.
    pub fn severity(&self) -> Severity {
        match self {
            Code::M001 | Code::M002 => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a finding gates the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fails the run only under `--deny-warnings`.
    Warning,
    /// Always fails the run.
    Error,
}

impl Severity {
    /// Lowercase name used in reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One lint hit at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub code: Code,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// What was matched (e.g. `` `.unwrap()` ``), prepended to the
    /// code's rationale in reports.
    pub message: String,
}

impl Finding {
    /// Stable sort key: file, then position, then code.
    pub fn sort_key(&self) -> (String, u32, u32, Code) {
        (self.file.clone(), self.line, self.col, self.code)
    }
}

/// Render the `--explain CODE` page shared by the standalone binary and
/// the `mnemo lint --explain` subcommand: severity, the one-line
/// rationale, the full help text (also SARIF `fullDescription`), and
/// the suppression recipe. `Err` carries a usage message for unknown
/// codes.
pub fn explain_code(code_str: &str) -> Result<String, String> {
    let code = Code::parse(code_str.trim()).ok_or_else(|| {
        format!(
            "unknown lint code '{code_str}' (try D001..D007, R001..R003, S001, C001, P001, M001, M002)"
        )
    })?;
    Ok(format!(
        "{code} ({})\n\n{}\n\n{}\n\nSuppress a justified exception with:\n  // mnemo-lint: allow({code}, \"why this site is sound\")\n",
        code.severity().as_str(),
        code.explain(),
        code.help()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_have_docs() {
        for code in ALL_CODES {
            assert_eq!(Code::parse(code.as_str()), Some(code));
            assert!(!code.explain().is_empty());
        }
        assert_eq!(Code::parse("D999"), None);
    }

    #[test]
    fn meta_codes_are_warnings_rule_codes_are_errors() {
        assert_eq!(Code::M001.severity(), Severity::Warning);
        assert_eq!(Code::M002.severity(), Severity::Warning);
        for code in [Code::D001, Code::D004, Code::R001, Code::S001] {
            assert_eq!(code.severity(), Severity::Error);
        }
    }
}
