//! Lint codes, severities, and findings.

use std::fmt;

/// Every lint the pass enforces. Codes are stable public API: CI
/// artifacts, allow directives, and CONTRIBUTING.md all refer to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Wall-clock reads (`Instant::now`, `SystemTime`, …) outside the
    /// telemetry wall-time module. Wall time is nondeterministic; sim
    /// results must be functions of `SimClock` and the seed only.
    D001,
    /// `HashMap`/`HashSet` with the default `RandomState` hasher in
    /// non-test code: iteration order varies per process.
    D002,
    /// `thread::spawn` / raw `crossbeam::scope` outside `mnemo-par`,
    /// the one crate allowed to fork.
    D003,
    /// Floating-point `sum()`/`fold`/`product` inside a closure passed
    /// to a `mnemo-par` pool: reduction order would depend on the
    /// worker count. Reduce over the index-ordered result instead.
    D004,
    /// Raw `std::time::Instant` mentioned inside `crates/bench` outside
    /// the perf harness: bench wall-clock must flow through the
    /// telemetry-span `SweepTimer` so it lands in the `timing-*` /
    /// `BENCH_CORE.json` artifacts instead of ad-hoc prints.
    D005,
    /// `unwrap()`/`expect()`/`panic!` outside tests and benches.
    R001,
    /// Bare `as` integer cast in `hybridmem` byte/nanosecond
    /// arithmetic: silently truncates or loses sign. Use the checked
    /// helpers in `hybridmem::num`.
    R002,
    /// `std::process::exit` outside `main.rs`: skips destructors and
    /// makes library code untestable.
    S001,
    /// Malformed `mnemo-lint:` directive (unknown code, or missing the
    /// mandatory justification string).
    M001,
    /// An allow directive that suppressed nothing — stale escape
    /// hatches get deleted, not collected.
    M002,
}

/// All enforceable codes, in report order.
pub const ALL_CODES: [Code; 10] = [
    Code::D001,
    Code::D002,
    Code::D003,
    Code::D004,
    Code::D005,
    Code::R001,
    Code::R002,
    Code::S001,
    Code::M001,
    Code::M002,
];

impl Code {
    /// Parse a code name as written in an allow directive.
    pub fn parse(s: &str) -> Option<Code> {
        ALL_CODES.iter().copied().find(|c| c.as_str() == s)
    }

    /// The stable code string (`"D001"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::D001 => "D001",
            Code::D002 => "D002",
            Code::D003 => "D003",
            Code::D004 => "D004",
            Code::D005 => "D005",
            Code::R001 => "R001",
            Code::R002 => "R002",
            Code::S001 => "S001",
            Code::M001 => "M001",
            Code::M002 => "M002",
        }
    }

    /// One-line rationale, shown with every finding.
    pub fn explain(&self) -> &'static str {
        match self {
            Code::D001 => {
                "wall-clock read outside the telemetry wall-time module breaks \
                           --jobs byte-determinism"
            }
            Code::D002 => {
                "default-hasher HashMap/HashSet iterates in per-process random order; \
                           use BTreeMap/BTreeSet or hybridmem::det::{DetHashMap, DetHashSet}"
            }
            Code::D003 => {
                "thread creation outside mnemo-par bypasses the bounded deterministic \
                           pool"
            }
            Code::D004 => {
                "float reduction inside a pool closure depends on worker scheduling; \
                           reduce over the index-ordered results instead"
            }
            Code::D005 => {
                "ad-hoc Instant timing in crates/bench bypasses the SweepTimer span \
                           pipeline; time stages through mnemo_par::SweepTimer so the \
                           perf harness sees them"
            }
            Code::R001 => {
                "unwrap/expect/panic in non-test code turns recoverable failures into \
                           aborts; propagate a typed error"
            }
            Code::R002 => {
                "bare `as` integer cast on byte/ns arithmetic can truncate; use \
                           hybridmem::num helpers"
            }
            Code::S001 => {
                "process::exit outside main.rs skips destructors and exits from \
                           library code"
            }
            Code::M001 => {
                "malformed mnemo-lint directive: expected \
                           `mnemo-lint: allow(CODE, \"justification\")`"
            }
            Code::M002 => "allow directive suppressed nothing; delete it",
        }
    }

    /// Findings in D/R/S codes are errors; directive hygiene (M*) is a
    /// warning unless `--deny-warnings` promotes it.
    pub fn severity(&self) -> Severity {
        match self {
            Code::M001 | Code::M002 => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a finding gates the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fails the run only under `--deny-warnings`.
    Warning,
    /// Always fails the run.
    Error,
}

impl Severity {
    /// Lowercase name used in reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One lint hit at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub code: Code,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// What was matched (e.g. `` `.unwrap()` ``), prepended to the
    /// code's rationale in reports.
    pub message: String,
}

impl Finding {
    /// Stable sort key: file, then position, then code.
    pub fn sort_key(&self) -> (String, u32, u32, Code) {
        (self.file.clone(), self.line, self.col, self.code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_have_docs() {
        for code in ALL_CODES {
            assert_eq!(Code::parse(code.as_str()), Some(code));
            assert!(!code.explain().is_empty());
        }
        assert_eq!(Code::parse("D999"), None);
    }

    #[test]
    fn meta_codes_are_warnings_rule_codes_are_errors() {
        assert_eq!(Code::M001.severity(), Severity::Warning);
        assert_eq!(Code::M002.severity(), Severity::Warning);
        for code in [Code::D001, Code::D004, Code::R001, Code::S001] {
            assert_eq!(code.severity(), Severity::Error);
        }
    }
}
