//! Orchestration: walk the tree, analyze each file (token rules +
//! item parse), run the workspace phase (call-graph reachability +
//! allow hygiene), apply allow directives, and assemble a
//! deterministic [`Report`].
//!
//! The per-file half ([`analyze_source`]) is pure in the file's
//! content and path, which is what makes it cacheable ([`crate::cache`]
//! memoizes it on an FNV-64 content hash). The workspace half
//! ([`assemble`]) always runs — it is cheap next to lexing and has to
//! see every file at once.

use crate::allow::{parse_directives, AllowDirective};
use crate::context::test_region_mask;
use crate::diag::{Code, Finding, Severity};
use crate::lexer::{lex, TokenKind};
use crate::parser::{parse_file, FileModel};
use crate::reach::workspace_rules;
use crate::rules::{apply_rules, FileContext};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The result of linting a tree (or a single source).
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Surviving findings, sorted by (file, line, col, code).
    pub findings: Vec<Finding>,
    /// Findings suppressed by a justified allow directive.
    pub allowed: usize,
    /// Files scanned.
    pub files_scanned: usize,
    /// Files whose per-file analysis was served from the cache.
    pub files_cached: usize,
}

impl Report {
    /// Error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.code.severity() == Severity::Error)
            .count()
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings.len() - self.errors()
    }

    /// Does this report fail the build?
    pub fn is_failure(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }
}

/// Everything the per-file pass produces; the unit the incremental
/// cache stores and the workspace phase consumes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileAnalysis {
    /// Repo-relative path.
    pub path: String,
    /// Token-rule findings, *before* allow application.
    pub raw: Vec<Finding>,
    /// Directive-hygiene findings (M001) — never allowable.
    pub meta: Vec<Finding>,
    /// Parsed allow directives.
    pub directives: Vec<AllowDirective>,
    /// The parsed item model for the workspace phase.
    pub model: FileModel,
}

/// Analyze one source file: lex, mask test regions, parse directives,
/// run the token rules, and parse the item model. Pure in
/// `(path, src)`.
pub fn analyze_source(path: &str, src: &str) -> FileAnalysis {
    let all_tokens = lex(src);
    let mask = test_region_mask(src, &all_tokens);
    let (directives, meta) = parse_directives(path, src, &all_tokens);

    // Rules and the parser see only code tokens, with the test mask
    // carried along.
    let mut tokens = Vec::with_capacity(all_tokens.len());
    let mut in_test = Vec::with_capacity(all_tokens.len());
    for (t, m) in all_tokens.into_iter().zip(mask) {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            tokens.push(t);
            in_test.push(m);
        }
    }
    let raw = apply_rules(&FileContext {
        path,
        src,
        tokens: &tokens,
        in_test: &in_test,
    });
    let model = parse_file(path, src, &tokens, &in_test);
    FileAnalysis {
        path: path.to_string(),
        raw,
        meta,
        directives,
        model,
    }
}

/// How many verbatim copies of one justification string are tolerated
/// before M002 calls it copy-paste (the N+1th copy is flagged).
const MAX_JUSTIFICATION_COPIES: usize = 3;

/// Assemble per-file analyses into the final report: run the
/// workspace reachability rules, apply allow directives, and emit
/// allow-hygiene findings (stale / empty / copy-pasted justification).
/// `analyses` must be sorted by path.
pub fn assemble(analyses: &[FileAnalysis]) -> Report {
    let models: Vec<FileModel> = analyses.iter().map(|a| a.model.clone()).collect();
    let mut findings: Vec<Finding> = Vec::new();
    let mut pre_allow: Vec<Finding> = Vec::new();
    for a in analyses {
        pre_allow.extend(a.raw.iter().cloned());
        findings.extend(a.meta.iter().cloned());
    }
    pre_allow.extend(workspace_rules(&models));

    // Apply allows: a directive suppresses matching-code findings on
    // its target line of its own file. M-codes are not allowable.
    let mut used: Vec<Vec<bool>> = analyses.iter().map(|a| vec![false; a.directives.len()]).collect();
    let mut allowed = 0usize;
    for f in pre_allow {
        let slot = analyses.iter().position(|a| a.path == f.file).and_then(|ai| {
            analyses[ai]
                .directives
                .iter()
                .position(|d| d.code == f.code && d.applies_to == f.line)
                .map(|di| (ai, di))
        });
        match slot {
            Some((ai, di)) => {
                used[ai][di] = true;
                allowed += 1;
            }
            None => findings.push(f),
        }
    }

    // Allow hygiene. Count justification strings workspace-wide first
    // so copy-paste detection sees the whole file-set.
    let mut copies: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for a in analyses {
        for d in &a.directives {
            *copies.entry(d.justification.as_str()).or_default() += 1;
        }
    }
    let mut seen_so_far: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for (ai, a) in analyses.iter().enumerate() {
        for (di, d) in a.directives.iter().enumerate() {
            if !used[ai][di] {
                findings.push(Finding {
                    code: Code::M002,
                    file: a.path.clone(),
                    line: d.line,
                    col: 1,
                    message: format!("allow({}) with no matching finding", d.code),
                });
            }
            if !d.justification.chars().any(|c| c.is_ascii_alphanumeric()) {
                findings.push(Finding {
                    code: Code::M002,
                    file: a.path.clone(),
                    line: d.line,
                    col: 1,
                    message: format!(
                        "allow({}) justification \"{}\" is effectively empty",
                        d.code, d.justification
                    ),
                });
            }
            let n = seen_so_far.entry(d.justification.as_str()).or_default();
            *n += 1;
            if *n > MAX_JUSTIFICATION_COPIES {
                let total = copies[d.justification.as_str()];
                findings.push(Finding {
                    code: Code::M002,
                    file: a.path.clone(),
                    line: d.line,
                    col: 1,
                    message: format!(
                        "allow({}) justification duplicated verbatim {total} times \
                         across the workspace — write the site-specific reason",
                        d.code
                    ),
                });
            }
        }
    }

    findings.sort_by_key(Finding::sort_key);
    Report {
        findings,
        allowed,
        files_scanned: analyses.len(),
        files_cached: 0,
    }
}

/// Lint a set of in-memory `(path, src)` files as one workspace.
/// Single-element slices exercise the full pipeline including the
/// workspace phase, which is how the fixture suite drives the
/// reachability rules.
pub fn lint_files(files: &[(String, String)]) -> Report {
    let mut sorted: Vec<&(String, String)> = files.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let analyses: Vec<FileAnalysis> = sorted
        .iter()
        .map(|(p, s)| analyze_source(p, s))
        .collect();
    assemble(&analyses)
}

/// Lint one source file under its repo-relative `path` (the path drives
/// per-rule policy: wall-clock module, `mnemo-par`, entry points, …).
pub fn lint_source(path: &str, src: &str) -> Report {
    lint_files(&[(path.to_string(), src.to_string())])
}

/// Lint every `crates/**/*.rs` file under `root` (the workspace root).
/// `target/`, `tests/`, and `benches/` directories are skipped — the
/// invariants bind production sources.
pub fn lint_tree(root: &Path) -> io::Result<Report> {
    lint_tree_cached(root, None)
}

/// [`lint_tree`], memoizing per-file analyses in `cache_dir` when
/// given. A stale, missing, or malformed cache silently degrades to a
/// cold run; findings are byte-identical either way.
pub fn lint_tree_cached(root: &Path, cache_dir: Option<&Path>) -> io::Result<Report> {
    let files = workspace_files(root)?;
    let hashes: Vec<(&str, u64)> = files
        .iter()
        .map(|(p, s)| (p.as_str(), crate::cache::fnv64(s.as_bytes())))
        .collect();
    // Byte-identical workspace: replay the memoized report and skip
    // everything — per-file analysis, the workspace phase, even
    // loading the per-file cache entries. Nothing changed, so the
    // cache file needs no rewrite either.
    let digest = crate::cache::Cache::fileset_digest(&hashes);
    if let Some(dir) = cache_dir {
        if let Some(mut report) = crate::cache::Cache::load_report(dir, digest) {
            report.files_cached = report.files_scanned;
            return Ok(report);
        }
    }
    let mut cache = match cache_dir {
        Some(dir) => crate::cache::Cache::load(dir),
        None => crate::cache::Cache::empty(),
    };
    let mut analyses = Vec::with_capacity(files.len());
    let mut files_cached = 0usize;
    for ((rel, src), (_, hash)) in files.iter().zip(&hashes) {
        if let Some(hit) = cache.get(rel, *hash) {
            files_cached += 1;
            analyses.push(hit);
        } else {
            let a = analyze_source(rel, src);
            cache.put(rel, *hash, &a);
            analyses.push(a);
        }
    }
    let mut report = assemble(&analyses);
    report.files_cached = files_cached;
    if let Some(dir) = cache_dir {
        // Cache write failures are non-fatal: the lint result stands.
        let keep: Vec<&str> = files.iter().map(|(p, _)| p.as_str()).collect();
        cache.retain(&keep);
        cache.set_report(digest, &report);
        let _ = cache.save(dir);
    }
    Ok(report)
}

/// Collect the workspace file-set `lint_tree` binds: every
/// `crates/**/*.rs` under `root`, sorted by repo-relative path.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, String)>> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "{} is not a workspace root (no crates/ dir)",
                root.display()
            ),
        ));
    }
    let mut paths = Vec::new();
    collect_rs_files(&crates_dir, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for file in &paths {
        let bytes = fs::read(file)?;
        let src = String::from_utf8_lossy(&bytes).into_owned();
        files.push((relative_path(root, file), src));
    }
    Ok(files)
}

const SKIP_DIRS: [&str; 3] = ["target", "tests", "benches"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_on_same_line_suppresses_and_counts() {
        let src = "fn f() { x.unwrap(); } // mnemo-lint: allow(R001, \"infallible: set above\")\n";
        let r = lint_source("crates/core/src/x.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.allowed, 1);
    }

    #[test]
    fn standalone_allow_suppresses_next_line() {
        let src = "fn f() {\n    // mnemo-lint: allow(R001, \"checked\")\n    x.unwrap();\n}\n";
        let r = lint_source("crates/core/src/x.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.allowed, 1);
    }

    #[test]
    fn allow_with_wrong_code_does_not_suppress_and_goes_stale() {
        let src = "fn f() { x.unwrap(); } // mnemo-lint: allow(D001, \"wrong code\")\n";
        let r = lint_source("crates/core/src/x.rs", src);
        let codes: Vec<Code> = r.findings.iter().map(|f| f.code).collect();
        // Both findings land on line 1; the stale directive (col 1)
        // sorts before the unsuppressed unwrap.
        assert_eq!(codes, vec![Code::M002, Code::R001]);
        assert_eq!(r.allowed, 0);
    }

    #[test]
    fn one_allow_covers_multiple_hits_on_its_line() {
        let src = "fn f() { a.unwrap(); b.unwrap(); } // mnemo-lint: allow(R001, \"both set\")\n";
        let r = lint_source("crates/core/src/x.rs", src);
        assert!(r.findings.is_empty());
        assert_eq!(r.allowed, 2);
    }

    #[test]
    fn malformed_directive_is_a_warning_finding() {
        let src = "// mnemo-lint: allow(R001)\nfn f() { x.unwrap(); }\n";
        let r = lint_source("crates/core/src/x.rs", src);
        let codes: Vec<Code> = r.findings.iter().map(|f| f.code).collect();
        assert_eq!(codes, vec![Code::M001, Code::R001]);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert!(r.is_failure(false));
    }

    #[test]
    fn clean_source_passes() {
        let src = "fn f() -> Result<u32, String> { Ok(1) }\n";
        let r = lint_source("crates/core/src/x.rs", src);
        assert!(r.findings.is_empty());
        assert!(!r.is_failure(true));
    }

    #[test]
    fn warnings_fail_only_under_deny() {
        let src = "// mnemo-lint: allow(R001, \"stale\")\nfn f() {}\n";
        let r = lint_source("crates/core/src/x.rs", src);
        assert_eq!(r.warnings(), 1);
        assert!(!r.is_failure(false));
        assert!(r.is_failure(true));
    }

    #[test]
    fn reachability_findings_can_be_allowed_at_the_root_site() {
        let src = "fn build(pool: &Pool) {\n    \
                   // mnemo-lint: allow(D006, \"stamp() reads wall time for the log header only\")\n    \
                   pool.map(|i| step(i));\n}\n\
                   fn step(i: usize) -> u64 { stamp() + i as u64 }\n\
                   // mnemo-lint: allow(D001, \"log header wall time, not sim state\")\n\
                   fn stamp() -> u64 { let t = Instant::now(); 0 }\n";
        let r = lint_source("crates/core/src/curve.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.allowed, 2);
    }

    #[test]
    fn effectively_empty_justification_is_flagged() {
        let src = "fn f() { x.unwrap(); } // mnemo-lint: allow(R001, \"--\")\n";
        let r = lint_source("crates/core/src/x.rs", src);
        let codes: Vec<Code> = r.findings.iter().map(|f| f.code).collect();
        assert_eq!(codes, vec![Code::M002]);
        assert!(r.findings[0].message.contains("effectively empty"));
        // The directive still suppressed the unwrap — the complaint is
        // about the justification, not the suppression.
        assert_eq!(r.allowed, 1);
    }

    #[test]
    fn copy_pasted_justification_beyond_three_is_flagged() {
        let line = "fn f{n}() {{ x.unwrap(); }} // mnemo-lint: allow(R001, \"known safe\")\n";
        let mut src = String::new();
        for n in 0..4 {
            src.push_str(&line.replace("{n}", &n.to_string()));
        }
        let r = lint_source("crates/core/src/x.rs", src.as_str());
        let codes: Vec<Code> = r.findings.iter().map(|f| f.code).collect();
        assert_eq!(codes, vec![Code::M002], "{:?}", r.findings);
        assert!(r.findings[0].message.contains("duplicated verbatim 4 times"));
        assert_eq!(r.findings[0].line, 4);
        // Three copies stay clean.
        let mut three = String::new();
        for n in 0..3 {
            three.push_str(&line.replace("{n}", &n.to_string()));
        }
        let r3 = lint_source("crates/core/src/x.rs", three.as_str());
        assert!(r3.findings.is_empty(), "{:?}", r3.findings);
    }
}
