//! Orchestration: walk the tree, lint each file, apply allow
//! directives, and assemble a deterministic [`Report`].

use crate::allow::parse_directives;
use crate::context::test_region_mask;
use crate::diag::{Code, Finding, Severity};
use crate::lexer::{lex, TokenKind};
use crate::rules::{apply_rules, FileContext};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The result of linting a tree (or a single source).
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Surviving findings, sorted by (file, line, col, code).
    pub findings: Vec<Finding>,
    /// Findings suppressed by a justified allow directive.
    pub allowed: usize,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.code.severity() == Severity::Error)
            .count()
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings.len() - self.errors()
    }

    /// Does this report fail the build?
    pub fn is_failure(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }

    fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.allowed += other.allowed;
        self.files_scanned += other.files_scanned;
    }
}

/// Lint one source file under its repo-relative `path` (the path drives
/// per-rule policy: wall-clock module, `mnemo-par`, entry points, …).
pub fn lint_source(path: &str, src: &str) -> Report {
    let all_tokens = lex(src);
    let mask = test_region_mask(src, &all_tokens);
    let (directives, mut findings) = parse_directives(path, src, &all_tokens);

    // Rules see only code tokens, with the test mask carried along.
    let mut tokens = Vec::with_capacity(all_tokens.len());
    let mut in_test = Vec::with_capacity(all_tokens.len());
    for (t, m) in all_tokens.into_iter().zip(mask) {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            tokens.push(t);
            in_test.push(m);
        }
    }
    let raw = apply_rules(&FileContext {
        path,
        src,
        tokens: &tokens,
        in_test: &in_test,
    });

    // Apply allows: a directive suppresses matching-code findings on
    // its target line. M-codes (directive hygiene) are not allowable.
    let mut used = vec![false; directives.len()];
    let mut allowed = 0usize;
    for f in raw {
        let slot = directives
            .iter()
            .position(|d| d.code == f.code && d.applies_to == f.line);
        match slot {
            Some(i) => {
                used[i] = true;
                allowed += 1;
            }
            None => findings.push(f),
        }
    }
    for (d, used) in directives.iter().zip(&used) {
        if !used {
            findings.push(Finding {
                code: Code::M002,
                file: path.to_string(),
                line: d.line,
                col: 1,
                message: format!("allow({}) with no matching finding", d.code),
            });
        }
    }

    findings.sort_by_key(Finding::sort_key);
    Report {
        findings,
        allowed,
        files_scanned: 1,
    }
}

/// Lint every `crates/**/*.rs` file under `root` (the workspace root).
/// `target/`, `tests/`, and `benches/` directories are skipped — the
/// invariants bind production sources.
pub fn lint_tree(root: &Path) -> io::Result<Report> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "{} is not a workspace root (no crates/ dir)",
                root.display()
            ),
        ));
    }
    let mut files = Vec::new();
    collect_rs_files(&crates_dir, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for file in &files {
        let bytes = fs::read(file)?;
        let src = String::from_utf8_lossy(&bytes);
        let rel = relative_path(root, file);
        report.merge(lint_source(&rel, &src));
    }
    report.findings.sort_by_key(Finding::sort_key);
    Ok(report)
}

const SKIP_DIRS: [&str; 3] = ["target", "tests", "benches"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_on_same_line_suppresses_and_counts() {
        let src = "fn f() { x.unwrap(); } // mnemo-lint: allow(R001, \"infallible: set above\")\n";
        let r = lint_source("crates/core/src/x.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.allowed, 1);
    }

    #[test]
    fn standalone_allow_suppresses_next_line() {
        let src = "fn f() {\n    // mnemo-lint: allow(R001, \"checked\")\n    x.unwrap();\n}\n";
        let r = lint_source("crates/core/src/x.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.allowed, 1);
    }

    #[test]
    fn allow_with_wrong_code_does_not_suppress_and_goes_stale() {
        let src = "fn f() { x.unwrap(); } // mnemo-lint: allow(D001, \"wrong code\")\n";
        let r = lint_source("crates/core/src/x.rs", src);
        let codes: Vec<Code> = r.findings.iter().map(|f| f.code).collect();
        // Both findings land on line 1; the stale directive (col 1)
        // sorts before the unsuppressed unwrap.
        assert_eq!(codes, vec![Code::M002, Code::R001]);
        assert_eq!(r.allowed, 0);
    }

    #[test]
    fn one_allow_covers_multiple_hits_on_its_line() {
        let src = "fn f() { a.unwrap(); b.unwrap(); } // mnemo-lint: allow(R001, \"both set\")\n";
        let r = lint_source("crates/core/src/x.rs", src);
        assert!(r.findings.is_empty());
        assert_eq!(r.allowed, 2);
    }

    #[test]
    fn malformed_directive_is_a_warning_finding() {
        let src = "// mnemo-lint: allow(R001)\nfn f() { x.unwrap(); }\n";
        let r = lint_source("crates/core/src/x.rs", src);
        let codes: Vec<Code> = r.findings.iter().map(|f| f.code).collect();
        assert_eq!(codes, vec![Code::M001, Code::R001]);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert!(r.is_failure(false));
    }

    #[test]
    fn clean_source_passes() {
        let src = "fn f() -> Result<u32, String> { Ok(1) }\n";
        let r = lint_source("crates/core/src/x.rs", src);
        assert!(r.findings.is_empty());
        assert!(!r.is_failure(true));
    }

    #[test]
    fn warnings_fail_only_under_deny() {
        let src = "// mnemo-lint: allow(R001, \"stale\")\nfn f() {}\n";
        let r = lint_source("crates/core/src/x.rs", src);
        assert_eq!(r.warnings(), 1);
        assert!(!r.is_failure(false));
        assert!(r.is_failure(true));
    }
}
