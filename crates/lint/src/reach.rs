//! The semantic rule family: facts reachable *through the call graph*.
//!
//! | code | roots | facts |
//! |------|-------|-------|
//! | D006 | `mnemo-par` pool-closure call sites | wall clock, entropy RNG, default hasher |
//! | D007 | `mnemo-par` pool-closure call sites | float reductions |
//! | R003 | `mnemo-serve` request/journal hot-path fns | `panic!` / `unwrap` / `expect` |
//! | C001 | every non-test fn | conflicting lock-acquisition orders |
//! | P001 | `hybridmem` per-request charge fns | heap allocation |
//!
//! Division of labor with the token rules: D001/D002/D004/R001 already
//! flag facts *lexically* at their own site, so D006/D007/R003 only
//! report facts found in **callees** (depth ≥ 1 below the root site) —
//! a finding here always names a call path the token pass cannot see.
//! P001 and C001 have no token-rule counterpart and include depth 0.
//!
//! Findings are **aggregated per root** and land on the root's line, so
//! one `mnemo-lint: allow` at the scheduling site / hot-path fn covers
//! everything reachable from it — the allow's justification then
//! documents why the whole subtree is sound, which is the reviewable
//! unit that matters.

use crate::diag::{Code, Finding};
use crate::graph::{crate_dir_of, FnId, Graph};
use crate::parser::{FactHit, FactKind, FileModel};
use std::collections::BTreeMap;

/// Call-graph walk depth cap. Deep enough for every real chain in the
/// workspace (longest today is ~6); bounds adversarial inputs.
pub const MAX_DEPTH: u32 = 16;

/// `mnemo-serve` request hot-path roots in `engine.rs`.
const SERVE_ENGINE_ROOTS: [&str; 8] = [
    "on_event", "advise", "demand", "advise_row", "ingest", "tick", "replan", "advise_now",
];
/// `mnemo-serve` journal hot-path roots in `journal.rs`.
const SERVE_JOURNAL_ROOTS: [&str; 6] = [
    "start_segment", "append", "rotate", "sync", "recover", "encode_record",
];
/// `hybridmem` per-request charge-path roots in `system.rs`.
const HM_SYSTEM_ROOTS: [&str; 5] = ["access", "access_bytes", "touch", "touch_n", "access_at"];
/// `hybridmem` per-request charge-path roots in `device.rs`.
const HM_DEVICE_ROOTS: [&str; 1] = ["access_ns"];

/// Run every workspace-level rule over the parsed models. `models`
/// must be sorted by path; findings come back in rule-then-site order
/// (the engine re-sorts globally).
pub fn workspace_rules(models: &[FileModel]) -> Vec<Finding> {
    let g = Graph::build(models);
    let mut out = Vec::new();
    pool_reach_rules(&g, &mut out);
    serve_panic_rule(&g, &mut out);
    lock_order_rule(&g, &mut out);
    alloc_reach_rule(&g, &mut out);
    out
}

/// Modules sanctioned to hold nondeterminism facts: the pool itself
/// (seeded per-worker state, D001-allowed timers) and the telemetry
/// wall-clock module the D001 policy already exempts.
fn sanctioned_nondet(path: &str) -> bool {
    path.starts_with("crates/par/") || path == "crates/telemetry/src/recorder.rs"
}

fn fact_noun(kind: FactKind) -> &'static str {
    match kind {
        FactKind::WallClock => "wall-clock read",
        FactKind::Entropy => "entropy-seeded RNG",
        FactKind::DefaultHasher => "default-hasher collection",
        FactKind::FloatReduction => "float reduction",
        FactKind::Panics => "panic site",
        FactKind::Alloc => "heap allocation",
    }
}

/// One reachable fact: where it is and how the walk got there.
struct Reached<'m> {
    hit: &'m FactHit,
    path: String,
    chain: Vec<String>,
}

/// Collect facts matching `want` in fns visited by `seen`, skipping
/// test fns, fns below `min_depth`, and (optionally) sanctioned
/// modules. Deterministic: `seen` is a BTreeMap over node ids, which
/// follow (file, fn) order.
fn collect<'m>(
    g: &Graph<'m>,
    seen: &BTreeMap<FnId, (u32, Option<FnId>)>,
    min_depth: u32,
    want: &[FactKind],
    skip_sanctioned: bool,
) -> Vec<Reached<'m>> {
    let mut out = Vec::new();
    for (&id, &(depth, _)) in seen {
        if depth < min_depth {
            continue;
        }
        let f = g.fn_of(id);
        if f.in_test {
            continue;
        }
        let path = g.path_of(id);
        if skip_sanctioned && sanctioned_nondet(path) {
            continue;
        }
        for hit in &f.facts {
            if want.contains(&hit.kind) {
                out.push(Reached {
                    hit,
                    path: path.to_string(),
                    chain: g.path_to(seen, id),
                });
            }
        }
    }
    // Order by site for stable "first example" selection.
    out.sort_by(|a, b| (&a.path, a.hit.line).cmp(&(&b.path, b.hit.line)));
    out
}

fn describe(reached: &[Reached], label: &str) -> String {
    let first = &reached[0];
    let via = first.chain.join(" -> ");
    let mut msg = format!(
        "{} ({}) at {}:{} reachable from {} via {}",
        fact_noun(first.hit.kind),
        first.hit.what,
        first.path,
        first.hit.line,
        label,
        via
    );
    if reached.len() > 1 {
        msg.push_str(&format!(" (+{} more reachable)", reached.len() - 1));
    }
    msg
}

/// D006 + D007: facts reachable from closures scheduled on the pool.
/// Depth 0 of the walk is already one call below the closure (the
/// closure's own body is covered lexically by D001/D002/D004).
fn pool_reach_rules(g: &Graph, out: &mut Vec<Finding>) {
    for (fi, fm) in g.models.iter().enumerate() {
        if crate_dir_of(&fm.path) == "par" {
            continue; // the pool's own internals schedule themselves
        }
        for (si, site) in fm.pool_sites.iter().enumerate() {
            if site.in_test {
                continue;
            }
            let roots = &g.site_roots[fi][si];
            if roots.is_empty() {
                continue;
            }
            let seen = g.reach(roots, MAX_DEPTH);
            let label = format!("pool closure `{}`", site.method);
            let nondet = collect(
                g,
                &seen,
                0,
                &[FactKind::WallClock, FactKind::Entropy, FactKind::DefaultHasher],
                true,
            );
            if !nondet.is_empty() {
                out.push(Finding {
                    code: Code::D006,
                    file: fm.path.clone(),
                    line: site.line,
                    col: site.col,
                    message: describe(&nondet, &label),
                });
            }
            let floats = collect(g, &seen, 0, &[FactKind::FloatReduction], true);
            if !floats.is_empty() {
                out.push(Finding {
                    code: Code::D007,
                    file: fm.path.clone(),
                    line: site.line,
                    col: site.col,
                    message: describe(&floats, &label),
                });
            }
        }
    }
}

/// R003: panics reachable from the serve hot paths. Depth ≥ 1 only —
/// a panic in the hot-path fn itself is R001's finding.
fn serve_panic_rule(g: &Graph, out: &mut Vec<Finding>) {
    for id in 0..g.nodes.len() {
        let f = g.fn_of(id);
        let path = g.path_of(id);
        if f.in_test || crate_dir_of(path) != "serve" {
            continue;
        }
        let is_root = (path.ends_with("/engine.rs") && SERVE_ENGINE_ROOTS.contains(&f.name.as_str()))
            || (path.ends_with("/journal.rs") && SERVE_JOURNAL_ROOTS.contains(&f.name.as_str()));
        if !is_root {
            continue;
        }
        let seen = g.reach(&[id], MAX_DEPTH);
        let panics = collect(g, &seen, 1, &[FactKind::Panics], false);
        if !panics.is_empty() {
            out.push(Finding {
                code: Code::R003,
                file: path.to_string(),
                line: f.line,
                col: f.col,
                message: describe(&panics, &format!("serve hot path `{}`", f.name)),
            });
        }
    }
}

/// P001: heap allocation reachable from the hybridmem charge paths,
/// including the root's own body (no token rule covers allocation).
fn alloc_reach_rule(g: &Graph, out: &mut Vec<Finding>) {
    for id in 0..g.nodes.len() {
        let f = g.fn_of(id);
        let path = g.path_of(id);
        if f.in_test || crate_dir_of(path) != "hybridmem" {
            continue;
        }
        let is_root = (path.ends_with("/system.rs") && HM_SYSTEM_ROOTS.contains(&f.name.as_str()))
            || (path.ends_with("/device.rs") && HM_DEVICE_ROOTS.contains(&f.name.as_str()));
        if !is_root {
            continue;
        }
        let seen = g.reach(&[id], MAX_DEPTH);
        let allocs = collect(g, &seen, 0, &[FactKind::Alloc], false);
        if !allocs.is_empty() {
            out.push(Finding {
                code: Code::P001,
                file: path.to_string(),
                line: f.line,
                col: f.col,
                message: describe(&allocs, &format!("charge path `{}`", f.name)),
            });
        }
    }
}

/// C001: two call paths that acquire the same pair of locks in
/// opposite orders *while the first is held*. "Held" is the lexical
/// guard-lives-to-end-of-scope approximation the parser records
/// ([`crate::parser::LockAcq::held_until`]): sequential acquisitions in
/// disjoint blocks (e.g. a loop locking each shard in turn) do not
/// pair. Receivers are *names* (`self.inner.lock()` → `inner`), so
/// distinct fields sharing a name alias — a deliberate
/// over-approximation for a lightweight detector.
fn lock_order_rule(g: &Graph, out: &mut Vec<Finding>) {
    // Witness per ordered pair (a, b): first site that acquires b
    // (directly or through a call) while holding a.
    type Witness = (String, u32, String, u32, String); // file_a, line_a, file_b, line_b, fn
    let mut pairs: BTreeMap<(String, String), Witness> = BTreeMap::new();
    // Memoized transitive lock closure per fn: receiver → first site.
    let mut closures: Vec<Option<BTreeMap<String, (String, u32)>>> = vec![None; g.nodes.len()];
    for id in 0..g.nodes.len() {
        let f = g.fn_of(id);
        if f.in_test || f.locks.is_empty() {
            continue;
        }
        // Walk body events in order, tracking which guards are live.
        let mut events: Vec<(u32, Result<usize, usize>)> = Vec::new();
        for (i, l) in f.locks.iter().enumerate() {
            events.push((l.order, Ok(i)));
        }
        for (i, c) in f.calls.iter().enumerate() {
            events.push((c.order, Err(i)));
        }
        events.sort_by_key(|&(o, _)| o);
        let path = g.path_of(id);
        let mut held: Vec<usize> = Vec::new(); // indexes into f.locks
        for (order, ev) in events {
            held.retain(|&li| f.locks[li].held_until >= order);
            match ev {
                Ok(li) => {
                    let b = &f.locks[li];
                    for &ai in &held {
                        let a = &f.locks[ai];
                        if a.receiver == b.receiver {
                            continue;
                        }
                        pairs
                            .entry((a.receiver.clone(), b.receiver.clone()))
                            .or_insert_with(|| {
                                (
                                    path.to_string(),
                                    a.line,
                                    path.to_string(),
                                    b.line,
                                    g.display(id),
                                )
                            });
                    }
                    held.push(li);
                }
                Err(ci) => {
                    if held.is_empty() {
                        continue;
                    }
                    let node = &g.nodes[id];
                    let targets = g.resolve(node.file, &node.crate_dir, &f.calls[ci]);
                    for &t in targets.iter().take(2) {
                        if t == id {
                            continue;
                        }
                        let callee_locks = lock_closure(g, t, &mut closures);
                        for (recv, (bf, bl)) in &callee_locks {
                            for &ai in &held {
                                let a = &f.locks[ai];
                                if &a.receiver == recv {
                                    continue;
                                }
                                pairs
                                    .entry((a.receiver.clone(), recv.clone()))
                                    .or_insert_with(|| {
                                        (
                                            path.to_string(),
                                            a.line,
                                            bf.clone(),
                                            *bl,
                                            g.display(id),
                                        )
                                    });
                            }
                        }
                    }
                }
            }
        }
    }
    let mut emitted = Vec::new();
    for ((a, b), w_ab) in &pairs {
        if a >= b {
            continue; // visit each unordered pair once, (a<b)
        }
        let Some(w_ba) = pairs.get(&(b.clone(), a.clone())) else {
            continue;
        };
        emitted.push(((a.clone(), b.clone()), w_ab.clone(), w_ba.clone()));
    }
    for ((a, b), w_ab, w_ba) in emitted {
        // Anchor the finding at the lexicographically first witness.
        let (anchor, other, first_order) = if (&w_ab.0, w_ab.1) <= (&w_ba.0, w_ba.1) {
            (&w_ab, &w_ba, true)
        } else {
            (&w_ba, &w_ab, false)
        };
        let (x, y) = if first_order { (&a, &b) } else { (&b, &a) };
        out.push(Finding {
            code: Code::C001,
            file: anchor.0.clone(),
            line: anchor.1,
            col: 1,
            message: format!(
                "lock `{x}` held while `{y}` is acquired in {} ({}:{}), but `{y}` held while \
                 `{x}` is acquired in {} ({}:{})",
                anchor.4, anchor.0, anchor.1, other.4, other.0, other.1
            ),
        });
    }
}

/// All lock receivers transitively acquired by `id` (depth-capped BFS
/// over the call graph), mapped to the first site each was seen at.
/// Memoized per node — the map is small and reused across callers.
fn lock_closure(
    g: &Graph,
    id: FnId,
    memo: &mut Vec<Option<BTreeMap<String, (String, u32)>>>,
) -> BTreeMap<String, (String, u32)> {
    if let Some(m) = &memo[id] {
        return m.clone();
    }
    let mut acc = BTreeMap::new();
    let seen = g.reach(&[id], 4);
    for (&t, _) in &seen {
        let f = g.fn_of(t);
        if f.in_test {
            continue;
        }
        for l in &f.locks {
            acc.entry(l.receiver.clone())
                .or_insert_with(|| (g.path_of(t).to_string(), l.line));
        }
    }
    memo[id] = Some(acc.clone());
    acc
}

/// Full workspace-rule fixture support: the engine calls
/// [`workspace_rules`]; everything else here is internal.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_region_mask;
    use crate::lexer::{lex, TokenKind};
    use crate::parser::parse_file;

    fn model(path: &str, src: &str) -> FileModel {
        let all = lex(src);
        let mask = test_region_mask(src, &all);
        let mut tokens = Vec::new();
        let mut in_test = Vec::new();
        for (t, m) in all.into_iter().zip(mask) {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                tokens.push(t);
                in_test.push(m);
            }
        }
        parse_file(path, src, &tokens, &in_test)
    }

    fn codes(findings: &[Finding]) -> Vec<Code> {
        findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn d006_catches_wall_clock_two_calls_below_a_pool_closure() {
        let models = vec![model(
            "crates/core/src/curve.rs",
            "fn build(pool: &Pool) {\n    pool.map_chunked(16, |i| step(i));\n}\n\
             fn step(i: usize) -> u64 { stamp() + i as u64 }\n\
             fn stamp() -> u64 { let t = Instant::now(); 0 }\n",
        )];
        let f = workspace_rules(&models);
        assert_eq!(codes(&f), vec![Code::D006]);
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("step"), "{}", f[0].message);
        assert!(f[0].message.contains("stamp"), "{}", f[0].message);
    }

    #[test]
    fn d006_ignores_facts_lexically_inside_the_closure() {
        // Depth-0-in-closure is D001's job; no D006.
        let models = vec![model(
            "crates/core/src/curve.rs",
            "fn build(pool: &Pool) {\n    pool.map_chunked(16, |i| Instant::now());\n}\n",
        )];
        assert!(workspace_rules(&models).is_empty());
    }

    #[test]
    fn d007_catches_reachable_float_reduction() {
        let models = vec![model(
            "crates/core/src/curve.rs",
            "fn build(pool: &Pool) {\n    pool.map(|i| reduce(i));\n}\n\
             fn reduce(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n",
        )];
        let f = workspace_rules(&models);
        assert_eq!(codes(&f), vec![Code::D007]);
    }

    #[test]
    fn r003_catches_panic_below_serve_hot_path_but_not_in_it() {
        let models = vec![model(
            "crates/serve/src/engine.rs",
            "fn ingest(line: &str) {\n    parse_row(line);\n}\n\
             fn parse_row(line: &str) -> u64 { line.parse().unwrap() }\n",
        )];
        let f = workspace_rules(&models);
        assert_eq!(codes(&f), vec![Code::R003]);
        assert_eq!(f[0].line, 1);
        // Depth-0 panic is R001's finding, not R003's.
        let depth0 = vec![model(
            "crates/serve/src/engine.rs",
            "fn ingest(line: &str) { line.parse::<u64>().unwrap(); }\n",
        )];
        assert!(workspace_rules(&depth0).is_empty());
    }

    #[test]
    fn p001_catches_alloc_on_charge_path_including_depth_zero() {
        let models = vec![model(
            "crates/hybridmem/src/system.rs",
            "impl System {\n    fn access(&mut self, k: u64) {\n        let label = format!(\"{k}\");\n    }\n}\n",
        )];
        let f = workspace_rules(&models);
        assert_eq!(codes(&f), vec![Code::P001]);
    }

    #[test]
    fn c001_flags_opposite_lock_orders() {
        let models = vec![model(
            "crates/serve/src/state.rs",
            "fn fwd(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\n\
             fn rev(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n}\n",
        )];
        let f = workspace_rules(&models);
        assert_eq!(codes(&f), vec![Code::C001]);
        assert!(f[0].message.contains("alpha"), "{}", f[0].message);
        assert!(f[0].message.contains("beta"));
    }

    #[test]
    fn c001_consistent_order_is_clean() {
        let models = vec![model(
            "crates/serve/src/state.rs",
            "fn one(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\n\
             fn two(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\n",
        )];
        assert!(workspace_rules(&models).is_empty());
    }

    #[test]
    fn test_region_facts_do_not_fire() {
        let models = vec![model(
            "crates/serve/src/engine.rs",
            "fn ingest(line: &str) { helper(line); }\nfn helper(_l: &str) {}\n\
             #[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n",
        )];
        assert!(workspace_rules(&models).is_empty());
    }
}
