//! A minimal hand-rolled Rust lexer — just enough token structure for
//! the line-and-token lints in [`crate::rules`].
//!
//! The workspace builds offline against vendored shims, so pulling in
//! `syn`/`proc-macro2` for a full parse is off the table. The lints we
//! enforce only need a faithful *token* view: identifiers, punctuation,
//! and — crucially — correct skipping of string/char literals and
//! comments so that `"Instant::now"` inside a doc string never trips
//! D001. The lexer is total: it never panics, on any input, and every
//! span it emits is in-bounds (property-tested in `tests/`).
//!
//! Limitations, by design: no macro expansion, no type information, and
//! raw identifiers (`r#type`) lex as plain identifiers. Lints built on
//! top are documented as heuristic.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `fn`, `HashMap`).
    Ident,
    /// Integer or float literal, including suffixed forms (`0.5f64`).
    Number,
    /// String literal: `"…"`, raw `r"…"`/`r#"…"#`, byte `b"…"`.
    Str,
    /// Character or byte-character literal (`'a'`, `b'\n'`). Lifetimes
    /// (`'static`) lex as [`TokenKind::Lifetime`], not `Char`.
    Char,
    /// Lifetime token (`'a` with no closing quote).
    Lifetime,
    /// A `//` line comment (payload includes the slashes).
    LineComment,
    /// A `/* … */` block comment (nesting handled).
    BlockComment,
    /// Any single punctuation byte (`.`, `:`, `{`, `!`, …).
    Punct,
}

/// One lexeme with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokenKind,
    /// Byte offset of the first byte, within the scanned text.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte within its line.
    pub col: u32,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Lex `src` into tokens. Whitespace is dropped; comments are kept as
/// tokens because the allow-directive parser reads them.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.bytes.get(self.pos + ahead).copied().unwrap_or(0)
    }

    /// Advance one byte, tracking line/col.
    fn bump(&mut self) {
        if self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            self.pos += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn emit(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        self.out.push(Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let (start, line, col) = (self.pos, self.line, self.col);
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.emit(TokenKind::LineComment, start, line, col);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.block_comment();
                    self.emit(TokenKind::BlockComment, start, line, col);
                }
                b'"' => {
                    self.string_literal();
                    self.emit(TokenKind::Str, start, line, col);
                }
                b'r' | b'b' => {
                    if self.raw_or_byte_string() {
                        self.emit(TokenKind::Str, start, line, col);
                    } else if b == b'b' && self.peek(1) == b'\'' {
                        self.bump(); // b
                        let kind = self.char_or_lifetime();
                        self.emit(kind, start, line, col);
                    } else {
                        self.ident();
                        self.emit(TokenKind::Ident, start, line, col);
                    }
                }
                b'\'' => {
                    let kind = self.char_or_lifetime();
                    self.emit(kind, start, line, col);
                }
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                    self.ident();
                    self.emit(TokenKind::Ident, start, line, col);
                }
                b'0'..=b'9' => {
                    self.number();
                    self.emit(TokenKind::Number, start, line, col);
                }
                0x80.. => {
                    // Non-ASCII (inside identifiers we don't care about,
                    // or stray bytes): consume the whole UTF-8 scalar so
                    // spans stay on char boundaries.
                    self.bump();
                    while self.pos < self.bytes.len() && (self.peek(0) & 0xC0) == 0x80 {
                        self.bump();
                    }
                    self.emit(TokenKind::Punct, start, line, col);
                }
                _ => {
                    self.bump();
                    self.emit(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    /// Identifier/keyword tail (the first byte is already known good).
    fn ident(&mut self) {
        while matches!(self.peek(0), b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9') {
            self.bump();
        }
    }

    /// `/* … */` with nesting; unterminated comments run to EOF.
    fn block_comment(&mut self) {
        self.bump_n(2);
        let mut depth = 1u32;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
    }

    /// `"…"` with escapes; unterminated strings run to EOF.
    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Try to lex `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` at the current
    /// position. Returns false (consuming nothing) if this is not a raw
    /// or byte string start.
    fn raw_or_byte_string(&mut self) -> bool {
        let mut ahead = 0;
        if self.peek(ahead) == b'b' {
            ahead += 1;
        }
        let raw = self.peek(ahead) == b'r';
        if raw {
            ahead += 1;
        }
        let mut hashes = 0usize;
        while raw && self.peek(ahead) == b'#' {
            hashes += 1;
            ahead += 1;
        }
        if self.peek(ahead) != b'"' || (!raw && hashes > 0) {
            return false;
        }
        if !raw {
            // b"…" — plain escaping rules.
            self.bump_n(ahead);
            self.string_literal();
            return true;
        }
        // r#*"…"#* — no escapes; closed by a quote followed by the same
        // number of hashes. Unterminated raw strings run to EOF.
        self.bump_n(ahead + 1);
        while self.pos < self.bytes.len() {
            if self.peek(0) == b'"' {
                let mut got = 0usize;
                while got < hashes && self.peek(1 + got) == b'#' {
                    got += 1;
                }
                if got == hashes {
                    self.bump_n(1 + hashes);
                    return true;
                }
            }
            self.bump();
        }
        true
    }

    /// Disambiguate `'a'` (char) from `'a` (lifetime). Called at the
    /// opening quote.
    fn char_or_lifetime(&mut self) -> TokenKind {
        // A char literal closes within a few bytes: 'x', '\n', '\u{…}'.
        // A lifetime never has a closing quote before a non-ident byte.
        let mut ahead = 1;
        if self.peek(ahead) == b'\\' {
            // Escaped char literal: scan to the closing quote.
            ahead += 2;
            while ahead < 16 && self.peek(ahead) != b'\'' && self.peek(ahead) != 0 {
                ahead += 1;
            }
            let n = ahead + usize::from(self.peek(ahead) == b'\'');
            self.bump_n(n);
            // The 16-byte scan cap can land inside a multi-byte scalar
            // on garbage input; spans must stay on char boundaries.
            while self.pos < self.bytes.len() && (self.peek(0) & 0xC0) == 0x80 {
                self.bump();
            }
            return TokenKind::Char;
        }
        // Unescaped: consume one UTF-8 scalar, then check for `'`.
        let first = self.peek(ahead);
        let scalar_len = match first {
            0 => 0, // EOF sentinel (a real NUL byte also takes the lifetime path)
            0x01..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        };
        ahead += scalar_len;
        if scalar_len > 0 && self.peek(ahead) == b'\'' {
            self.bump_n(ahead + 1);
            return TokenKind::Char;
        }
        // Lifetime: quote plus the identifier after it.
        self.bump();
        while matches!(self.peek(0), b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9') {
            self.bump();
        }
        TokenKind::Lifetime
    }

    /// Numeric literal, loosely: digits, `_`, `.` (not `..`), exponent,
    /// type suffix. Precision doesn't matter for the lints; termination
    /// and span correctness do.
    fn number(&mut self) {
        while matches!(
            self.peek(0),
            b'0'..=b'9' | b'_' | b'a'..=b'f' | b'A'..=b'F' | b'x' | b'o'
        ) {
            self.bump();
        }
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.bump();
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        // Exponent / suffix (e.g. `e9`, `f64`, `usize`).
        while matches!(self.peek(0), b'a'..=b'z' | b'0'..=b'9') {
            self.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = kinds("foo.unwrap()");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "foo"),
                (TokenKind::Punct, "."),
                (TokenKind::Ident, "unwrap"),
                (TokenKind::Punct, "("),
                (TokenKind::Punct, ")"),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let x = "Instant::now() . unwrap()";"#);
        assert!(toks.iter().all(|(_, t)| *t != "unwrap"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_and_hashes() {
        let src = r##"r#"contains "quotes" and unwrap()"# + x"##;
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks.last().unwrap().1, "x");
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("'a' 'static '\\n' &'a str");
        assert_eq!(toks[0].0, TokenKind::Char);
        assert_eq!(toks[1].0, TokenKind::Lifetime);
        assert_eq!(toks[2].0, TokenKind::Char);
    }

    #[test]
    fn comments_are_tokens_with_text() {
        let src = "x // mnemo-lint: allow(D001, \"why\")\n/* block */ y";
        let toks = kinds(src);
        assert_eq!(toks[1].0, TokenKind::LineComment);
        assert!(toks[1].1.contains("allow(D001"));
        assert_eq!(toks[2].0, TokenKind::BlockComment);
        assert_eq!(toks[3].1, "y");
    }

    #[test]
    fn nested_block_comments_terminate() {
        let toks = kinds("/* outer /* inner */ still */ after");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].1, "after");
    }

    #[test]
    fn line_and_col_are_one_based() {
        let src = "a\n  bb\n";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_everything_reaches_eof() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b\"x"] {
            let toks = lex(src);
            assert!(toks.iter().all(|t| t.end <= src.len()), "{src:?}");
        }
    }

    #[test]
    fn non_ascii_spans_stay_on_char_boundaries() {
        let src = "let α = \"β\"; // γ";
        for t in lex(src) {
            assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
        }
    }
}
