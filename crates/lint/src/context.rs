//! Marks the token ranges that live under `#[cfg(test)]` / `#[test]`
//! items, so rule code can skip them: the determinism and robustness
//! invariants bind production code, not tests.
//!
//! Heuristic, by design (no full parse): a test attribute marks the
//! item that follows it — everything up to and including the matching
//! close of the first `{` after the attribute. `#[cfg(not(test))]` and
//! `#[cfg_attr(test, …)]` do **not** mark a region.

use crate::lexer::{Token, TokenKind};

/// For each token, is it inside a test-gated item?
pub fn test_region_mask(src: &str, tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !is_punct(src, tokens, i, "#") || !is_punct(src, tokens, i + 1, "[") {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let attr_start = i + 2;
        let mut depth = 1u32;
        let mut j = attr_start;
        while j < tokens.len() && depth > 0 {
            match tokens[j].text(src) {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let attr_end = j; // one past `]`
        if !attribute_is_test(src, &tokens[attr_start..attr_end.saturating_sub(1)]) {
            i = attr_end;
            continue;
        }
        // Mark the attribute itself plus the following item. The item
        // body is the first `{ … }` group after the attribute; an item
        // without a body (e.g. `mod tests;`) ends at the `;`.
        let mut k = attr_end;
        while k < tokens.len() {
            let text = tokens[k].text(src);
            if text == "{" {
                let mut body = 1u32;
                k += 1;
                while k < tokens.len() && body > 0 {
                    match tokens[k].text(src) {
                        "{" => body += 1,
                        "}" => body -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                break;
            }
            if text == ";" {
                k += 1;
                break;
            }
            k += 1;
        }
        for m in mask.iter_mut().take(k.min(tokens.len())).skip(i) {
            *m = true;
        }
        i = k.max(attr_end);
    }
    mask
}

/// Does this attribute token sequence gate on `test`?
fn attribute_is_test(src: &str, attr: &[Token]) -> bool {
    let idents: Vec<&str> = attr
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text(src))
        .collect();
    match idents.as_slice() {
        // #[test]
        ["test"] => true,
        // #[cfg(test)]
        ["cfg", "test"] => true,
        // #[cfg(any(test, …))] / #[cfg(all(test, …))] — but never
        // #[cfg(not(test))] or #[cfg_attr(test, …)].
        ["cfg", rest @ ..] => rest.contains(&"test") && !rest.contains(&"not"),
        _ => false,
    }
}

fn is_punct(src: &str, tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text(src) == text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// The mask value covering the token whose text is `needle`.
    fn masked(src: &str, needle: &str) -> bool {
        let tokens = lex(src);
        let mask = test_region_mask(src, &tokens);
        let idx = tokens
            .iter()
            .position(|t| t.text(src) == needle)
            .unwrap_or_else(|| panic!("{needle} not found"));
        mask[idx]
    }

    #[test]
    fn cfg_test_mod_is_masked_code_before_is_not() {
        let src =
            "fn real() { work(); }\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(!masked(src, "work"));
        assert!(masked(src, "unwrap"));
    }

    #[test]
    fn test_attribute_masks_one_fn() {
        let src = "#[test]\nfn t() { a(); }\nfn prod() { b(); }\n";
        assert!(masked(src, "a"));
        assert!(!masked(src, "b"));
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn prod() { a(); }\n";
        assert!(!masked(src, "a"));
    }

    #[test]
    fn cfg_attr_test_is_not_masked() {
        let src = "#![cfg_attr(test, allow(clippy::unwrap_used))]\nfn prod() { a(); }\n";
        assert!(!masked(src, "a"));
    }

    #[test]
    fn nested_braces_stay_inside_the_region() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { if x { y() } }\n}\nfn after() { z(); }\n";
        assert!(masked(src, "y"));
        assert!(!masked(src, "z"));
    }

    #[test]
    fn stacked_attributes_still_find_the_body() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() { q(); } }\nfn after() { r(); }\n";
        assert!(masked(src, "q"));
        assert!(!masked(src, "r"));
    }

    #[test]
    fn bodyless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nmod tests;\nfn prod() { a(); }\n";
        assert!(!masked(src, "a"));
    }
}
