//! Rendering a [`Report`] for humans and for CI (JSON artifact).
//!
//! The JSON is hand-rolled (no serde in this crate) and fully
//! deterministic: findings come pre-sorted from the engine and keys are
//! emitted in a fixed order, so two runs over the same tree produce
//! byte-identical artifacts.

use crate::engine::Report;

/// Output format selector for the CLI layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// One finding per line, `error[CODE] file:line:col: message`.
    Human,
    /// The machine-readable CI artifact.
    Json,
    /// SARIF v2.1.0, for code-scanning UIs (see [`crate::sarif`]).
    Sarif,
}

impl Format {
    /// Parse a `--format` value.
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "human" => Some(Format::Human),
            "json" => Some(Format::Json),
            "sarif" => Some(Format::Sarif),
            _ => None,
        }
    }
}

/// Render the report in the requested format.
pub fn render(report: &Report, format: Format) -> String {
    match format {
        Format::Human => human(report),
        Format::Json => json(report),
        Format::Sarif => crate::sarif::sarif(report),
    }
}

fn human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}[{}] {}:{}:{}: {} — {}\n",
            f.code.severity().as_str(),
            f.code,
            f.file,
            f.line,
            f.col,
            f.message,
            f.code.explain()
        ));
    }
    out.push_str(&format!(
        "mnemo-lint: {} error(s), {} warning(s), {} allowed, {} file(s) scanned\n",
        report.errors(),
        report.warnings(),
        report.allowed,
        report.files_scanned
    ));
    out
}

fn json(report: &Report) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"allowed\": {},\n", report.allowed));
    out.push_str(&format!("  \"errors\": {},\n", report.errors()));
    out.push_str(&format!("  \"warnings\": {},\n", report.warnings()));
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"code\": \"{}\", \"severity\": \"{}\", \"file\": {}, \"line\": {}, \
             \"col\": {}, \"message\": {}, \"explain\": {}}}",
            f.code,
            f.code.severity().as_str(),
            escape(&f.file),
            f.line,
            f.col,
            escape(&f.message),
            escape(f.code.explain())
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// JSON string escaping (quotes, backslashes, control bytes). Shared
/// with the SARIF renderer.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::lint_source;

    #[test]
    fn human_output_carries_span_and_code() {
        let r = lint_source("crates/core/src/x.rs", "fn f() { x.unwrap(); }\n");
        let text = render(&r, Format::Human);
        assert!(
            text.contains("error[R001] crates/core/src/x.rs:1:12:"),
            "{text}"
        );
        assert!(text.contains("1 error(s)"), "{text}");
    }

    #[test]
    fn json_is_parseable_shape_and_escaped() {
        let r = lint_source(
            "crates/core/src/x.rs",
            "fn f() { x.expect(\"weird \\\"quote\\\"\"); }\n",
        );
        let text = render(&r, Format::Json);
        assert!(text.contains("\"version\": 1"), "{text}");
        assert!(text.contains("\"code\": \"R001\""), "{text}");
        assert!(text.contains("\"errors\": 1"), "{text}");
        // Balanced braces/brackets, double-quote count even.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn empty_report_renders_empty_array() {
        let r = lint_source("crates/core/src/x.rs", "fn f() {}\n");
        let text = render(&r, Format::Json);
        assert!(text.contains("\"findings\": []"), "{text}");
    }

    #[test]
    fn escape_handles_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn format_parses() {
        assert_eq!(Format::parse("json"), Some(Format::Json));
        assert_eq!(Format::parse("human"), Some(Format::Human));
        assert_eq!(Format::parse("sarif"), Some(Format::Sarif));
        assert_eq!(Format::parse("yaml"), None);
    }
}
