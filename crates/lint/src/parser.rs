//! A hand-rolled recursive-descent *item* parser over the total lexer:
//! just enough structure — `fn`/`impl`/`mod`/`trait`/`use` items with
//! spans, per-function call references, and per-function "facts"
//! (wall-clock reads, panics, float reductions, lock acquisitions,
//! heap allocations) — for the cross-crate reachability rules in
//! [`crate::graph`] and [`crate::reach`].
//!
//! Like the lexer it is total: any byte soup parses to *some*
//! [`FileModel`] without panicking, and every span stays in bounds
//! (property-tested in `tests/parser_props.rs`). And like the rules it
//! is heuristic by design: no macro expansion, no type inference, no
//! borrow structure — a faithful token-level view of who defines what
//! and who calls whom, nothing more. The documented limits:
//!
//! * method calls are recorded by name only; resolution (in
//!   [`crate::graph`]) over-approximates across every impl of the name;
//! * lock receivers are field/variable *names*, so two locks sharing a
//!   field name alias;
//! * nested `fn` items are parsed as their own functions and excluded
//!   from the enclosing body's facts.

use crate::lexer::{Token, TokenKind};

/// Everything the workspace analyzer needs to know about one file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileModel {
    /// Repo-relative path the file was parsed under.
    pub path: String,
    /// Every function item (free fns, methods, trait default methods,
    /// nested fns), in source order.
    pub fns: Vec<FnInfo>,
    /// Flattened `use` declarations: one entry per imported leaf.
    pub uses: Vec<UseDecl>,
    /// Call sites that schedule a closure on a `mnemo-par` pool.
    pub pool_sites: Vec<PoolSite>,
}

/// One `use` leaf: `use a::b::{c, d as e};` yields two decls,
/// `c -> [a,b,c]` and `e -> [a,b,d]`. Globs are recorded with leaf
/// `"*"` and ignored by resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// The name this import binds locally.
    pub leaf: String,
    /// The full path segments, crate first.
    pub segments: Vec<String>,
}

/// One function item.
#[derive(Debug, Clone, PartialEq)]
pub struct FnInfo {
    /// The function's name.
    pub name: String,
    /// The `impl`/`trait` type it is defined on, if any.
    pub impl_ty: Option<String>,
    /// Enclosing `mod` names, outermost first (file-local only).
    pub module: Vec<String>,
    /// 1-based line of the `fn` name token.
    pub line: u32,
    /// 1-based column of the `fn` name token.
    pub col: u32,
    /// Inside a `#[cfg(test)]`/`#[test]` region?
    pub in_test: bool,
    /// Direct facts observed lexically in the body.
    pub facts: Vec<FactHit>,
    /// Call references observed in the body, in order.
    pub calls: Vec<CallRef>,
    /// Lock acquisitions observed in the body, in order.
    pub locks: Vec<LockAcq>,
}

/// What a body-level fact is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FactKind {
    /// `Instant::now()` / `SystemTime` / `Utc::now()` / `Local::now()`.
    WallClock,
    /// Entropy-seeded randomness: `thread_rng`, `from_entropy`,
    /// `RandomState`.
    Entropy,
    /// Default-hasher `HashMap`/`HashSet`.
    DefaultHasher,
    /// `.sum::<f32|f64>()`, `.product::<f32|f64>()`, float-seeded
    /// `.fold(`.
    FloatReduction,
    /// `.unwrap()`, `.expect(`, `panic!(`.
    Panics,
    /// Heap allocation: `vec!`, `format!`, `Box::new`,
    /// `::with_capacity`, `.to_vec`/`.to_string`/`.to_owned`,
    /// `String::from`, `.collect(`.
    Alloc,
}

impl FactKind {
    /// Stable name used in the analysis cache.
    pub fn as_str(&self) -> &'static str {
        match self {
            FactKind::WallClock => "wall",
            FactKind::Entropy => "entropy",
            FactKind::DefaultHasher => "hasher",
            FactKind::FloatReduction => "float",
            FactKind::Panics => "panic",
            FactKind::Alloc => "alloc",
        }
    }

    /// Inverse of [`FactKind::as_str`].
    pub fn parse(s: &str) -> Option<FactKind> {
        Some(match s {
            "wall" => FactKind::WallClock,
            "entropy" => FactKind::Entropy,
            "hasher" => FactKind::DefaultHasher,
            "float" => FactKind::FloatReduction,
            "panic" => FactKind::Panics,
            "alloc" => FactKind::Alloc,
            _ => return None,
        })
    }
}

/// One observed fact with its location and matched text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactHit {
    /// The fact class.
    pub kind: FactKind,
    /// 1-based line.
    pub line: u32,
    /// What matched (e.g. `.unwrap()`).
    pub what: String,
}

/// One call reference inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallRef {
    /// Path segments; a method call has exactly one (the method name).
    pub segments: Vec<String>,
    /// `.name(` method call (vs. a path/bare call).
    pub method: bool,
    /// 1-based line of the name token.
    pub line: u32,
    /// Body-order index, shared with [`LockAcq::order`] so the C001
    /// rule can interleave calls and acquisitions.
    pub order: u32,
}

/// One lexical lock acquisition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockAcq {
    /// The receiver name (`self.state.lock()` → `state`).
    pub receiver: String,
    /// 1-based line.
    pub line: u32,
    /// Body-order index (see [`CallRef::order`]).
    pub order: u32,
    /// Last body-order index at which the guard is (lexically) still
    /// held: the close of the block the lock was acquired in, on the
    /// guard-lives-to-end-of-scope approximation. `u32::MAX` = held to
    /// the end of the function.
    pub held_until: u32,
}

/// One pool-scheduling call site: the closure handed to
/// `pool.map/map_slice/map_chunked/run_jobs/join` plus what it does.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSite {
    /// The entry-point method name (`map`, `run_jobs`, …).
    pub method: String,
    /// 1-based line of the call.
    pub line: u32,
    /// 1-based column of the call.
    pub col: u32,
    /// Inside a test region?
    pub in_test: bool,
    /// Facts lexically inside the call's argument span.
    pub facts: Vec<FactHit>,
    /// Call references lexically inside the argument span.
    pub calls: Vec<CallRef>,
}

/// Pool methods that take a closure and fan it out across workers
/// (shared with the D004 token rule).
pub const PAR_ENTRY_POINTS: [&str; 5] = ["map", "map_slice", "map_chunked", "run_jobs", "join"];

/// Parse one file. `tokens` are *code* tokens (comments stripped) and
/// `in_test` is the parallel test-region mask — the same views the
/// token rules consume.
pub fn parse_file(path: &str, src: &str, tokens: &[Token], in_test: &[bool]) -> FileModel {
    let mut p = Parser {
        src,
        tokens,
        in_test,
        model: FileModel {
            path: path.to_string(),
            ..FileModel::default()
        },
        order: 0,
    };
    let end = tokens.len();
    let mut module = Vec::new();
    p.parse_items(0, end, &mut module, None, 0);
    p.model
}

struct Parser<'a> {
    src: &'a str,
    tokens: &'a [Token],
    in_test: &'a [bool],
    model: FileModel,
    /// Monotone body-event counter (calls + locks), file-wide.
    order: u32,
}

/// Module/impl recursion ceiling: beyond this the parser flattens
/// instead of recursing, keeping totality on adversarial nesting.
const MAX_NEST: u32 = 64;

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &'a str {
        self.tokens.get(i).map_or("", |t| t.text(self.src))
    }

    fn kind(&self, i: usize) -> Option<TokenKind> {
        self.tokens.get(i).map(|t| t.kind)
    }

    fn is_ident_at(&self, i: usize) -> bool {
        self.kind(i) == Some(TokenKind::Ident)
    }

    fn is_punct(&self, i: usize, s: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text(self.src) == s)
    }

    fn is_path_sep(&self, i: usize) -> bool {
        self.is_punct(i, ":") && self.is_punct(i + 1, ":")
    }

    fn masked(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    fn line(&self, i: usize) -> u32 {
        self.tokens.get(i).map_or(1, |t| t.line)
    }

    /// Index one past the matching close for the opener at `i`
    /// (clamped to `end`). Openers/closers are single-byte puncts.
    fn skip_balanced(&self, i: usize, open: &str, close: &str, end: usize) -> usize {
        let mut depth = 1u32;
        let mut j = i + 1;
        while j < end && depth > 0 {
            if self.is_punct(j, open) {
                depth += 1;
            } else if self.is_punct(j, close) {
                depth -= 1;
            }
            j += 1;
        }
        j
    }

    /// Item-level scan of `[i, end)`. `module` is the enclosing mod
    /// path, `impl_ty` the enclosing impl/trait type.
    fn parse_items(
        &mut self,
        mut i: usize,
        end: usize,
        module: &mut Vec<String>,
        impl_ty: Option<&str>,
        depth: u32,
    ) {
        while i < end {
            if self.is_punct(i, "#") && self.is_punct(i + 1, "[") {
                i = self.skip_balanced(i + 1, "[", "]", end);
                continue;
            }
            if !self.is_ident_at(i) {
                // Stray braces at item level (e.g. inside a macro
                // invocation body): step over whole groups so `fn`
                // tokens inside `macro_rules!` arms are still seen.
                i += 1;
                continue;
            }
            match self.text(i) {
                "fn" if self.is_ident_at(i + 1) => {
                    i = self.parse_fn(i, end, module, impl_ty, depth);
                }
                "mod" if self.is_ident_at(i + 1) && depth < MAX_NEST => {
                    let name = self.text(i + 1).to_string();
                    // `mod name;` (no body) or `mod name { … }`.
                    let mut j = i + 2;
                    while j < end && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
                        j += 1;
                    }
                    if self.is_punct(j, "{") {
                        let close = self.skip_balanced(j, "{", "}", end);
                        module.push(name);
                        self.parse_items(j + 1, close.saturating_sub(1), module, None, depth + 1);
                        module.pop();
                        i = close;
                    } else {
                        i = j + 1;
                    }
                }
                "impl" if depth < MAX_NEST => {
                    i = self.parse_impl(i, end, module, depth);
                }
                "trait" if self.is_ident_at(i + 1) && depth < MAX_NEST => {
                    let name = self.text(i + 1).to_string();
                    let mut j = i + 2;
                    while j < end && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
                        j += 1;
                    }
                    if self.is_punct(j, "{") {
                        let close = self.skip_balanced(j, "{", "}", end);
                        self.parse_items(j + 1, close.saturating_sub(1), module, Some(&name), depth + 1);
                        i = close;
                    } else {
                        i = j + 1;
                    }
                }
                "use" => {
                    i = self.parse_use(i + 1, end);
                }
                _ => i += 1,
            }
        }
    }

    /// Parse `impl … { items }`, extracting the self type: the type
    /// after `for` when present (`impl Trait for Type`), else the
    /// first type after the optional generic parameters.
    fn parse_impl(&mut self, i: usize, end: usize, module: &mut Vec<String>, depth: u32) -> usize {
        let mut j = i + 1;
        // Skip `<…>` generic parameters (a `<` directly after `impl`).
        if self.is_punct(j, "<") {
            j = self.skip_angle(j, end);
        }
        // Scan the header up to `{` or `;`, remembering the last ident
        // before a `<`/`{` both before and after a potential `for`.
        let mut ty_before_for: Option<String> = None;
        let mut ty_after_for: Option<String> = None;
        let mut after_for = false;
        while j < end && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
            if self.is_ident_at(j) {
                let t = self.text(j);
                if t == "for" {
                    after_for = true;
                } else if t == "where" {
                    break;
                } else {
                    let slot = if after_for {
                        &mut ty_after_for
                    } else {
                        &mut ty_before_for
                    };
                    *slot = Some(t.to_string());
                }
                j += 1;
            } else if self.is_punct(j, "<") {
                j = self.skip_angle(j, end);
            } else {
                j += 1;
            }
        }
        // Advance to the body brace (skipping a `where` clause).
        while j < end && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
            j += 1;
        }
        let ty = ty_after_for.or(ty_before_for);
        if self.is_punct(j, "{") {
            let close = self.skip_balanced(j, "{", "}", end);
            self.parse_items(j + 1, close.saturating_sub(1), module, ty.as_deref(), depth + 1);
            close
        } else {
            j + 1
        }
    }

    /// Skip `<…>` starting at the `<` token. `->` never confuses the
    /// count because its `>` is preceded by `-` and we only ever enter
    /// from a real `<`; shift operators lex as two single `>`/`<`
    /// puncts and are balanced in type position.
    fn skip_angle(&self, i: usize, end: usize) -> usize {
        let mut depth = 1i64;
        let mut j = i + 1;
        while j < end && depth > 0 {
            if self.is_punct(j, "<") {
                depth += 1;
            } else if self.is_punct(j, ">") && !self.is_punct(j.wrapping_sub(1), "-") {
                depth -= 1;
            } else if self.is_punct(j, "(") {
                // Parenthesized types/exprs inside generics.
                j = self.skip_balanced(j, "(", ")", end);
                continue;
            }
            j += 1;
        }
        j
    }

    /// Parse a `use` tree starting after the `use` keyword. Returns the
    /// index one past the terminating `;`.
    fn parse_use(&mut self, i: usize, end: usize) -> usize {
        let mut prefix: Vec<String> = Vec::new();
        let j = self.parse_use_tree(i, end, &mut prefix);
        // Consume through `;` if present.
        let mut k = j;
        while k < end && !self.is_punct(k, ";") {
            k += 1;
        }
        k + 1
    }

    /// One use-tree level: `a::b::leaf`, `a::{x, y}`, `a as b`, `*`.
    /// Appends resolved decls to the model; returns index after tree.
    fn parse_use_tree(&mut self, mut i: usize, end: usize, prefix: &mut Vec<String>) -> usize {
        let depth0 = prefix.len();
        loop {
            if i >= end || self.is_punct(i, ";") {
                break;
            }
            if self.is_ident_at(i) {
                let seg = self.text(i).to_string();
                if seg == "as" && self.is_ident_at(i + 1) {
                    // Alias: leaf name is the alias, path is the prefix.
                    let alias = self.text(i + 1).to_string();
                    self.push_use(alias, prefix.clone());
                    prefix.truncate(depth0);
                    i += 2;
                    // Whatever follows (`,`/`}`/`;`) is the caller's.
                    break;
                }
                prefix.push(seg);
                i += 1;
                if self.is_path_sep(i) {
                    i += 2;
                    continue;
                }
                // Leaf reached (unless an `as` follows, handled above).
                if self.is_ident_at(i) && self.text(i) == "as" {
                    continue;
                }
                let leaf = prefix.last().cloned().unwrap_or_default();
                self.push_use(leaf, prefix.clone());
                prefix.truncate(depth0);
                break;
            }
            if self.is_punct(i, "{") {
                // Group: parse comma-separated subtrees, each seeing
                // the path built *up to the group* as its prefix.
                let close = self.skip_balanced(i, "{", "}", end);
                let keep = prefix.len();
                let mut k = i + 1;
                while k < close.saturating_sub(1) {
                    if self.is_punct(k, ",") {
                        k += 1;
                        continue;
                    }
                    let before = k;
                    k = self.parse_use_tree(k, close.saturating_sub(1), prefix);
                    prefix.truncate(keep);
                    if k <= before {
                        k = before + 1;
                    }
                }
                i = close;
                break;
            }
            if self.is_punct(i, "*") {
                self.push_use("*".to_string(), prefix.clone());
                i += 1;
                break;
            }
            i += 1;
        }
        prefix.truncate(depth0);
        i
    }

    fn push_use(&mut self, leaf: String, segments: Vec<String>) {
        if segments.is_empty() || leaf.is_empty() {
            return;
        }
        self.model.uses.push(UseDecl { leaf, segments });
    }

    /// Parse `fn name …` at `i` (the `fn` token). Records the item and
    /// scans the body. Returns the index after the item.
    fn parse_fn(
        &mut self,
        i: usize,
        end: usize,
        module: &mut Vec<String>,
        impl_ty: Option<&str>,
        depth: u32,
    ) -> usize {
        let name_idx = i + 1;
        let name_tok = &self.tokens[name_idx];
        let info = FnInfo {
            name: name_tok.text(self.src).to_string(),
            impl_ty: impl_ty.map(str::to_string),
            module: module.clone(),
            line: name_tok.line,
            col: name_tok.col,
            in_test: self.masked(name_idx),
            facts: Vec::new(),
            calls: Vec::new(),
            locks: Vec::new(),
        };
        // Find the body `{` (or `;` for a bodyless trait fn).
        let mut j = name_idx + 1;
        while j < end && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
            j += 1;
        }
        if !self.is_punct(j, "{") {
            self.model.fns.push(info);
            return j + 1;
        }
        let close = self.skip_balanced(j, "{", "}", end);
        let fn_slot = self.model.fns.len();
        self.model.fns.push(info);
        self.scan_body(j + 1, close.saturating_sub(1), fn_slot, module, impl_ty, depth);
        close
    }

    /// Scan a function body `[i, end)` for facts, calls, locks, pool
    /// sites, and nested items.
    fn scan_body(
        &mut self,
        mut i: usize,
        end: usize,
        fn_slot: usize,
        module: &mut Vec<String>,
        impl_ty: Option<&str>,
        depth: u32,
    ) {
        // Pool-site argument spans currently open: (end_index, site_slot).
        let mut open_sites: Vec<(usize, usize)> = Vec::new();
        // Open `{}` blocks: the lock indexes acquired in each, so a
        // closing brace can stamp their guards' lexical lifetime.
        let mut blocks: Vec<Vec<usize>> = Vec::new();
        while i < end {
            open_sites.retain(|&(site_end, _)| i < site_end);
            if self.is_punct(i, "#") && self.is_punct(i + 1, "[") {
                i = self.skip_balanced(i + 1, "[", "]", end);
                continue;
            }
            if self.is_punct(i, "{") {
                blocks.push(Vec::new());
                i += 1;
                continue;
            }
            if self.is_punct(i, "}") {
                if let Some(closed) = blocks.pop() {
                    for li in closed {
                        self.model.fns[fn_slot].locks[li].held_until = self.order;
                    }
                }
                i += 1;
                continue;
            }
            if !self.is_ident_at(i) {
                i += 1;
                continue;
            }
            let t = self.text(i);
            // Nested items: parse as their own functions, skip range.
            if t == "fn" && self.is_ident_at(i + 1) && depth < MAX_NEST {
                i = self.parse_fn(i, end, module, impl_ty, depth + 1);
                continue;
            }
            if self.masked(i) {
                i += 1;
                continue;
            }
            // Pool-scheduling call site?
            if PAR_ENTRY_POINTS.contains(&t)
                && self.is_punct(i.wrapping_sub(1), ".")
                && self.is_punct(i + 1, "(")
                && self.receiver_is_pool(i)
            {
                let arg_end = self.skip_balanced(i + 1, "(", ")", end);
                let site_slot = self.model.pool_sites.len();
                self.model.pool_sites.push(PoolSite {
                    method: t.to_string(),
                    line: self.tokens[i].line,
                    col: self.tokens[i].col,
                    in_test: self.masked(i),
                    facts: Vec::new(),
                    calls: Vec::new(),
                });
                open_sites.push((arg_end, site_slot));
                i += 2; // step into the argument span
                continue;
            }
            let site_slots: Vec<usize> = open_sites.iter().map(|&(_, s)| s).collect();
            // Facts.
            for hit in self.facts_at(i) {
                for &s in &site_slots {
                    self.model.pool_sites[s].facts.push(hit.clone());
                }
                self.model.fns[fn_slot].facts.push(hit);
            }
            // Locks (also consume the serve-style free `lock(&x)` form
            // so it does not double as a call).
            if let Some((acq, next)) = self.lock_at(i, end) {
                let li = self.model.fns[fn_slot].locks.len();
                self.model.fns[fn_slot].locks.push(acq);
                if let Some(block) = blocks.last_mut() {
                    block.push(li);
                }
                i = next;
                continue;
            }
            // Calls.
            if let Some(call) = self.call_at(i) {
                for &s in &site_slots {
                    self.model.pool_sites[s].calls.push(call.clone());
                }
                self.model.fns[fn_slot].calls.push(call);
            }
            i += 1;
        }
    }

    /// Shared with the D004 token rule: is the receiver of the call at
    /// `i` pool-ish (the `Pool` type or an ident containing "pool"
    /// within the previous few tokens)?
    fn receiver_is_pool(&self, i: usize) -> bool {
        (i.saturating_sub(8)..i).any(|j| {
            let t = self.text(j);
            self.kind(j) == Some(TokenKind::Ident)
                && (t == "Pool" || t.to_lowercase().contains("pool"))
        })
    }

    /// All facts whose *first* token is at `i`.
    fn facts_at(&self, i: usize) -> Vec<FactHit> {
        let mut out = Vec::new();
        let t = self.text(i);
        let line = self.line(i);
        let hit = |kind: FactKind, what: &str| FactHit {
            kind,
            line,
            what: what.to_string(),
        };
        match t {
            "Instant" | "Utc" | "Local"
                if self.is_path_sep(i + 1) && self.text(i + 3) == "now" =>
            {
                out.push(hit(FactKind::WallClock, &format!("{t}::now()")));
            }
            "SystemTime" => out.push(hit(FactKind::WallClock, "SystemTime")),
            "thread_rng" | "from_entropy" => {
                out.push(hit(FactKind::Entropy, t));
            }
            "RandomState" => out.push(hit(FactKind::Entropy, "RandomState")),
            "HashMap" | "HashSet" => out.push(hit(FactKind::DefaultHasher, t)),
            "unwrap" | "expect"
                if (self.is_punct(i.wrapping_sub(1), ".")
                    || (i >= 2 && self.is_path_sep(i - 2)))
                    && self.is_punct(i + 1, "(") =>
            {
                out.push(hit(FactKind::Panics, &format!(".{t}()")));
            }
            "panic" if self.is_punct(i + 1, "!") => {
                out.push(hit(FactKind::Panics, "panic!"));
            }
            "sum" | "product"
                if self.is_punct(i.wrapping_sub(1), ".")
                    && self.is_path_sep(i + 1)
                    && self.is_punct(i + 3, "<")
                    && matches!(self.text(i + 4), "f32" | "f64") =>
            {
                out.push(hit(
                    FactKind::FloatReduction,
                    &format!(".{t}::<{}>()", self.text(i + 4)),
                ));
            }
            "fold"
                if self.is_punct(i.wrapping_sub(1), ".")
                    && self.is_punct(i + 1, "(")
                    && self.is_float_literal(i + 2) =>
            {
                out.push(hit(FactKind::FloatReduction, ".fold(<float>, …)"));
            }
            "vec" if self.is_punct(i + 1, "!") => out.push(hit(FactKind::Alloc, "vec!")),
            "format" if self.is_punct(i + 1, "!") => out.push(hit(FactKind::Alloc, "format!")),
            "with_capacity" if i >= 2 && self.is_path_sep(i - 2) => {
                out.push(hit(FactKind::Alloc, "::with_capacity"));
            }
            "new" | "from"
                if i >= 3
                    && self.is_path_sep(i - 2)
                    && matches!(self.text(i - 3), "Box" | "String")
                    && !(t == "new" && self.text(i - 3) == "String") =>
            {
                // `String::new` does not allocate; `Box::new` and
                // `String::from` do.
                out.push(hit(FactKind::Alloc, &format!("{}::{t}", self.text(i - 3))));
            }
            "to_vec" | "to_string" | "to_owned" | "collect"
                if self.is_punct(i.wrapping_sub(1), ".") =>
            {
                out.push(hit(FactKind::Alloc, &format!(".{t}()")));
            }
            _ => {}
        }
        out
    }

    fn is_float_literal(&self, i: usize) -> bool {
        let t = self.text(i);
        self.kind(i) == Some(TokenKind::Number)
            && (t.contains('.') || t.ends_with("f32") || t.ends_with("f64"))
    }

    /// A lock acquisition starting at `i`: `.lock()`, empty-arg
    /// `.read()`/`.write()`, or the free-helper form `lock(&recv)`.
    /// Returns the acquisition and the index to resume scanning at.
    fn lock_at(&mut self, i: usize, end: usize) -> Option<(LockAcq, usize)> {
        let t = self.text(i);
        let line = self.line(i);
        if matches!(t, "lock" | "read" | "write")
            && self.is_punct(i.wrapping_sub(1), ".")
            && self.is_punct(i + 1, "(")
            && self.is_punct(i + 2, ")")
        {
            let receiver = self.receiver_before(i.wrapping_sub(1))?;
            self.order += 1;
            return Some((
                LockAcq {
                    receiver,
                    line,
                    order: self.order,
                    held_until: u32::MAX,
                },
                i + 3,
            ));
        }
        if t == "lock"
            && !self.is_punct(i.wrapping_sub(1), ".")
            && !(i >= 2 && self.is_path_sep(i - 2))
            && self.is_punct(i + 1, "(")
            && !self.is_punct(i + 2, ")")
        {
            // serve-style `lock(&self.inner)`: receiver is the last
            // ident in the argument span outside index brackets
            // (`lock(&tenants[i])` → `tenants`, not `i`).
            let close = self.skip_balanced(i + 1, "(", ")", end);
            let mut receiver = None;
            let mut j = close.saturating_sub(1);
            while j > i + 1 {
                j -= 1;
                if self.is_punct(j, "]") {
                    let mut depth = 1u32;
                    while j > i + 1 && depth > 0 {
                        j -= 1;
                        if self.is_punct(j, "]") {
                            depth += 1;
                        } else if self.is_punct(j, "[") {
                            depth -= 1;
                        }
                    }
                    continue;
                }
                if self.is_ident_at(j) && self.text(j) != "self" {
                    receiver = Some(self.text(j).to_string());
                    break;
                }
            }
            self.order += 1;
            return Some((
                LockAcq {
                    receiver: receiver?,
                    line,
                    order: self.order,
                    held_until: u32::MAX,
                },
                close,
            ));
        }
        None
    }

    /// The receiver name of a method call whose `.` is at `dot`:
    /// the nearest preceding non-`self` ident, skipping index
    /// expressions (`self.shards[s].lock()` → `shards`). Stdio locks
    /// (`stdin`/`stdout`/`stderr`) are not locks of interest.
    fn receiver_before(&self, dot: usize) -> Option<String> {
        let mut j = dot;
        let mut steps = 0;
        while j > 0 && steps < 16 {
            j -= 1;
            steps += 1;
            if self.is_punct(j, "]") {
                // Walk back over the index expression.
                let mut depth = 1u32;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if self.is_punct(j, "]") {
                        depth += 1;
                    } else if self.is_punct(j, "[") {
                        depth -= 1;
                    }
                }
                continue;
            }
            if self.is_ident_at(j) {
                let t = self.text(j);
                if t == "self" {
                    continue;
                }
                if matches!(t, "stdin" | "stdout" | "stderr") {
                    return None;
                }
                return Some(t.to_string());
            }
            if !self.is_punct(j, ".") && !self.is_punct(j, ")") && !self.is_punct(j, "(") {
                return None;
            }
        }
        None
    }

    /// A call reference at `i`: `name(`, `a::b::name(`, or `.name(`.
    fn call_at(&mut self, i: usize) -> Option<CallRef> {
        if !self.is_punct(i + 1, "(") {
            return None;
        }
        let name = self.text(i);
        if is_keyword(name) {
            return None;
        }
        let line = self.line(i);
        if self.is_punct(i.wrapping_sub(1), ".") {
            self.order += 1;
            return Some(CallRef {
                segments: vec![name.to_string()],
                method: true,
                line,
                order: self.order,
            });
        }
        // Macro invocation (`name!(`) — handled as facts, not calls.
        if self.is_punct(i.wrapping_sub(1), "!") {
            return None;
        }
        // Walk back over a `::`-path.
        let mut segments = vec![name.to_string()];
        let mut j = i;
        while j >= 2 && self.is_path_sep(j - 2) && j >= 3 && self.is_ident_at(j - 3) {
            segments.insert(0, self.text(j - 3).to_string());
            j -= 3;
        }
        self.order += 1;
        Some(CallRef {
            segments,
            method: false,
            line,
            order: self.order,
        })
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "match"
            | "for"
            | "loop"
            | "return"
            | "fn"
            | "let"
            | "mut"
            | "as"
            | "in"
            | "move"
            | "ref"
            | "else"
            | "break"
            | "continue"
            | "where"
            | "impl"
            | "dyn"
            | "use"
            | "pub"
            | "crate"
            | "super"
            | "mod"
            | "unsafe"
            | "await"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_region_mask;
    use crate::lexer::lex;

    fn parse(path: &str, src: &str) -> FileModel {
        let all = lex(src);
        let mask = test_region_mask(src, &all);
        let mut tokens = Vec::new();
        let mut in_test = Vec::new();
        for (t, m) in all.into_iter().zip(mask) {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                tokens.push(t);
                in_test.push(m);
            }
        }
        parse_file(path, src, &tokens, &in_test)
    }

    #[test]
    fn free_fns_and_methods_with_modules() {
        let src = "fn top() {}\nmod inner {\n    impl Widget {\n        fn method(&self) {}\n    }\n}\n";
        let m = parse("crates/core/src/x.rs", src);
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[0].name, "top");
        assert!(m.fns[0].impl_ty.is_none());
        assert_eq!(m.fns[1].name, "method");
        assert_eq!(m.fns[1].impl_ty.as_deref(), Some("Widget"));
        assert_eq!(m.fns[1].module, vec!["inner".to_string()]);
        assert_eq!(m.fns[1].line, 4);
    }

    #[test]
    fn impl_trait_for_type_takes_the_type() {
        let src = "impl<T> Display for Wrapper<T> {\n    fn fmt(&self) {}\n}\n";
        let m = parse("crates/core/src/x.rs", src);
        assert_eq!(m.fns[0].impl_ty.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn use_groups_aliases_and_globs() {
        let src = "use a::b::{c, d as e, f::g};\nuse h::*;\nuse std::fmt;\n";
        let m = parse("crates/core/src/x.rs", src);
        let decls: Vec<(String, Vec<String>)> = m
            .uses
            .iter()
            .map(|u| (u.leaf.clone(), u.segments.clone()))
            .collect();
        assert!(decls.contains(&("c".into(), vec!["a".into(), "b".into(), "c".into()])));
        assert!(decls.contains(&("e".into(), vec!["a".into(), "b".into(), "d".into()])));
        assert!(decls.contains(&("g".into(), vec!["a".into(), "b".into(), "f".into(), "g".into()])));
        assert!(decls.contains(&("*".into(), vec!["h".into()])));
        assert!(decls.contains(&("fmt".into(), vec!["std".into(), "fmt".into()])));
    }

    #[test]
    fn calls_and_facts_in_bodies() {
        let src = "fn f() {\n    helper();\n    a::b::g(1);\n    x.method_call(2);\n    let t = Instant::now();\n    y.unwrap();\n}\n";
        let m = parse("crates/core/src/x.rs", src);
        let f = &m.fns[0];
        let names: Vec<String> = f.calls.iter().map(|c| c.segments.join("::")).collect();
        assert!(names.contains(&"helper".to_string()));
        assert!(names.contains(&"a::b::g".to_string()));
        assert!(names.contains(&"method_call".to_string()));
        assert!(f.calls.iter().any(|c| c.method && c.segments == ["method_call"]));
        let kinds: Vec<FactKind> = f.facts.iter().map(|h| h.kind).collect();
        assert!(kinds.contains(&FactKind::WallClock));
        assert!(kinds.contains(&FactKind::Panics));
    }

    #[test]
    fn pool_sites_capture_their_argument_span_only() {
        let src = "fn f(pool: &Pool) {\n    before();\n    pool.run_jobs(8, |i| inner(i));\n    after();\n}\n";
        let m = parse("crates/core/src/x.rs", src);
        assert_eq!(m.pool_sites.len(), 1);
        let site = &m.pool_sites[0];
        assert_eq!(site.method, "run_jobs");
        let names: Vec<String> = site.calls.iter().map(|c| c.segments.join("::")).collect();
        assert_eq!(names, vec!["inner".to_string()]);
        // The enclosing fn still sees all three calls.
        assert_eq!(m.fns[0].calls.len(), 3);
    }

    #[test]
    fn locks_record_receivers_in_order() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n    lock(&self.gamma);\n    stdout().lock();\n    file.read(&mut buf);\n}\n";
        let m = parse("crates/core/src/x.rs", src);
        let receivers: Vec<&str> = m.fns[0].locks.iter().map(|l| l.receiver.as_str()).collect();
        assert_eq!(receivers, vec!["alpha", "beta", "gamma"]);
        assert!(m.fns[0].locks[0].order < m.fns[0].locks[1].order);
    }

    #[test]
    fn indexed_receiver_resolves_to_the_container() {
        let src = "fn f(&self) { self.shards[s].lock(); }\n";
        let m = parse("crates/core/src/x.rs", src);
        assert_eq!(m.fns[0].locks[0].receiver, "shards");
    }

    #[test]
    fn nested_fns_split_out_of_the_outer_body() {
        let src = "fn outer() {\n    fn inner() { x.unwrap(); }\n    clean();\n}\n";
        let m = parse("crates/core/src/x.rs", src);
        assert_eq!(m.fns.len(), 2);
        let outer = m.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = m.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.facts.is_empty(), "{:?}", outer.facts);
        assert_eq!(inner.facts.len(), 1);
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn prod() {}\n";
        let m = parse("crates/core/src/x.rs", src);
        assert!(m.fns.iter().find(|f| f.name == "t").unwrap().in_test);
        assert!(!m.fns.iter().find(|f| f.name == "prod").unwrap().in_test);
    }

    #[test]
    fn alloc_facts_match_the_documented_set() {
        let src = "fn f() {\n    let v = vec![1];\n    let s = format!(\"x\");\n    let b = Box::new(1);\n    let w = Vec::with_capacity(4);\n    let t = x.to_string();\n    let n = String::new();\n    let c = xs.iter().collect();\n}\n";
        let m = parse("crates/core/src/x.rs", src);
        let whats: Vec<&str> = m.fns[0].facts.iter().map(|h| h.what.as_str()).collect();
        assert!(whats.contains(&"vec!"));
        assert!(whats.contains(&"format!"));
        assert!(whats.contains(&"Box::new"));
        assert!(whats.contains(&"::with_capacity"));
        assert!(whats.contains(&".to_string()"));
        assert!(whats.contains(&".collect()"));
        assert!(!whats.contains(&"String::new"), "{whats:?}");
    }

    #[test]
    fn bodyless_trait_fns_parse_without_bodies() {
        let src = "trait T {\n    fn required(&self);\n    fn provided(&self) { helper(); }\n}\n";
        let m = parse("crates/core/src/x.rs", src);
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[0].calls.len(), 0);
        assert_eq!(m.fns[1].calls.len(), 1);
        assert_eq!(m.fns[1].impl_ty.as_deref(), Some("T"));
    }
}
