//! The lint rules themselves.
//!
//! Each rule is a pass over the *code* token stream (comments removed,
//! test-gated regions masked out by [`crate::context`]). Rules are
//! token-pattern heuristics, not type-checked analyses — the precise
//! patterns each one matches are documented per rule and pinned by the
//! fixture corpus in `tests/fixtures/lint/`.

use crate::diag::{Code, Finding};
use crate::lexer::{Token, TokenKind};

/// Everything a rule needs to know about one file.
pub struct FileContext<'a> {
    /// Repo-relative path, forward slashes (`crates/kvsim/src/engine.rs`).
    pub path: &'a str,
    /// File contents.
    pub src: &'a str,
    /// Code tokens only (comments stripped).
    pub tokens: &'a [Token],
    /// Parallel to `tokens`: inside a `#[cfg(test)]`/`#[test]` item?
    pub in_test: &'a [bool],
}

impl<'a> FileContext<'a> {
    fn text(&self, i: usize) -> &'a str {
        self.tokens.get(i).map_or("", |t| t.text(self.src))
    }

    fn is_ident(&self, i: usize, name: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text(self.src) == name)
    }

    fn is_punct(&self, i: usize, text: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text(self.src) == text)
    }

    /// `::` is two punct tokens in this lexer.
    fn is_path_sep(&self, i: usize) -> bool {
        self.is_punct(i, ":") && self.is_punct(i + 1, ":")
    }

    fn finding(&self, code: Code, i: usize, matched: &str) -> Finding {
        let t = &self.tokens[i];
        Finding {
            code,
            file: self.path.to_string(),
            line: t.line,
            col: t.col,
            message: format!("`{matched}`"),
        }
    }
}

/// File-level policy: where each rule applies.
struct Policy {
    /// D001 exemption: the one module allowed to read the wall clock.
    wall_clock_ok: bool,
    /// D003/D004 exemption: `mnemo-par` itself.
    in_par: bool,
    /// R002 scope: only `hybridmem` is audited for bare casts.
    in_hybridmem: bool,
    /// S001 exemption: binary entry points.
    is_entry_point: bool,
    /// D005 scope: bench-crate code outside the perf harness must time
    /// through `SweepTimer` spans, never a raw `Instant`.
    in_bench_timed: bool,
}

impl Policy {
    fn for_path(path: &str) -> Policy {
        Policy {
            wall_clock_ok: path == "crates/telemetry/src/recorder.rs",
            in_par: path.starts_with("crates/par/"),
            in_hybridmem: path.starts_with("crates/hybridmem/"),
            is_entry_point: path.ends_with("/main.rs") || path.contains("/src/bin/"),
            in_bench_timed: path.starts_with("crates/bench/")
                && !path.starts_with("crates/bench/src/perf/"),
        }
    }
}

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Pool methods that take a closure and fan it out across workers.
const PAR_ENTRY_POINTS: [&str; 5] = ["map", "map_slice", "map_chunked", "run_jobs", "join"];

/// Run every rule over one file.
pub fn apply_rules(ctx: &FileContext) -> Vec<Finding> {
    let policy = Policy::for_path(ctx.path);
    let mut out = Vec::new();
    for i in 0..ctx.tokens.len() {
        if ctx.in_test[i] || ctx.tokens[i].kind != TokenKind::Ident {
            continue;
        }
        d001_wall_clock(ctx, &policy, i, &mut out);
        d002_default_hasher(ctx, i, &mut out);
        d003_thread_spawn(ctx, &policy, i, &mut out);
        d004_par_float_reduction(ctx, &policy, i, &mut out);
        d005_bench_adhoc_timing(ctx, &policy, i, &mut out);
        r001_unwrap_expect_panic(ctx, i, &mut out);
        r002_bare_cast(ctx, &policy, i, &mut out);
        s001_process_exit(ctx, &policy, i, &mut out);
    }
    out
}

/// D001 — wall-clock reads: `Instant::now()`, any `SystemTime` use,
/// `Utc::now()` / `Local::now()` (chrono-style).
fn d001_wall_clock(ctx: &FileContext, policy: &Policy, i: usize, out: &mut Vec<Finding>) {
    if policy.wall_clock_ok {
        return;
    }
    let t = ctx.text(i);
    if (t == "Instant" || t == "Utc" || t == "Local")
        && ctx.is_path_sep(i + 1)
        && ctx.is_ident(i + 3, "now")
    {
        out.push(ctx.finding(Code::D001, i, &format!("{t}::now()")));
    } else if t == "SystemTime" {
        out.push(ctx.finding(Code::D001, i, "SystemTime"));
    }
}

/// D002 — any mention of `HashMap`/`HashSet` outside tests. Determinism
/// paths must use `BTreeMap`/`BTreeSet` or the fixed-seed aliases in
/// `hybridmem::det` (whose own definition carries the one allow).
fn d002_default_hasher(ctx: &FileContext, i: usize, out: &mut Vec<Finding>) {
    let t = ctx.text(i);
    if t == "HashMap" || t == "HashSet" {
        out.push(ctx.finding(Code::D002, i, t));
    }
}

/// D003 — thread creation outside `mnemo-par`: `thread::spawn`,
/// `crossbeam::scope` / `crossbeam::thread`, and `.spawn(` method calls
/// (scoped-thread handles).
fn d003_thread_spawn(ctx: &FileContext, policy: &Policy, i: usize, out: &mut Vec<Finding>) {
    if policy.in_par {
        return;
    }
    let t = ctx.text(i);
    let after_sep = |name: &str| i >= 3 && ctx.is_ident(i - 3, name) && ctx.is_path_sep(i - 2);
    if t == "spawn" && (after_sep("thread") || ctx.is_punct(i.wrapping_sub(1), ".")) {
        out.push(ctx.finding(Code::D003, i, "spawn"));
    } else if (t == "scope" || t == "thread") && after_sep("crossbeam") {
        out.push(ctx.finding(Code::D003, i, &format!("crossbeam::{t}")));
    }
}

/// D004 — float reductions inside a pool closure. Matched pattern: a
/// method call `<pool-ish receiver>.map/map_slice/map_chunked/run_jobs/
/// join( … )` whose argument span contains `.sum::<f32|f64>()`,
/// `.product::<f32|f64>()`, or `.fold(<float literal>, …)`. The
/// receiver is "pool-ish" when one of the few tokens before the call is
/// the `Pool` type or an identifier containing "pool".
fn d004_par_float_reduction(ctx: &FileContext, policy: &Policy, i: usize, out: &mut Vec<Finding>) {
    if policy.in_par {
        return;
    }
    if !PAR_ENTRY_POINTS.contains(&ctx.text(i))
        || !ctx.is_punct(i.wrapping_sub(1), ".")
        || !ctx.is_punct(i + 1, "(")
    {
        return;
    }
    let receiver_is_pool = (i.saturating_sub(8)..i).any(|j| {
        let t = ctx.text(j);
        ctx.tokens[j].kind == TokenKind::Ident && (t == "Pool" || t.to_lowercase().contains("pool"))
    });
    if !receiver_is_pool {
        return;
    }
    // Walk the call's argument span, tracking paren depth.
    let mut depth = 1u32;
    let mut j = i + 2;
    while j < ctx.tokens.len() && depth > 0 {
        match ctx.text(j) {
            "(" => depth += 1,
            ")" => depth -= 1,
            "sum" | "product" if ctx.is_punct(j.wrapping_sub(1), ".") => {
                if let Some(fty) = turbofish_float(ctx, j) {
                    out.push(ctx.finding(
                        Code::D004,
                        j,
                        &format!(".{}::<{fty}>() in a pool closure", ctx.text(j)),
                    ));
                }
            }
            "fold" if ctx.is_punct(j.wrapping_sub(1), ".") && ctx.is_punct(j + 1, "(") => {
                let seed = ctx.text(j + 2);
                let is_float_literal = ctx
                    .tokens
                    .get(j + 2)
                    .is_some_and(|t| t.kind == TokenKind::Number)
                    && (seed.contains('.') || seed.ends_with("f32") || seed.ends_with("f64"));
                if is_float_literal {
                    out.push(ctx.finding(Code::D004, j, ".fold(<float>, …) in a pool closure"));
                }
            }
            _ => {}
        }
        j += 1;
    }
}

/// `sum::<f64>` — returns the float type name if present.
fn turbofish_float<'a>(ctx: &FileContext<'a>, i: usize) -> Option<&'a str> {
    if ctx.is_path_sep(i + 1) && ctx.is_punct(i + 3, "<") {
        let ty = ctx.text(i + 4);
        if ty == "f32" || ty == "f64" {
            return Some(ty);
        }
    }
    None
}

/// D005 — any mention of `Instant` inside `crates/bench` outside the
/// perf harness (`crates/bench/src/perf/`). Stricter than D001, which
/// only fires on `Instant::now()`: in the bench crate even holding an
/// `Instant` means a stage is timed outside the `SweepTimer` span
/// pipeline, so its wall clock never reaches the `timing-*` artifacts
/// or `BENCH_CORE.json` and the perf trajectory under-reports it.
fn d005_bench_adhoc_timing(ctx: &FileContext, policy: &Policy, i: usize, out: &mut Vec<Finding>) {
    if policy.in_bench_timed && ctx.text(i) == "Instant" {
        out.push(ctx.finding(Code::D005, i, "Instant"));
    }
}

/// R001 — `.unwrap()` / `.expect(` / `Option::unwrap` path form /
/// `panic!(`. `std::panic::catch_unwind` and friends (no `!`) are fine.
fn r001_unwrap_expect_panic(ctx: &FileContext, i: usize, out: &mut Vec<Finding>) {
    let t = ctx.text(i);
    if (t == "unwrap" || t == "expect")
        && (ctx.is_punct(i.wrapping_sub(1), ".") || (i >= 2 && ctx.is_path_sep(i - 2)))
        && ctx.is_punct(i + 1, "(")
    {
        out.push(ctx.finding(Code::R001, i, &format!(".{t}()")));
    } else if t == "panic" && ctx.is_punct(i + 1, "!") {
        out.push(ctx.finding(Code::R001, i, "panic!"));
    }
}

/// R002 — bare `as` integer casts in `hybridmem` (`x as u64`,
/// `len as usize`, …). Float targets (`as f64`) are out of scope: they
/// widen for statistics and are covered by clippy's cast lints.
fn r002_bare_cast(ctx: &FileContext, policy: &Policy, i: usize, out: &mut Vec<Finding>) {
    if !policy.in_hybridmem || ctx.text(i) != "as" {
        return;
    }
    let target = ctx.text(i + 1);
    if ctx
        .tokens
        .get(i + 1)
        .is_some_and(|t| t.kind == TokenKind::Ident)
        && INT_TYPES.contains(&target)
    {
        out.push(ctx.finding(Code::R002, i, &format!("as {target}")));
    }
}

/// S001 — `process::exit` outside `main.rs` / `src/bin/`.
fn s001_process_exit(ctx: &FileContext, policy: &Policy, i: usize, out: &mut Vec<Finding>) {
    if policy.is_entry_point {
        return;
    }
    if ctx.text(i) == "exit" && i >= 3 && ctx.is_ident(i - 3, "process") && ctx.is_path_sep(i - 2) {
        out.push(ctx.finding(Code::S001, i, "process::exit"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_region_mask;
    use crate::lexer::lex;

    fn lint_at(path: &str, src: &str) -> Vec<(Code, u32)> {
        let all = lex(src);
        let mask = test_region_mask(src, &all);
        let mut tokens = Vec::new();
        let mut in_test = Vec::new();
        for (t, m) in all.into_iter().zip(mask) {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                tokens.push(t);
                in_test.push(m);
            }
        }
        let ctx = FileContext {
            path,
            src,
            tokens: &tokens,
            in_test: &in_test,
        };
        apply_rules(&ctx)
            .into_iter()
            .map(|f| (f.code, f.line))
            .collect()
    }

    #[test]
    fn d001_fires_outside_the_wall_module_only() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(
            lint_at("crates/kvsim/src/engine.rs", src),
            vec![(Code::D001, 1)]
        );
        assert_eq!(lint_at("crates/telemetry/src/recorder.rs", src), vec![]);
    }

    #[test]
    fn d001_matches_systemtime_but_not_a_use_of_instant() {
        assert_eq!(
            lint_at("crates/core/src/x.rs", "use std::time::SystemTime;\n"),
            vec![(Code::D001, 1)]
        );
        assert_eq!(
            lint_at(
                "crates/core/src/x.rs",
                "use std::time::Instant;\nfn f(t: Instant) {}\n"
            ),
            vec![]
        );
    }

    #[test]
    fn d005_flags_bare_instant_only_in_bench_outside_perf() {
        // In crates/bench even a bare mention is ad-hoc timing…
        assert_eq!(
            lint_at(
                "crates/bench/src/bin/fig9.rs",
                "use std::time::Instant;\nfn f(t: Instant) {}\n"
            ),
            vec![(Code::D005, 1), (Code::D005, 2)]
        );
        // …but the perf harness itself and other crates are out of scope
        // (D001 still covers actual `::now()` calls everywhere).
        assert_eq!(
            lint_at("crates/bench/src/perf/mod.rs", "use std::time::Instant;\n"),
            vec![]
        );
        assert_eq!(
            lint_at("crates/core/src/x.rs", "use std::time::Instant;\n"),
            vec![]
        );
        // `Instant::now()` in bench fires both D001 and D005.
        let codes: Vec<Code> = lint_at(
            "crates/bench/src/lib.rs",
            "fn f() { let _t = std::time::Instant::now(); }\n",
        )
        .into_iter()
        .map(|(c, _)| c)
        .collect();
        assert!(codes.contains(&Code::D001), "{codes:?}");
        assert!(codes.contains(&Code::D005), "{codes:?}");
    }

    #[test]
    fn d002_flags_both_map_and_set() {
        let src = "use std::collections::HashMap;\nfn f() { let s: HashSet<u8> = x(); }\n";
        assert_eq!(
            lint_at("crates/core/src/x.rs", src),
            vec![(Code::D002, 1), (Code::D002, 2)]
        );
    }

    #[test]
    fn d003_spawn_and_crossbeam_outside_par() {
        let src = "fn f() { std::thread::spawn(|| {}); crossbeam::scope(|s| {}); }\n";
        assert_eq!(
            lint_at("crates/kvsim/src/x.rs", src),
            vec![(Code::D003, 1), (Code::D003, 1)]
        );
        assert_eq!(lint_at("crates/par/src/lib.rs", src), vec![]);
    }

    #[test]
    fn d004_catches_float_reductions_in_pool_closures() {
        let hit = "fn f(pool: &Pool) { pool.run_jobs(8, |i| xs[i].iter().sum::<f64>()); }\n";
        assert_eq!(lint_at("crates/core/src/x.rs", hit), vec![(Code::D004, 1)]);
        let fold = "fn f() { Pool::current().map(n, |i| v.iter().fold(0.0, |a, b| a + b)); }\n";
        assert_eq!(lint_at("crates/core/src/x.rs", fold), vec![(Code::D004, 1)]);
        // Integer reductions and non-pool iterators stay clean.
        let int = "fn f(pool: &Pool) { pool.map(n, |i| xs[i].iter().sum::<u64>()); }\n";
        assert_eq!(lint_at("crates/core/src/x.rs", int), vec![]);
        let iter = "fn f() { let s: f64 = rows.iter().map(|r| r.x).sum::<f64>(); }\n";
        assert_eq!(lint_at("crates/core/src/x.rs", iter), vec![]);
    }

    #[test]
    fn r001_unwrap_expect_panic_but_not_panic_module() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"boom\"); }\n";
        assert_eq!(
            lint_at("crates/core/src/x.rs", src),
            vec![(Code::R001, 1), (Code::R001, 1), (Code::R001, 1)]
        );
        assert_eq!(
            lint_at(
                "crates/core/src/x.rs",
                "fn f() { panic::resume_unwind(p); }\n"
            ),
            vec![]
        );
        assert_eq!(
            lint_at("crates/core/src/x.rs", "fn f() { x.unwrap_or(0); }\n"),
            vec![]
        );
    }

    #[test]
    fn r001_skips_test_regions() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n";
        assert_eq!(lint_at("crates/core/src/x.rs", src), vec![]);
    }

    #[test]
    fn r002_only_in_hybridmem_and_only_int_targets() {
        let src = "fn f(x: u64) -> usize { let y = x as usize; let z = x as f64; y }\n";
        assert_eq!(
            lint_at("crates/hybridmem/src/stats.rs", src),
            vec![(Code::R002, 1)]
        );
        assert_eq!(lint_at("crates/core/src/x.rs", src), vec![]);
    }

    #[test]
    fn s001_exempts_entry_points() {
        let src = "fn f() { std::process::exit(2); }\n";
        assert_eq!(
            lint_at("crates/core/src/lib.rs", src),
            vec![(Code::S001, 1)]
        );
        assert_eq!(lint_at("crates/cli/src/main.rs", src), vec![]);
        assert_eq!(lint_at("crates/bench/src/bin/fig1.rs", src), vec![]);
    }
}
