//! The standalone `mnemo-lint` binary — what the `lint-invariants` CI
//! job runs. Thin: argument handling plus exit-code policy; all logic
//! lives in the library so it is unit- and fixture-testable.
//!
//! ```text
//! mnemo-lint [--root DIR] [--format human|json|sarif]
//!            [--deny-warnings] [--cache-dir DIR] [--explain CODE]
//! ```
//!
//! Exit codes: 0 clean, 1 findings (errors, or warnings under
//! `--deny-warnings`), 2 usage/IO error.

use mnemo_lint::{explain_code, lint_tree_cached, render, Format};
use std::path::PathBuf;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok((output, failed)) => {
            print!("{output}");
            if failed {
                std::process::exit(1);
            }
        }
        Err(msg) => {
            eprintln!("mnemo-lint: {msg}");
            std::process::exit(2);
        }
    }
}

const USAGE: &str = "usage: mnemo-lint [--root DIR] [--format human|json|sarif] \
                     [--deny-warnings] [--cache-dir DIR] [--explain CODE]\n";

/// Returns the rendered report and whether the run should fail.
fn run(argv: &[String]) -> Result<(String, bool), String> {
    let mut root = PathBuf::from(".");
    let mut format = Format::Human;
    let mut deny_warnings = false;
    let mut cache_dir: Option<PathBuf> = None;
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(
                    iter.next()
                        .ok_or_else(|| "--root needs a directory".to_string())?,
                );
            }
            "--format" => {
                let v = iter
                    .next()
                    .ok_or_else(|| "--format needs human|json|sarif".to_string())?;
                format = Format::parse(v).ok_or_else(|| format!("unknown format '{v}'"))?;
            }
            "--deny-warnings" => deny_warnings = true,
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(
                    iter.next()
                        .ok_or_else(|| "--cache-dir needs a directory".to_string())?,
                ));
            }
            "--explain" => {
                let v = iter
                    .next()
                    .ok_or_else(|| "--explain needs a lint code (e.g. D006)".to_string())?;
                return Ok((explain_code(v)?, false));
            }
            "--help" | "-h" => {
                return Ok((USAGE.to_string(), false));
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let report = lint_tree_cached(&root, cache_dir.as_deref()).map_err(|e| e.to_string())?;
    let failed = report.is_failure(deny_warnings);
    Ok((render(&report, format), failed))
}
