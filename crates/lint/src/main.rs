//! The standalone `mnemo-lint` binary — what the `lint-invariants` CI
//! job runs. Thin: argument handling plus exit-code policy; all logic
//! lives in the library so it is unit- and fixture-testable.
//!
//! ```text
//! mnemo-lint [--root DIR] [--format human|json] [--deny-warnings]
//! ```
//!
//! Exit codes: 0 clean, 1 findings (errors, or warnings under
//! `--deny-warnings`), 2 usage/IO error.

use mnemo_lint::{lint_tree, render, Format};
use std::path::PathBuf;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok((output, failed)) => {
            print!("{output}");
            if failed {
                std::process::exit(1);
            }
        }
        Err(msg) => {
            eprintln!("mnemo-lint: {msg}");
            std::process::exit(2);
        }
    }
}

/// Returns the rendered report and whether the run should fail.
fn run(argv: &[String]) -> Result<(String, bool), String> {
    let mut root = PathBuf::from(".");
    let mut format = Format::Human;
    let mut deny_warnings = false;
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(
                    iter.next()
                        .ok_or_else(|| "--root needs a directory".to_string())?,
                );
            }
            "--format" => {
                let v = iter
                    .next()
                    .ok_or_else(|| "--format needs human|json".to_string())?;
                format = Format::parse(v).ok_or_else(|| format!("unknown format '{v}'"))?;
            }
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => {
                return Ok((
                    "usage: mnemo-lint [--root DIR] [--format human|json] [--deny-warnings]\n"
                        .to_string(),
                    false,
                ));
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let report = lint_tree(&root).map_err(|e| e.to_string())?;
    let failed = report.is_failure(deny_warnings);
    Ok((render(&report, format), failed))
}
