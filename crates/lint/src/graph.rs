//! Workspace symbol table + cross-crate call graph.
//!
//! Takes the per-file [`crate::parser::FileModel`]s and resolves their
//! call references into edges between function nodes, using:
//!
//! * the file's `use` declarations (leaf name → full path),
//! * crate paths (`mnemo_par::…`, `crate::…`, `hybridmem::…`) mapped to
//!   crate directories under `crates/`,
//! * `Type::method` qualification matched against `impl` blocks, and
//! * same-file / same-crate scope for bare calls.
//!
//! Resolution is deliberately an *over*-approximation where Rust's
//! name resolution needs types we don't have: an unqualified method
//! call `.advise(…)` links to every `fn advise` defined in an `impl`
//! anywhere in the workspace. To keep that tractable, method names
//! from the std prelude/iterator vocabulary ([`METHOD_SKIP`]) never
//! resolve unqualified — `xs.map(f)` must not link to `Pool::map`.
//! Unknown paths (`std::…`, vendored externals) resolve to nothing.
//!
//! Everything is index-based and iteration-ordered off sorted inputs,
//! so edge lists — and every reachability walk over them — are
//! deterministic.

use crate::parser::{CallRef, FileModel, FnInfo};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Index of a function node in [`Graph::nodes`].
pub type FnId = usize;

/// One function node: a `(file, fn)` coordinate plus its crate.
#[derive(Debug, Clone)]
pub struct Node {
    /// Index into the model slice the graph was built from.
    pub file: usize,
    /// Index into that file's `fns`.
    pub idx: usize,
    /// Crate directory under `crates/` (e.g. `serve`), or `""`.
    pub crate_dir: String,
}

/// The resolved workspace call graph over a slice of file models.
pub struct Graph<'m> {
    /// The file models the graph indexes into.
    pub models: &'m [FileModel],
    /// Flat function nodes, in (file, fn) order.
    pub nodes: Vec<Node>,
    /// Sorted, deduplicated adjacency: `edges[f]` = callees of `f`.
    pub edges: Vec<Vec<FnId>>,
    /// Per file, per pool site: the resolved roots of the site's calls.
    pub site_roots: Vec<Vec<Vec<FnId>>>,
    by_method: BTreeMap<String, Vec<FnId>>,
    by_crate_fn: BTreeMap<(String, String), Vec<FnId>>,
    by_type_method: BTreeMap<(String, String), Vec<FnId>>,
    crate_dirs: BTreeSet<String>,
}

/// Method names that never resolve unqualified: std-prelude, iterator,
/// collection, string, and numeric vocabulary whose receivers are
/// almost never workspace types. A workspace method that shares one of
/// these names is still reachable through `Type::name(…)` or a path
/// call — and through pool-site roots, which resolve before this list
/// applies.
pub const METHOD_SKIP: [&str; 97] = [
    "abs", "all", "and_then", "any", "as_bytes", "as_mut", "as_ref", "as_str", "binary_search",
    "bytes", "ceil", "chain", "chars", "checked_add", "checked_mul", "checked_sub", "chunks",
    "clear", "clone", "cloned", "cmp", "collect", "contains", "contains_key", "copied", "count",
    "drain", "entry", "enumerate", "eq", "exp", "extend", "filter", "filter_map", "find",
    "first", "flat_map", "flatten", "floor", "flush", "fmt", "fold", "for_each", "get",
    "get_mut", "hash", "insert", "into_iter", "is_empty", "is_err", "is_none", "is_ok",
    "is_some", "iter", "iter_mut", "join", "keys", "last", "len", "lines", "ln", "lock", "map",
    "max", "min", "next", "ok", "parse", "partial_cmp", "position", "pow", "powf", "powi",
    "product", "push", "read", "remove", "resize", "retain", "rev", "reverse", "round", "skip",
    "sort", "splice", "split", "sqrt", "starts_with", "step_by", "sum", "take", "trim",
    "truncate", "values", "windows", "write", "zip",
];

/// Prefix variants the skip list covers via `starts_with` checks —
/// `sort_by`, `unwrap_or_else`, `to_le_bytes`, `saturating_sub`, … all
/// share these stems.
const METHOD_SKIP_PREFIXES: [&str; 12] = [
    "sort_", "unwrap", "expect", "to_", "from_", "max_by", "min_by", "saturating_",
    "wrapping_", "split_", "strip_", "ends_",
];

/// Should an unqualified method call of this name resolve at all?
pub fn method_resolvable(name: &str) -> bool {
    !METHOD_SKIP.contains(&name) && !METHOD_SKIP_PREFIXES.iter().any(|p| name.starts_with(p))
}

impl<'m> Graph<'m> {
    /// Build the graph. `models` must be sorted by path (the engine
    /// lints files in sorted order, so this holds by construction).
    pub fn build(models: &'m [FileModel]) -> Graph<'m> {
        let mut nodes = Vec::new();
        let mut by_method: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut by_crate_fn: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        let mut by_type_method: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        let mut crate_dirs = BTreeSet::new();
        for (fi, fm) in models.iter().enumerate() {
            let dir = crate_dir_of(&fm.path).to_string();
            if !dir.is_empty() {
                crate_dirs.insert(dir.clone());
            }
            for (xi, f) in fm.fns.iter().enumerate() {
                let id = nodes.len();
                nodes.push(Node {
                    file: fi,
                    idx: xi,
                    crate_dir: dir.clone(),
                });
                if f.impl_ty.is_some() {
                    by_method.entry(f.name.clone()).or_default().push(id);
                    by_type_method
                        .entry((f.impl_ty.clone().unwrap_or_default(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
                by_crate_fn
                    .entry((dir.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
            }
        }
        let mut g = Graph {
            models,
            nodes,
            edges: Vec::new(),
            site_roots: Vec::new(),
            by_method,
            by_crate_fn,
            by_type_method,
            crate_dirs,
        };
        let mut edges = vec![Vec::new(); g.nodes.len()];
        for id in 0..g.nodes.len() {
            let node = g.nodes[id].clone();
            let f = g.fn_of(id);
            let mut out = BTreeSet::new();
            for call in &f.calls {
                for t in g.resolve(node.file, &node.crate_dir, call) {
                    if t != id {
                        out.insert(t);
                    }
                }
            }
            edges[id] = out.into_iter().collect();
        }
        g.edges = edges;
        let mut site_roots = Vec::with_capacity(models.len());
        for (fi, fm) in models.iter().enumerate() {
            let dir = crate_dir_of(&fm.path).to_string();
            let per_site: Vec<Vec<FnId>> = fm
                .pool_sites
                .iter()
                .map(|site| {
                    let mut roots = BTreeSet::new();
                    for call in &site.calls {
                        roots.extend(g.resolve(fi, &dir, call));
                    }
                    roots.into_iter().collect()
                })
                .collect();
            site_roots.push(per_site);
        }
        g.site_roots = site_roots;
        g
    }

    /// The parsed function behind a node.
    pub fn fn_of(&self, id: FnId) -> &'m FnInfo {
        let n = &self.nodes[id];
        &self.models[n.file].fns[n.idx]
    }

    /// The path of the file a node lives in.
    pub fn path_of(&self, id: FnId) -> &'m str {
        &self.models[self.nodes[id].file].path
    }

    /// Human-readable node name: `Type::name` or `crate/name`.
    pub fn display(&self, id: FnId) -> String {
        let f = self.fn_of(id);
        match &f.impl_ty {
            Some(t) => format!("{t}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// Resolve one call reference from `file` (in `crate_dir`).
    pub fn resolve(&self, file: usize, crate_dir: &str, call: &CallRef) -> Vec<FnId> {
        if call.method {
            let name = &call.segments[0];
            if !method_resolvable(name) {
                return Vec::new();
            }
            let ids = self.by_method.get(name).cloned().unwrap_or_default();
            // Receiver types are usually local: when the caller's own
            // crate defines the method, resolve to those impls only —
            // `self.stats.record(…)` in hybridmem must not link to
            // every `record` in the workspace.
            let same_crate: Vec<FnId> = ids
                .iter()
                .copied()
                .filter(|&id| self.nodes[id].crate_dir == crate_dir)
                .collect();
            return if same_crate.is_empty() { ids } else { same_crate };
        }
        // Expand the leading segment through the file's use map.
        let mut segs: Vec<&str> = call.segments.iter().map(String::as_str).collect();
        let expanded: Vec<String>;
        if let Some(u) = self.models[file]
            .uses
            .iter()
            .find(|u| u.leaf == segs[0] && u.leaf != "*")
        {
            expanded = u
                .segments
                .iter()
                .cloned()
                .chain(call.segments[1..].iter().cloned())
                .collect();
            segs = expanded.iter().map(String::as_str).collect();
        }
        let name = *segs.last().unwrap_or(&"");
        if name.is_empty() {
            return Vec::new();
        }
        if segs.len() == 1 {
            // Bare call: same file first, then same-crate free fns.
            let local: Vec<FnId> = (0..self.nodes.len())
                .filter(|&id| self.nodes[id].file == file && self.fn_of(id).name == name)
                .collect();
            if !local.is_empty() {
                return local;
            }
            return self
                .by_crate_fn
                .get(&(crate_dir.to_string(), name.to_string()))
                .map(|ids| {
                    ids.iter()
                        .copied()
                        .filter(|&id| self.fn_of(id).impl_ty.is_none())
                        .collect()
                })
                .unwrap_or_default();
        }
        let head = segs[0];
        // Crate-qualified?
        let target_crate = match head {
            "crate" | "self" | "super" => Some(crate_dir.to_string()),
            _ => self.lib_to_dir(head),
        };
        if let Some(dir) = target_crate {
            let ids = self
                .by_crate_fn
                .get(&(dir, name.to_string()))
                .cloned()
                .unwrap_or_default();
            // `…::Type::method` narrows to that impl; `…::module::fn`
            // keeps every match in the crate.
            let qual = segs[segs.len() - 2];
            if segs.len() >= 3 && starts_upper(qual) {
                return ids
                    .into_iter()
                    .filter(|&id| self.fn_of(id).impl_ty.as_deref() == Some(qual))
                    .collect();
            }
            return ids;
        }
        // `Type::method` with a workspace type: same crate, then global.
        if starts_upper(head) && segs.len() == 2 {
            if let Some(ids) = self.by_type_method.get(&(head.to_string(), name.to_string())) {
                let same_crate: Vec<FnId> = ids
                    .iter()
                    .copied()
                    .filter(|&id| self.nodes[id].crate_dir == crate_dir)
                    .collect();
                return if same_crate.is_empty() {
                    ids.clone()
                } else {
                    same_crate
                };
            }
        }
        // Unknown head (std, vendored externals): no edge.
        Vec::new()
    }

    /// Map a lib name segment (`mnemo_par`, `hybridmem`, `mnemo`) to a
    /// crate directory present in this workspace.
    fn lib_to_dir(&self, seg: &str) -> Option<String> {
        if self.crate_dirs.contains(seg) {
            return Some(seg.to_string());
        }
        if seg == "mnemo" && self.crate_dirs.contains("core") {
            return Some("core".to_string());
        }
        if let Some(rest) = seg.strip_prefix("mnemo_") {
            if self.crate_dirs.contains(rest) {
                return Some(rest.to_string());
            }
        }
        None
    }

    /// Breadth-first reachability from `roots` (depth 0), capped at
    /// `max_depth`. Returns each visited node's depth and BFS parent
    /// (roots have no parent). Deterministic: roots are visited in
    /// order, adjacency lists are sorted.
    pub fn reach(&self, roots: &[FnId], max_depth: u32) -> BTreeMap<FnId, (u32, Option<FnId>)> {
        let mut seen: BTreeMap<FnId, (u32, Option<FnId>)> = BTreeMap::new();
        let mut queue = VecDeque::new();
        for &r in roots {
            if !seen.contains_key(&r) {
                seen.insert(r, (0, None));
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            let (d, _) = seen[&id];
            if d >= max_depth {
                continue;
            }
            for &t in &self.edges[id] {
                if !seen.contains_key(&t) {
                    seen.insert(t, (d + 1, Some(id)));
                    queue.push_back(t);
                }
            }
        }
        seen
    }

    /// Reconstruct the BFS path root→…→`id` as display names.
    pub fn path_to(&self, seen: &BTreeMap<FnId, (u32, Option<FnId>)>, id: FnId) -> Vec<String> {
        let mut chain = Vec::new();
        let mut cur = Some(id);
        let mut hops = 0;
        while let Some(c) = cur {
            chain.push(self.display(c));
            cur = seen.get(&c).and_then(|&(_, p)| p);
            hops += 1;
            if hops > 64 {
                break;
            }
        }
        chain.reverse();
        chain
    }
}

/// The crate directory a repo-relative path belongs to
/// (`crates/serve/src/engine.rs` → `serve`), or `""`.
pub fn crate_dir_of(path: &str) -> &str {
    let mut it = path.split('/');
    if it.next() == Some("crates") {
        it.next().unwrap_or("")
    } else {
        ""
    }
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_region_mask;
    use crate::lexer::{lex, TokenKind};
    use crate::parser::parse_file;

    fn model(path: &str, src: &str) -> FileModel {
        let all = lex(src);
        let mask = test_region_mask(src, &all);
        let mut tokens = Vec::new();
        let mut in_test = Vec::new();
        for (t, m) in all.into_iter().zip(mask) {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                tokens.push(t);
                in_test.push(m);
            }
        }
        parse_file(path, src, &tokens, &in_test)
    }

    fn id_of(g: &Graph, name: &str) -> FnId {
        (0..g.nodes.len())
            .find(|&id| g.fn_of(id).name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    /// Two synthetic crates: `alpha` calls into `beta` by use-path,
    /// crate path, and Type::method.
    fn two_crate_models() -> Vec<FileModel> {
        let alpha = model(
            "crates/alpha/src/lib.rs",
            "use beta::helper;\nuse beta::util::shared as sh;\n\
             fn a1() { helper(); }\n\
             fn a2() { beta::deep(); }\n\
             fn a3() { sh(); }\n\
             fn a4() { beta::Gadget::spin(); }\n\
             fn a5() { local(); }\n\
             fn local() {}\n",
        );
        let beta = model(
            "crates/beta/src/lib.rs",
            "pub fn helper() { deep(); }\n\
             pub fn deep() {}\n\
             mod util { pub fn shared() {} }\n\
             pub struct Gadget;\n\
             impl Gadget { pub fn spin(&self) {} }\n",
        );
        vec![alpha, beta]
    }

    #[test]
    fn use_path_and_crate_path_calls_resolve_across_crates() {
        let models = two_crate_models();
        let g = Graph::build(&models);
        let a1 = id_of(&g, "a1");
        let helper = id_of(&g, "helper");
        let deep = id_of(&g, "deep");
        assert_eq!(g.edges[a1], vec![helper]);
        assert_eq!(g.edges[id_of(&g, "a2")], vec![deep]);
        assert_eq!(g.edges[id_of(&g, "a3")], vec![id_of(&g, "shared")]);
        assert_eq!(g.edges[id_of(&g, "a4")], vec![id_of(&g, "spin")]);
        assert_eq!(g.edges[id_of(&g, "a5")], vec![id_of(&g, "local")]);
        // And helper() → deep() within beta.
        assert_eq!(g.edges[helper], vec![deep]);
    }

    #[test]
    fn bfs_reaches_transitively_with_parents() {
        let models = two_crate_models();
        let g = Graph::build(&models);
        let a1 = id_of(&g, "a1");
        let deep = id_of(&g, "deep");
        let seen = g.reach(&[a1], 16);
        assert_eq!(seen[&deep].0, 2);
        assert_eq!(g.path_to(&seen, deep), vec!["a1", "helper", "deep"]);
    }

    #[test]
    fn depth_cap_bounds_the_walk() {
        let models = two_crate_models();
        let g = Graph::build(&models);
        let a1 = id_of(&g, "a1");
        let seen = g.reach(&[a1], 1);
        assert!(seen.contains_key(&id_of(&g, "helper")));
        assert!(!seen.contains_key(&id_of(&g, "deep")));
    }

    #[test]
    fn prelude_method_names_do_not_resolve_unqualified() {
        let models = vec![model(
            "crates/alpha/src/lib.rs",
            "struct Pool;\nimpl Pool { fn map(&self) {} }\n\
             fn caller(xs: Vec<u32>) { xs.iter().map(f); }\n\
             fn named(x: &X) { x.custom_step(); }\n\
             impl X { fn custom_step(&self) {} }\n",
        )];
        let g = Graph::build(&models);
        let caller = id_of(&g, "caller");
        assert!(g.edges[caller].is_empty(), "{:?}", g.edges[caller]);
        let named = id_of(&g, "named");
        assert_eq!(g.edges[named], vec![id_of(&g, "custom_step")]);
    }

    #[test]
    fn unknown_external_paths_resolve_to_nothing() {
        let models = vec![model(
            "crates/alpha/src/lib.rs",
            "fn f() { std::fs::read(\"x\"); serde::to_writer(w); }\n",
        )];
        let g = Graph::build(&models);
        assert!(g.edges[id_of(&g, "f")].is_empty());
    }

    #[test]
    fn mnemo_lib_names_map_to_crate_dirs() {
        let alpha = model(
            "crates/serve/src/lib.rs",
            "fn f() { mnemo::plan(); mnemo_par::install(); }\n",
        );
        let core = model("crates/core/src/lib.rs", "pub fn plan() {}\n");
        let par = model("crates/par/src/lib.rs", "pub fn install() {}\n");
        let models = vec![alpha, core, par];
        let g = Graph::build(&models);
        let f = id_of(&g, "f");
        assert_eq!(
            g.edges[f],
            vec![id_of(&g, "plan"), id_of(&g, "install")]
        );
    }

    #[test]
    fn pool_site_roots_resolve() {
        let models = vec![model(
            "crates/alpha/src/lib.rs",
            "fn drive(pool: &Pool) { pool.run_jobs(4, |i| work(i)); }\nfn work(_i: usize) {}\n",
        )];
        let g = Graph::build(&models);
        assert_eq!(g.site_roots[0].len(), 1);
        assert_eq!(g.site_roots[0][0], vec![id_of(&g, "work")]);
    }
}
