//! `mnemo-lint` — the workspace's static determinism/robustness pass.
//!
//! Mnemo's reproduction guarantee (byte-identical figure CSVs and
//! telemetry for any `--jobs N`) is enforced dynamically by the CI
//! byte-diff gates — but those run a handful of benches at small scale.
//! This crate is the *static* half of the contract: a hand-rolled lexer
//! and a set of token-pattern lints that walk every `crates/**/*.rs`
//! source and reject the constructs that historically break determinism
//! or robustness before they reach a smoke gate:
//!
//! | code | invariant |
//! |------|-----------|
//! | D001 | no wall-clock reads outside the telemetry wall-time module |
//! | D002 | no default-hasher `HashMap`/`HashSet` in non-test code |
//! | D003 | no thread creation outside `mnemo-par` |
//! | D004 | no float reductions inside pool closures |
//! | D005 | no ad-hoc `Instant` timing in `crates/bench` (use `SweepTimer`) |
//! | D006 | no nondeterminism *reachable* from pool closures (call graph) |
//! | D007 | no float reduction reachable from pool-scheduled fns |
//! | R001 | no `unwrap`/`expect`/`panic!` outside tests and benches |
//! | R002 | no bare `as` integer casts in `hybridmem` |
//! | R003 | no panic reachable from serve request/journal hot paths |
//! | S001 | no `process::exit` outside `main.rs` |
//! | C001 | no conflicting lock-acquisition orders across call paths |
//! | P001 | no heap allocation reachable from hybridmem charge paths |
//! | M001 | malformed `mnemo-lint:` directive |
//! | M002 | stale, empty-justification, or copy-pasted allow directive |
//!
//! The D006/D007/R003/C001/P001 family is *semantic*: a recursive-
//! descent [`parser`] lifts each file to items + call references, a
//! workspace [`graph`] resolves those into a cross-crate call graph,
//! and [`reach`] walks it for transitively reachable facts. Results are
//! memoized per file in an incremental [`cache`] keyed on FNV-64
//! content hashes, and findings render as human text, JSON, or SARIF
//! v2.1.0 ([`sarif`]).
//!
//! Violations are suppressed inline — with a mandatory justification —
//! via `// mnemo-lint: allow(CODE, "reason")`; see [`allow`].
//!
//! The pass runs as `mnemo lint` (CLI subcommand) and as the standalone
//! `mnemo-lint` binary the `lint-invariants` CI job invokes; both exit
//! nonzero on any unallowed finding. No `syn`/`proc-macro` is involved
//! (the workspace builds offline against vendored shims), so the rules
//! are deliberately lexical; their exact patterns are pinned by the
//! fixture corpus in `tests/fixtures/lint/` and documented in
//! CONTRIBUTING.md §Determinism rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod cache;
pub mod context;
pub mod diag;
pub mod engine;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod reach;
pub mod report;
pub mod rules;
pub mod sarif;

pub use diag::{explain_code, Code, Finding, Severity};
pub use engine::{lint_files, lint_source, lint_tree, lint_tree_cached, Report};
pub use report::{render, Format};
