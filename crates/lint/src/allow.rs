//! The inline opt-out: `// mnemo-lint: allow(CODE, "justification")`.
//!
//! Every suppression must say *why* — a directive without a non-empty
//! justification string is itself a finding ([`Code::M001`]), and a
//! directive that suppresses nothing is flagged stale ([`Code::M002`]).
//!
//! Placement rules:
//! * a directive in a trailing comment applies to findings on its own
//!   line;
//! * a directive on a line of its own applies to the *next* line.

use crate::diag::{Code, Finding};
use crate::lexer::{Token, TokenKind};

/// A parsed allow directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// The code it suppresses.
    pub code: Code,
    /// The mandatory human reason (unquoted).
    pub justification: String,
    /// Line the comment sits on.
    pub line: u32,
    /// The line whose findings it suppresses.
    pub applies_to: u32,
}

/// Scan comment tokens for directives. Returns the well-formed
/// directives plus M001 findings for malformed ones.
pub fn parse_directives(
    path: &str,
    src: &str,
    tokens: &[Token],
) -> (Vec<AllowDirective>, Vec<Finding>) {
    let mut directives = Vec::new();
    let mut findings = Vec::new();
    for tok in tokens {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        // A directive must *start* the comment (after the comment
        // opener); prose that merely mentions `mnemo-lint:` — like this
        // sentence — is not a directive.
        let body = comment_body(tok.text(src));
        let Some(rest) = body.strip_prefix("mnemo-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        match parse_allow(rest) {
            Some((code, justification)) => {
                let standalone = line_is_blank_before(src, tok);
                directives.push(AllowDirective {
                    code,
                    justification,
                    line: tok.line,
                    applies_to: if standalone { tok.line + 1 } else { tok.line },
                });
            }
            None => findings.push(Finding {
                code: Code::M001,
                file: path.to_string(),
                line: tok.line,
                col: tok.col,
                message: format!("`{}`", first_line(body)),
            }),
        }
    }
    (directives, findings)
}

/// Strip the comment opener (`//`, `///`, `//!`, `/*`, `/**`, `/*!`)
/// and leading whitespace.
fn comment_body(text: &str) -> &str {
    let body = if let Some(rest) = text.strip_prefix("//") {
        rest.trim_start_matches(['/', '!'])
    } else if let Some(rest) = text.strip_prefix("/*") {
        rest.trim_start_matches(['*', '!'])
    } else {
        text
    };
    body.trim_start()
}

/// Parse `allow(CODE, "reason")` (the part after the directive name).
fn parse_allow(rest: &str) -> Option<(Code, String)> {
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.rfind(')')?;
    let inner = &rest[..close];
    let comma = inner.find(',')?;
    let code = Code::parse(inner[..comma].trim())?;
    let reason = inner[comma + 1..].trim();
    let reason = reason.strip_prefix('"')?.strip_suffix('"')?;
    if reason.trim().is_empty() {
        return None;
    }
    Some((code, reason.to_string()))
}

/// Is everything before this token on its line whitespace?
fn line_is_blank_before(src: &str, tok: &Token) -> bool {
    src[..tok.start]
        .bytes()
        .rev()
        .take_while(|&b| b != b'\n')
        .all(|b| b == b' ' || b == b'\t')
}

fn first_line(text: &str) -> &str {
    text.lines().next().unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> (Vec<AllowDirective>, Vec<Finding>) {
        parse_directives("x.rs", src, &lex(src))
    }

    #[test]
    fn trailing_directive_applies_to_its_own_line() {
        let src = "let t = now(); // mnemo-lint: allow(D001, \"bench wall clock\")\n";
        let (dirs, bad) = run(src);
        assert!(bad.is_empty());
        assert_eq!(dirs.len(), 1);
        assert_eq!(dirs[0].code, Code::D001);
        assert_eq!(dirs[0].applies_to, 1);
        assert_eq!(dirs[0].justification, "bench wall clock");
    }

    #[test]
    fn standalone_directive_applies_to_next_line() {
        let src =
            "fn f() {\n    // mnemo-lint: allow(R001, \"len checked above\")\n    x.unwrap();\n}\n";
        let (dirs, _) = run(src);
        assert_eq!(dirs[0].line, 2);
        assert_eq!(dirs[0].applies_to, 3);
    }

    #[test]
    fn missing_justification_is_malformed() {
        for src in [
            "// mnemo-lint: allow(R001)",
            "// mnemo-lint: allow(R001, )",
            "// mnemo-lint: allow(R001, \"\")",
            "// mnemo-lint: allow(R001, \"  \")",
            "// mnemo-lint: allow(R999, \"x\")",
            "// mnemo-lint: alow(R001, \"x\")",
        ] {
            let (dirs, bad) = run(src);
            assert!(dirs.is_empty(), "{src}");
            assert_eq!(bad.len(), 1, "{src}");
            assert_eq!(bad[0].code, Code::M001, "{src}");
        }
    }

    #[test]
    fn prose_mentioning_the_directive_is_not_a_directive() {
        for src in [
            "//! Suppress with `mnemo-lint: allow(CODE, \"reason\")`.\n",
            "// see mnemo-lint: allow syntax in CONTRIBUTING.md\n",
            "/* docs about mnemo-lint: allow(D001) */\n",
        ] {
            let (dirs, bad) = run(src);
            assert!(dirs.is_empty() && bad.is_empty(), "{src}");
        }
        // But a comment that *starts* with the directive name and is
        // malformed is still flagged.
        let (_, bad) = run("// mnemo-lint: allow(D001)\n");
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn directive_inside_string_is_ignored() {
        let src = "let s = \"// mnemo-lint: allow(R001)\";\n";
        let (dirs, bad) = run(src);
        assert!(dirs.is_empty() && bad.is_empty());
    }

    #[test]
    fn reason_may_contain_parens_and_commas() {
        let src = "// mnemo-lint: allow(D002, \"fixed-seed hasher (see det), not RandomState\")";
        let (dirs, bad) = run(src);
        assert!(bad.is_empty());
        assert_eq!(
            dirs[0].justification,
            "fixed-seed hasher (see det), not RandomState"
        );
    }
}
