//! Incremental analysis cache: per-file [`FileAnalysis`] results keyed
//! on an FNV-64 hash of the file's bytes.
//!
//! The per-file pass (lex → mask → directives → token rules → item
//! parse) is pure in `(path, content)`, so its result can be reused
//! verbatim across runs for every file that did not change — which in
//! CI is almost all of them. The workspace phase (call graph,
//! reachability, allow hygiene) re-runs whenever *any* file changed;
//! when the entire file-set is byte-identical, the memoized whole-tree
//! report replays instead and no analysis runs at all.
//!
//! Storage is a single versioned text file, `analysis.v1.tsv`, in the
//! cache directory: tab-separated records with `\t`/`\n`/`\\` escaped
//! in string fields. Any mismatch — missing file, wrong header, parse
//! error mid-entry — silently degrades to a cold run for the affected
//! files; findings are byte-identical either way, which CI asserts by
//! diffing cold and warm JSON reports.

use crate::allow::AllowDirective;
use crate::diag::{Code, Finding};
use crate::engine::FileAnalysis;
use crate::parser::{CallRef, FactHit, FactKind, FnInfo, LockAcq, PoolSite, UseDecl};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// Cache format version; bump whenever the serialized shape or the
/// meaning of any analysis field changes so stale caches self-evict.
const HEADER: &str = "mnemo-lint-cache v1";
const FILE_NAME: &str = "analysis.v1.tsv";

/// FNV-1a 64-bit over raw bytes — tiny, dependency-free, and stable
/// across platforms, which is all a content key needs.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An in-memory cache: path → (content hash, analysis), plus a memo of
/// the whole assembled report keyed on the digest of the complete
/// `(path, hash)` file-set. When the workspace is byte-identical to the
/// previous run the report memo lets the caller skip the workspace
/// phase (graph build + reachability + allow application) outright —
/// per-file reuse alone leaves that, the dominant cost, on the table.
#[derive(Debug, Default)]
pub struct Cache {
    entries: BTreeMap<String, (u64, FileAnalysis)>,
    report: Option<(u64, crate::engine::Report)>,
}

impl Cache {
    /// A cache with no entries (every lookup misses).
    pub fn empty() -> Cache {
        Cache::default()
    }

    /// Load from `dir`, or return an empty cache if the file is
    /// missing or malformed — never an error.
    pub fn load(dir: &Path) -> Cache {
        match fs::read_to_string(dir.join(FILE_NAME)) {
            Ok(text) => parse(&text).unwrap_or_default(),
            Err(_) => Cache::default(),
        }
    }

    /// The cached analysis for `path`, if its content hash matches.
    pub fn get(&self, path: &str, hash: u64) -> Option<FileAnalysis> {
        self.entries
            .get(path)
            .filter(|(h, _)| *h == hash)
            .map(|(_, a)| a.clone())
    }

    /// Insert or replace the entry for `path`.
    pub fn put(&mut self, path: &str, hash: u64, analysis: &FileAnalysis) {
        self.entries
            .insert(path.to_string(), (hash, analysis.clone()));
    }

    /// Drop entries for files no longer in the workspace.
    pub fn retain(&mut self, keep: &[&str]) {
        self.entries.retain(|p, _| keep.contains(&p.as_str()));
    }

    /// Digest of a complete workspace file-set, for the report memo.
    pub fn fileset_digest(paths_and_hashes: &[(&str, u64)]) -> u64 {
        let mut text = String::new();
        for (path, hash) in paths_and_hashes {
            text.push_str(path);
            text.push('\t');
            text.push_str(&format!("{hash:016x}"));
            text.push('\n');
        }
        fnv64(text.as_bytes())
    }

    /// The memoized report, if the file-set digest matches.
    pub fn report(&self, digest: u64) -> Option<crate::engine::Report> {
        self.report
            .as_ref()
            .filter(|(d, _)| *d == digest)
            .map(|(_, r)| r.clone())
    }

    /// Fast path for byte-identical workspaces: parse only the leading
    /// report memo out of `dir`'s cache file, without materializing the
    /// per-file entries. `None` on any mismatch or malformation — the
    /// caller falls back to [`Cache::load`].
    pub fn load_report(dir: &Path, digest: u64) -> Option<crate::engine::Report> {
        let text = fs::read_to_string(dir.join(FILE_NAME)).ok()?;
        let mut lines = text.lines();
        if lines.next()? != HEADER {
            return None;
        }
        let head: Vec<&str> = lines.next()?.split('\t').collect();
        let (tag, rest) = head.split_first()?;
        if *tag != "report" || u64::from_str_radix(rest.first()?, 16).ok()? != digest {
            return None;
        }
        let mut r = crate::engine::Report {
            findings: Vec::new(),
            allowed: rest.get(1)?.parse().ok()?,
            files_scanned: rest.get(2)?.parse().ok()?,
            files_cached: 0,
        };
        for line in lines {
            let fields: Vec<&str> = line.split('\t').collect();
            let (tag, rest) = fields.split_first()?;
            match *tag {
                "rf" => r.findings.push(parse_finding(rest)?),
                "endr" => return Some(r),
                _ => return None, // truncated memo
            }
        }
        None
    }

    /// Memoize the assembled report for `digest`.
    pub fn set_report(&mut self, digest: u64, report: &crate::engine::Report) {
        self.report = Some((digest, report.clone()));
    }

    /// Cached entry count (for tests and diagnostics).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Write to `dir/analysis.v1.tsv`, creating `dir` as needed.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        // The report memo leads the file so [`load_report`] can stop
        // after a few lines instead of parsing every per-file entry.
        if let Some((digest, r)) = &self.report {
            push_record(
                &mut out,
                &[
                    "report".to_string(),
                    format!("{digest:016x}"),
                    r.allowed.to_string(),
                    r.files_scanned.to_string(),
                ],
            );
            for f in &r.findings {
                push_record(&mut out, &finding_record("rf", f));
            }
            push_record(&mut out, &["endr".to_string()]);
        }
        for (path, (hash, a)) in &self.entries {
            write_entry(&mut out, path, *hash, a);
        }
        fs::write(dir.join(FILE_NAME), out)
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Empty-capable string field: `-` means empty, a leading `=` guards a
/// literal value (so a literal `-` round-trips as `=-`).
fn opt_esc(s: &str) -> String {
    if s.is_empty() {
        "-".to_string()
    } else {
        format!("={}", esc(s))
    }
}

fn opt_unesc(s: &str) -> String {
    match s.strip_prefix('=') {
        Some(rest) => unesc(rest),
        None => String::new(),
    }
}

fn push_record(out: &mut String, fields: &[String]) {
    out.push_str(&fields.join("\t"));
    out.push('\n');
}

fn finding_record(tag: &str, f: &Finding) -> Vec<String> {
    vec![
        tag.to_string(),
        f.code.as_str().to_string(),
        f.line.to_string(),
        f.col.to_string(),
        esc(&f.file),
        esc(&f.message),
    ]
}

fn write_entry(out: &mut String, path: &str, hash: u64, a: &FileAnalysis) {
    push_record(
        out,
        &[
            "file".to_string(),
            format!("{hash:016x}"),
            esc(path),
        ],
    );
    for f in &a.raw {
        push_record(out, &finding_record("raw", f));
    }
    for f in &a.meta {
        push_record(out, &finding_record("meta", f));
    }
    for d in &a.directives {
        push_record(
            out,
            &[
                "allow".to_string(),
                d.code.as_str().to_string(),
                d.line.to_string(),
                d.applies_to.to_string(),
                esc(&d.justification),
            ],
        );
    }
    for u in &a.model.uses {
        let mut rec = vec!["use".to_string(), esc(&u.leaf)];
        rec.extend(u.segments.iter().map(|s| esc(s)));
        push_record(out, &rec);
    }
    for f in &a.model.fns {
        push_record(
            out,
            &[
                "fn".to_string(),
                esc(&f.name),
                opt_esc(f.impl_ty.as_deref().unwrap_or("")),
                f.line.to_string(),
                f.col.to_string(),
                u32::from(f.in_test).to_string(),
                opt_esc(&f.module.join("::")),
            ],
        );
        write_body(out, "f", &f.facts, &f.calls, Some(&f.locks));
    }
    for s in &a.model.pool_sites {
        push_record(
            out,
            &[
                "site".to_string(),
                esc(&s.method),
                s.line.to_string(),
                s.col.to_string(),
                u32::from(s.in_test).to_string(),
            ],
        );
        write_body(out, "s", &s.facts, &s.calls, None);
    }
    push_record(out, &["end".to_string()]);
}

fn write_body(
    out: &mut String,
    prefix: &str,
    facts: &[FactHit],
    calls: &[CallRef],
    locks: Option<&[LockAcq]>,
) {
    for h in facts {
        push_record(
            out,
            &[
                format!("{prefix}f"),
                h.kind.as_str().to_string(),
                h.line.to_string(),
                esc(&h.what),
            ],
        );
    }
    for c in calls {
        let mut rec = vec![
            format!("{prefix}c"),
            u32::from(c.method).to_string(),
            c.line.to_string(),
            c.order.to_string(),
        ];
        rec.extend(c.segments.iter().map(|s| esc(s)));
        push_record(out, &rec);
    }
    for l in locks.into_iter().flatten() {
        push_record(
            out,
            &[
                format!("{prefix}l"),
                esc(&l.receiver),
                l.line.to_string(),
                l.order.to_string(),
                l.held_until.to_string(),
            ],
        );
    }
}

fn parse_finding(fields: &[&str]) -> Option<Finding> {
    Some(Finding {
        code: Code::parse(fields.first()?)?,
        line: fields.get(1)?.parse().ok()?,
        col: fields.get(2)?.parse().ok()?,
        file: unesc(fields.get(3)?),
        message: unesc(fields.get(4)?),
    })
}

/// Parse the whole cache file. `None` on any structural problem — the
/// caller treats that as an empty cache.
fn parse(text: &str) -> Option<Cache> {
    let mut lines = text.lines();
    if lines.next()? != HEADER {
        return None;
    }
    let mut cache = Cache::default();
    let mut cur: Option<(String, u64, FileAnalysis)> = None;
    let mut cur_report: Option<(u64, crate::engine::Report)> = None;
    for line in lines {
        let fields: Vec<&str> = line.split('\t').collect();
        let (tag, rest) = fields.split_first()?;
        if let Some((digest, r)) = cur_report.as_mut() {
            match *tag {
                "rf" => {
                    r.findings.push(parse_finding(rest)?);
                    continue;
                }
                "endr" => {
                    cache.report = Some((*digest, r.clone()));
                    cur_report = None;
                    continue;
                }
                _ => return None, // only findings between report/endr
            }
        }
        match *tag {
            "report" => {
                if cur.is_some() {
                    return None; // report block inside a file entry
                }
                let digest = u64::from_str_radix(rest.first()?, 16).ok()?;
                let r = crate::engine::Report {
                    findings: Vec::new(),
                    allowed: rest.get(1)?.parse().ok()?,
                    files_scanned: rest.get(2)?.parse().ok()?,
                    files_cached: 0,
                };
                cur_report = Some((digest, r));
            }
            "file" => {
                if cur.is_some() {
                    return None; // missing `end`
                }
                let hash = u64::from_str_radix(rest.first()?, 16).ok()?;
                let path = unesc(rest.get(1)?);
                let a = FileAnalysis {
                    path: path.clone(),
                    ..FileAnalysis::default()
                };
                cur = Some((path.clone(), hash, a));
                if let Some((_, _, a)) = cur.as_mut() {
                    a.model.path = path;
                }
            }
            "end" => {
                let (path, hash, a) = cur.take()?;
                cache.entries.insert(path, (hash, a));
            }
            "raw" => cur.as_mut()?.2.raw.push(parse_finding(rest)?),
            "meta" => cur.as_mut()?.2.meta.push(parse_finding(rest)?),
            "allow" => {
                let d = AllowDirective {
                    code: Code::parse(rest.first()?)?,
                    line: rest.get(1)?.parse().ok()?,
                    applies_to: rest.get(2)?.parse().ok()?,
                    justification: unesc(rest.get(3)?),
                };
                cur.as_mut()?.2.directives.push(d);
            }
            "use" => {
                let leaf = unesc(rest.first()?);
                let segments: Vec<String> = rest[1..].iter().map(|s| unesc(s)).collect();
                cur.as_mut()?.2.model.uses.push(UseDecl { leaf, segments });
            }
            "fn" => {
                let impl_ty = opt_unesc(rest.get(1)?);
                let module = opt_unesc(rest.get(5)?);
                let f = FnInfo {
                    name: unesc(rest.first()?),
                    impl_ty: if impl_ty.is_empty() { None } else { Some(impl_ty) },
                    module: if module.is_empty() {
                        Vec::new()
                    } else {
                        module.split("::").map(str::to_string).collect()
                    },
                    line: rest.get(2)?.parse().ok()?,
                    col: rest.get(3)?.parse().ok()?,
                    in_test: rest.get(4)? == &"1",
                    facts: Vec::new(),
                    calls: Vec::new(),
                    locks: Vec::new(),
                };
                cur.as_mut()?.2.model.fns.push(f);
            }
            "site" => {
                let s = PoolSite {
                    method: unesc(rest.first()?),
                    line: rest.get(1)?.parse().ok()?,
                    col: rest.get(2)?.parse().ok()?,
                    in_test: rest.get(3)? == &"1",
                    facts: Vec::new(),
                    calls: Vec::new(),
                };
                cur.as_mut()?.2.model.pool_sites.push(s);
            }
            "ff" | "sf" => {
                let h = FactHit {
                    kind: FactKind::parse(rest.first()?)?,
                    line: rest.get(1)?.parse().ok()?,
                    what: unesc(rest.get(2)?),
                };
                let m = &mut cur.as_mut()?.2.model;
                if *tag == "ff" {
                    m.fns.last_mut()?.facts.push(h);
                } else {
                    m.pool_sites.last_mut()?.facts.push(h);
                }
            }
            "fc" | "sc" => {
                let c = CallRef {
                    method: rest.first()? == &"1",
                    line: rest.get(1)?.parse().ok()?,
                    order: rest.get(2)?.parse().ok()?,
                    segments: rest[3..].iter().map(|s| unesc(s)).collect(),
                };
                if c.segments.is_empty() {
                    return None;
                }
                let m = &mut cur.as_mut()?.2.model;
                if *tag == "fc" {
                    m.fns.last_mut()?.calls.push(c);
                } else {
                    m.pool_sites.last_mut()?.calls.push(c);
                }
            }
            "fl" => {
                let l = LockAcq {
                    receiver: unesc(rest.first()?),
                    line: rest.get(1)?.parse().ok()?,
                    order: rest.get(2)?.parse().ok()?,
                    held_until: rest.get(3)?.parse().ok()?,
                };
                cur.as_mut()?.2.model.fns.last_mut()?.locks.push(l);
            }
            _ => return None,
        }
    }
    if cur.is_some() || cur_report.is_some() {
        return None; // truncated entry
    }
    Some(cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyze_source;

    const SRC: &str = "use beta::helper;\n\
        // mnemo-lint: allow(R001, \"guarded by len check two lines up\")\n\
        fn f(pool: &Pool) {\n    helper();\n    pool.map(|i| step(i));\n    x.unwrap()\n}\n\
        fn step(i: usize) { self.inner.lock(); let t = Instant::now(); }\n";

    #[test]
    fn analysis_round_trips_through_the_tsv() {
        let a = analyze_source("crates/core/src/x.rs", SRC);
        let mut cache = Cache::empty();
        let hash = fnv64(SRC.as_bytes());
        cache.put("crates/core/src/x.rs", hash, &a);
        let dir = std::env::temp_dir().join(format!("mnemo-lint-cache-rt-{hash:x}"));
        cache.save(&dir).unwrap();
        let loaded = Cache::load(&dir);
        let b = loaded.get("crates/core/src/x.rs", hash).unwrap();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hash_mismatch_misses() {
        let a = analyze_source("crates/core/src/x.rs", SRC);
        let mut cache = Cache::empty();
        cache.put("crates/core/src/x.rs", 1, &a);
        assert!(cache.get("crates/core/src/x.rs", 2).is_none());
        assert!(cache.get("crates/core/src/x.rs", 1).is_some());
    }

    #[test]
    fn malformed_cache_degrades_to_empty() {
        for text in [
            "",
            "wrong header\n",
            "mnemo-lint-cache v1\nfile zz notahash\n",
            "mnemo-lint-cache v1\nfile 00000000000000ab x.rs\nraw R001 1 1 f m\n", // no end
            "mnemo-lint-cache v1\nbogus\trecord\n",
        ] {
            let parsed = parse(text);
            assert!(
                parsed.is_none() || parsed.as_ref().is_some_and(Cache::is_empty),
                "{text:?}"
            );
        }
    }

    #[test]
    fn escaped_fields_round_trip() {
        for s in ["a\tb", "a\nb", "a\\b", "tab\\t-literal", "", "-", "=x"] {
            assert_eq!(unesc(&esc(s)), s, "{s:?}");
            assert_eq!(opt_unesc(&opt_esc(s)), s, "{s:?}");
        }
    }

    #[test]
    fn retain_drops_departed_files() {
        let a = analyze_source("crates/core/src/x.rs", "fn f() {}\n");
        let mut cache = Cache::empty();
        cache.put("crates/core/src/x.rs", 1, &a);
        cache.put("crates/core/src/gone.rs", 2, &a);
        cache.retain(&["crates/core/src/x.rs"]);
        assert_eq!(cache.len(), 1);
        assert!(cache.get("crates/core/src/gone.rs", 2).is_none());
    }

    #[test]
    fn report_memo_round_trips_and_fast_path_reads_it() {
        let a = analyze_source("crates/core/src/x.rs", SRC);
        let mut cache = Cache::empty();
        cache.put("crates/core/src/x.rs", 7, &a);
        let digest = Cache::fileset_digest(&[("crates/core/src/x.rs", 7)]);
        let report = crate::engine::assemble(std::slice::from_ref(&a));
        cache.set_report(digest, &report);
        let dir = std::env::temp_dir().join(format!("mnemo-lint-cache-memo-{digest:x}"));
        cache.save(&dir).unwrap();

        // Fast path: right digest hits, wrong digest misses.
        let fast = Cache::load_report(&dir, digest).unwrap();
        assert_eq!(fast.findings, report.findings);
        assert_eq!(fast.allowed, report.allowed);
        assert!(Cache::load_report(&dir, digest ^ 1).is_none());

        // Full load still sees both the memo and the per-file entry.
        let loaded = Cache::load(&dir);
        assert_eq!(loaded.report(digest).unwrap().findings, report.findings);
        assert!(loaded.get("crates/core/src/x.rs", 7).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv64_is_the_reference_function() {
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }
}
