//! SARIF v2.1.0 rendering — the interchange format code-scanning UIs
//! ingest. Hand-rolled like the JSON renderer (no serde) and fully
//! deterministic: rule metadata comes from [`crate::diag::ALL_CODES`]
//! in declaration order, results are pre-sorted by the engine, and
//! keys are emitted in a fixed order, so two runs over the same tree
//! produce byte-identical artifacts (the CI cache gate diffs them).

use crate::diag::{Severity, ALL_CODES};
use crate::engine::Report;
use crate::report::escape;

const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Error => "error",
        Severity::Warning => "warning",
    }
}

/// Render the full SARIF log for a report.
pub fn sarif(report: &Report) -> String {
    let mut out = String::with_capacity(4096 + report.findings.len() * 256);
    out.push_str("{\n");
    out.push_str(&format!("  \"$schema\": {},\n", escape(SCHEMA)));
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"mnemo-lint\",\n");
    out.push_str(&format!(
        "          \"version\": {},\n",
        escape(env!("CARGO_PKG_VERSION"))
    ));
    out.push_str("          \"rules\": [\n");
    for (i, code) in ALL_CODES.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}, \
             \"fullDescription\": {{\"text\": {}}}, \
             \"defaultConfiguration\": {{\"level\": {}}}}}",
            escape(code.as_str()),
            escape(code.explain()),
            escape(code.help()),
            escape(level(code.severity()))
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rule_index = ALL_CODES
            .iter()
            .position(|c| *c == f.code)
            .unwrap_or_default();
        out.push_str(&format!(
            "\n        {{\"ruleId\": {}, \"ruleIndex\": {}, \"level\": {}, \
             \"message\": {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": \
             {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}",
            escape(f.code.as_str()),
            rule_index,
            escape(level(f.code.severity())),
            escape(&f.message),
            escape(&f.file),
            f.line,
            f.col
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::lint_source;

    #[test]
    fn sarif_log_has_schema_rules_and_results() {
        let r = lint_source("crates/core/src/x.rs", "fn f() { x.unwrap(); }\n");
        let text = sarif(&r);
        assert!(text.contains("\"version\": \"2.1.0\""), "{text}");
        assert!(text.contains("sarif-2.1.0.json"), "{text}");
        // All 15 rules described once each.
        for code in ALL_CODES {
            assert!(
                text.contains(&format!("\"id\": \"{}\"", code.as_str())),
                "{code:?} missing"
            );
        }
        assert!(text.contains("\"ruleId\": \"R001\""), "{text}");
        assert!(text.contains("\"startLine\": 1"), "{text}");
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn clean_report_renders_empty_results() {
        let r = lint_source("crates/core/src/x.rs", "fn f() {}\n");
        let text = sarif(&r);
        assert!(text.contains("\"results\": []"), "{text}");
    }

    #[test]
    fn rendering_is_deterministic() {
        let r = lint_source("crates/core/src/x.rs", "fn f() { x.unwrap(); y.expect(\"z\"); }\n");
        assert_eq!(sarif(&r), sarif(&r));
    }
}
