//! Fixture-driven corpus tests: every rule's exact matching behaviour
//! is pinned by the snippets in `tests/fixtures/lint/` (repo root) and
//! the byte-exact `golden.json` report over the whole corpus.
//!
//! Fixture contract (see the corpus README): `<code>_positive.rs` must
//! fire the code, `<code>_negative.rs` must be clean, and
//! `<code>_allowed.rs` must be clean with `allowed > 0`. The first line
//! of each fixture is a `//@ path:` header giving the virtual repo path
//! the snippet is linted under, since rule policy is path-driven.

use mnemo_lint::{lint_source, render, Code, Finding, Format, Report};
use std::fs;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/lint")
}

/// All corpus fixtures as (file name, virtual path, source), in
/// filename order so the combined report is deterministic.
fn fixtures() -> Vec<(String, String, String)> {
    let mut names: Vec<String> = fs::read_dir(corpus_dir())
        .expect("fixture corpus directory exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "empty fixture corpus");
    names
        .into_iter()
        .map(|name| {
            let src = fs::read_to_string(corpus_dir().join(&name)).unwrap();
            let virt = src
                .lines()
                .next()
                .and_then(|l| l.strip_prefix("//@ path: "))
                .unwrap_or_else(|| panic!("fixture {name} lacks a `//@ path:` header"))
                .trim()
                .to_string();
            (name, virt, src)
        })
        .collect()
}

fn lint_corpus() -> Report {
    let mut combined = Report::default();
    for (_, virt, src) in fixtures() {
        let r = lint_source(&virt, &src);
        combined.findings.extend(r.findings);
        combined.allowed += r.allowed;
        combined.files_scanned += r.files_scanned;
    }
    combined.findings.sort_by_key(Finding::sort_key);
    combined
}

/// The code a fixture exercises, from its `d001_positive.rs`-style name.
fn code_of(name: &str) -> Code {
    let prefix = name.split('_').next().unwrap().to_uppercase();
    Code::parse(&prefix).unwrap_or_else(|| panic!("fixture {name} names unknown code {prefix}"))
}

#[test]
fn corpus_covers_every_rule_code_three_ways() {
    let names: Vec<String> = fixtures().into_iter().map(|(n, _, _)| n).collect();
    for code in [
        "d001", "d002", "d003", "d004", "d005", "d006", "d007", "r001", "r002", "r003", "s001",
        "c001", "p001",
    ] {
        for case in ["positive", "negative", "allowed"] {
            let want = format!("{code}_{case}.rs");
            assert!(names.contains(&want), "missing fixture {want}");
        }
    }
}

#[test]
fn positive_fixtures_fire_their_code() {
    for (name, virt, src) in fixtures() {
        if !name.ends_with("_positive.rs") {
            continue;
        }
        let code = code_of(&name);
        let r = lint_source(&virt, &src);
        assert!(
            r.findings.iter().any(|f| f.code == code),
            "{name}: expected a {code} finding, got {:?}",
            r.findings
        );
        assert!(r.is_failure(false), "{name}: positive must fail the build");
        // Spans point at real source: 1-based and within the file.
        for f in &r.findings {
            assert!(
                f.line >= 1 && (f.line as usize) <= src.lines().count(),
                "{name}: {f:?}"
            );
            assert!(f.col >= 1, "{name}: {f:?}");
            assert_eq!(f.file, virt, "{name}: finding carries the linted path");
        }
    }
}

#[test]
fn negative_fixtures_are_clean() {
    for (name, virt, src) in fixtures() {
        if !name.ends_with("_negative.rs") {
            continue;
        }
        let r = lint_source(&virt, &src);
        assert!(
            r.findings.is_empty(),
            "{name}: expected clean, got {:?}",
            r.findings
        );
        assert_eq!(r.allowed, 0, "{name}: negatives must not need allows");
    }
}

#[test]
fn allowed_fixtures_are_suppressed_not_clean() {
    for (name, virt, src) in fixtures() {
        if !name.ends_with("_allowed.rs") {
            continue;
        }
        let r = lint_source(&virt, &src);
        assert!(
            r.findings.is_empty(),
            "{name}: expected suppressed, got {:?}",
            r.findings
        );
        assert!(
            r.allowed > 0,
            "{name}: the allow directive must have bitten"
        );
    }
}

/// Reintroducing any fixture violation into a scanned tree must fail
/// the run — the acceptance criterion for the CI gate.
#[test]
fn reintroduced_violations_fail_the_run() {
    for (name, virt, src) in fixtures() {
        if name.ends_with("_positive.rs") {
            assert!(
                lint_source(&virt, &src).is_failure(true),
                "{name} would slip through the gate"
            );
        }
    }
}

#[test]
fn corpus_matches_golden_json() {
    let got = render(&lint_corpus(), Format::Json);
    let golden_path = corpus_dir().join("golden.json");
    if std::env::var_os("UPDATE_LINT_GOLDEN").is_some() {
        fs::write(&golden_path, &got).unwrap();
        return;
    }
    let want = fs::read_to_string(&golden_path)
        .expect("golden.json exists (UPDATE_LINT_GOLDEN=1 to regenerate)");
    assert_eq!(
        got, want,
        "corpus JSON drifted from tests/fixtures/lint/golden.json; \
         rerun with UPDATE_LINT_GOLDEN=1 if the change is intentional"
    );
}

/// Same pin for the SARIF renderer: CI uploads this format as an
/// artifact, so its exact bytes over the corpus are golden too.
#[test]
fn corpus_matches_golden_sarif() {
    let got = render(&lint_corpus(), Format::Sarif);
    let golden_path = corpus_dir().join("golden.sarif");
    if std::env::var_os("UPDATE_LINT_GOLDEN").is_some() {
        fs::write(&golden_path, &got).unwrap();
        return;
    }
    let want = fs::read_to_string(&golden_path)
        .expect("golden.sarif exists (UPDATE_LINT_GOLDEN=1 to regenerate)");
    assert_eq!(
        got, want,
        "corpus SARIF drifted from tests/fixtures/lint/golden.sarif; \
         rerun with UPDATE_LINT_GOLDEN=1 if the change is intentional"
    );
}
