//! Property tests: the item parser is *total* like the lexer under it —
//! `parse_file` never panics on any token stream, every position it
//! records points into the source, and everything it extracts (fn
//! names, call heads, lock receivers, pool methods) is the text of a
//! real identifier token, never invented. `analyze_source` (and so the
//! whole semantic pipeline) inherits the guarantee.

use mnemo_lint::engine::analyze_source;
use mnemo_lint::lexer::{lex, TokenKind};
use mnemo_lint::parser::{parse_file, FileModel};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Run the full front half exactly as `analyze_source` does: lex, drop
/// comment tokens, parse. The mask is all-false — the parser must not
/// care.
fn parse_soup(src: &str) -> FileModel {
    let tokens: Vec<_> = lex(src)
        .into_iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let in_test = vec![false; tokens.len()];
    parse_file("crates/core/src/x.rs", src, &tokens, &in_test)
}

/// Every invariant the downstream graph/reach phases rely on.
fn check_model_invariants(
    src: &str,
    model: &FileModel,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let lines = src.lines().count().max(1) as u32;
    let idents: BTreeSet<&str> = lex(src)
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text(src))
        .collect();
    for f in &model.fns {
        prop_assert!(f.line >= 1 && f.line <= lines, "fn line {f:?}");
        prop_assert!(f.col >= 1, "fn col {f:?}");
        prop_assert!(idents.contains(f.name.as_str()), "invented fn name {f:?}");
        for hit in &f.facts {
            prop_assert!(hit.line >= 1 && hit.line <= lines, "fact line {hit:?}");
        }
        for c in &f.calls {
            prop_assert!(c.line >= 1 && c.line <= lines, "call line {c:?}");
            prop_assert!(!c.segments.is_empty(), "empty call path {c:?}");
            for seg in &c.segments {
                prop_assert!(idents.contains(seg.as_str()), "invented call seg {c:?}");
            }
        }
        for l in &f.locks {
            prop_assert!(l.line >= 1 && l.line <= lines, "lock line {l:?}");
            prop_assert!(idents.contains(l.receiver.as_str()), "invented receiver {l:?}");
        }
    }
    for u in &model.uses {
        prop_assert!(!u.leaf.is_empty(), "empty use leaf {u:?}");
        prop_assert!(!u.segments.is_empty(), "empty use path {u:?}");
    }
    for s in &model.pool_sites {
        prop_assert!(s.line >= 1 && s.line <= lines, "site line {s:?}");
        prop_assert!(s.col >= 1, "site col {s:?}");
        prop_assert!(idents.contains(s.method.as_str()), "invented site {s:?}");
    }
    Ok(())
}

/// The lexer-props alphabet plus the item keywords and call/lock/pool
/// shapes the parser keys on, so random soup actually exercises the
/// item state machine, not just its error recovery.
fn item_chunk(b: u8) -> &'static str {
    const CHUNKS: &[&str] = &[
        "fn ", "impl ", "mod ", "use ", "pub ", "for ", "{", "}", "(", ")", "::", ";", ",",
        "a", "b9", "_c", "self.", ".lock()", ".sum::<f64>()", "pool.run_jobs(", "|i|",
        "Instant::now()", "vec![", "\"s\"", "'c'", "// x\n", "/* y */", "\n", "<", ">", "&",
        "#[test]", "r#\"", "=", "->", "unwrap",
    ];
    CHUNKS[b as usize % CHUNKS.len()]
}

proptest! {
    #[test]
    fn parser_total_on_arbitrary_utf8(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let model = parse_soup(&src);
        check_model_invariants(&src, &model)?;
    }

    #[test]
    fn parser_total_on_item_soup(bytes in proptest::collection::vec(0u8..=255, 0..128)) {
        let src: String = bytes.iter().map(|&b| item_chunk(b)).collect();
        let model = parse_soup(&src);
        check_model_invariants(&src, &model)?;
    }

    #[test]
    fn analyze_source_total_on_item_soup(bytes in proptest::collection::vec(0u8..=255, 0..128)) {
        let src: String = bytes.iter().map(|&b| item_chunk(b)).collect();
        // The paths with special semantic-rule policy, plus a plain one.
        for path in [
            "crates/core/src/x.rs",
            "crates/serve/src/engine.rs",
            "crates/hybridmem/src/system.rs",
            "crates/par/src/lib.rs",
        ] {
            let analysis = analyze_source(path, &src);
            check_model_invariants(&src, &analysis.model)?;
        }
    }

    #[test]
    fn every_fn_token_is_seen_or_skipped_deliberately(bytes in proptest::collection::vec(0u8..=255, 0..128)) {
        // Token coverage: the model never contains more fns than `fn`
        // keyword tokens, and a well-formed prefix (`fn name`) at
        // nesting depth the parser tracks yields exactly that name.
        let src: String = bytes.iter().map(|&b| item_chunk(b)).collect();
        let fn_tokens = lex(&src)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && t.text(&src) == "fn")
            .count();
        let model = parse_soup(&src);
        prop_assert!(
            model.fns.len() <= fn_tokens,
            "{} fns from {} `fn` tokens",
            model.fns.len(),
            fn_tokens
        );
    }
}

#[test]
fn well_formed_file_has_full_token_coverage() {
    // Deterministic anchor next to the fuzz: on a well-formed file the
    // parser accounts for every item-level construct.
    let src = r#"
use std::sync::Mutex;
pub struct S { m: Mutex<u64> }
impl S {
    pub fn total(&self, xs: &[f64]) -> f64 {
        let g = self.m.lock().unwrap_or_else(|e| e.into_inner());
        let _ = *g;
        xs.iter().sum::<f64>()
    }
}
fn free(n: usize) -> Vec<u64> {
    let pool = mnemo_par::Pool::current();
    pool.run_jobs(n, |i| i as u64)
}
"#;
    let model = parse_soup(src);
    assert_eq!(
        model.fns.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(),
        vec!["total", "free"]
    );
    assert_eq!(model.uses.len(), 1);
    assert_eq!(model.pool_sites.len(), 1);
    assert_eq!(model.fns[0].locks.len(), 1);
    assert_eq!(model.fns[0].facts.len(), 1);
    check_model_invariants(src, &model).unwrap();
}
