//! Property tests: the lexer is *total* — it never panics, on any
//! input — and every span it emits is in-bounds, on char boundaries,
//! and strictly ordered. The whole lint front end inherits the same
//! guarantee via `lint_source`.

use mnemo_lint::lexer::{lex, TokenKind};
use mnemo_lint::lint_source;
use proptest::prelude::*;

/// Check every lexer invariant over one input.
fn check_lex_invariants(src: &str) -> Result<(), proptest::test_runner::TestCaseError> {
    let tokens = lex(src);
    let mut prev_end = 0usize;
    for t in &tokens {
        prop_assert!(t.start < t.end, "empty span {t:?}");
        prop_assert!(t.end <= src.len(), "span past EOF {t:?}");
        prop_assert!(src.is_char_boundary(t.start), "start mid-char {t:?}");
        prop_assert!(src.is_char_boundary(t.end), "end mid-char {t:?}");
        prop_assert!(t.start >= prev_end, "overlapping tokens at {t:?}");
        prop_assert!(t.line >= 1 && t.col >= 1, "0-based span {t:?}");
        // text() must not panic and must be non-empty.
        prop_assert!(!t.text(src).is_empty());
        prev_end = t.end;
    }
    Ok(())
}

/// Bytes drawn from the characters that exercise the lexer's tricky
/// state machine: comment openers, string/char quotes, raw-string
/// guards, escapes, newlines, and plain code.
fn rusty_char(b: u8) -> char {
    const ALPHABET: &[u8] = b"ab_9 \n\t\"'\\/*(){}<>!.:#r;=-";
    ALPHABET[b as usize % ALPHABET.len()] as char
}

proptest! {
    #[test]
    fn lexer_total_on_arbitrary_utf8(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        check_lex_invariants(&src)?;
    }

    #[test]
    fn lexer_total_on_adversarial_rust_soup(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        let src: String = bytes.iter().map(|&b| rusty_char(b)).collect();
        check_lex_invariants(&src)?;
    }

    #[test]
    fn lint_source_total_and_spans_in_bounds(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        let src: String = bytes.iter().map(|&b| rusty_char(b)).collect();
        // Both a policy-free path and the special-cased ones.
        for path in ["crates/core/src/x.rs", "crates/hybridmem/src/x.rs", "crates/par/src/lib.rs"] {
            let report = lint_source(path, &src);
            for f in &report.findings {
                prop_assert!(f.line >= 1, "{f:?}");
                prop_assert!((f.line as usize) <= src.lines().count().max(1), "{f:?}");
                prop_assert!(f.col >= 1, "{f:?}");
            }
        }
    }

    #[test]
    fn comments_never_leak_into_code_tokens(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let inner: String = bytes.iter().map(|&b| rusty_char(b)).filter(|&c| c != '\n').collect();
        let src = format!("// {inner}\nfn f() {{}}\n");
        let tokens = lex(&src);
        // The whole first line is one comment token; `unwrap` etc.
        // inside it must not become Ident tokens.
        let idents: Vec<&str> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(&src))
            .collect();
        prop_assert_eq!(idents, vec!["fn", "f"]);
    }
}
