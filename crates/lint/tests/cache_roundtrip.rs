//! Integration: the incremental cache is invisible in the output.
//! Cold run, warm run, and a run after an edit must produce the exact
//! same rendered report as an uncached run — the cache may only change
//! *how much work* happens, observable via `files_cached`.

use mnemo_lint::{lint_tree, lint_tree_cached, render, Format};
use std::fs;
use std::path::PathBuf;

struct TempTree {
    root: PathBuf,
}

impl TempTree {
    fn new(tag: &str) -> TempTree {
        let root = std::env::temp_dir().join(format!(
            "mnemo-lint-cache-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/core/src")).unwrap();
        fs::create_dir_all(root.join("crates/serve/src")).unwrap();
        TempTree { root }
    }

    fn write(&self, rel: &str, src: &str) {
        fs::write(self.root.join(rel), src).unwrap();
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const CLEAN: &str = "pub fn id(x: u64) -> u64 {\n    x\n}\n";
const WALL_BELOW_POOL: &str = "fn stamp() -> u128 {\n    std::time::Instant::now().elapsed().as_nanos()\n}\n\nfn sample(i: usize) -> u128 {\n    stamp() + i as u128\n}\n\npub fn run(n: usize) -> Vec<u128> {\n    let pool = mnemo_par::Pool::current();\n    pool.run_jobs(n, |i| sample(i))\n}\n";

#[test]
fn warm_run_is_byte_identical_and_fully_cached() {
    let tree = TempTree::new("warm");
    tree.write("crates/core/src/lib.rs", CLEAN);
    tree.write("crates/core/src/hot.rs", WALL_BELOW_POOL);
    tree.write("crates/serve/src/engine.rs", CLEAN);
    let cache = tree.root.join("lint-cache");

    let cold = lint_tree_cached(&tree.root, Some(&cache)).unwrap();
    assert_eq!(cold.files_cached, 0, "first run must be cold");
    assert!(
        cold.findings.iter().any(|f| f.code.as_str() == "D006"),
        "seed violation must fire: {:?}",
        cold.findings
    );

    let warm = lint_tree_cached(&tree.root, Some(&cache)).unwrap();
    assert_eq!(
        warm.files_cached, warm.files_scanned,
        "unchanged tree must be served entirely from cache"
    );
    for format in [Format::Human, Format::Json, Format::Sarif] {
        assert_eq!(
            render(&cold, format),
            render(&warm, format),
            "cold and warm renders must be byte-identical"
        );
    }

    // And both must match the cache-free path exactly.
    let uncached = lint_tree(&tree.root).unwrap();
    assert_eq!(render(&uncached, Format::Json), render(&warm, Format::Json));
}

#[test]
fn edits_invalidate_only_the_touched_file() {
    let tree = TempTree::new("edit");
    tree.write("crates/core/src/lib.rs", CLEAN);
    tree.write("crates/core/src/hot.rs", CLEAN);
    let cache = tree.root.join("lint-cache");

    let cold = lint_tree_cached(&tree.root, Some(&cache)).unwrap();
    assert!(cold.findings.is_empty(), "{:?}", cold.findings);

    // Introduce the violation after a warm cache exists: the changed
    // file must be re-analyzed (and fire), the other served cached.
    tree.write("crates/core/src/hot.rs", WALL_BELOW_POOL);
    let edited = lint_tree_cached(&tree.root, Some(&cache)).unwrap();
    assert_eq!(edited.files_cached, 1, "only the untouched file is cached");
    assert!(
        edited.findings.iter().any(|f| f.code.as_str() == "D006"),
        "stale cache hid a new violation: {:?}",
        edited.findings
    );
}

#[test]
fn corrupt_cache_degrades_to_cold_run() {
    let tree = TempTree::new("corrupt");
    tree.write("crates/core/src/hot.rs", WALL_BELOW_POOL);
    let cache = tree.root.join("lint-cache");

    let cold = lint_tree_cached(&tree.root, Some(&cache)).unwrap();
    fs::write(cache.join("analysis.v1.tsv"), "not a cache file\n\x00garbage").unwrap();
    let after = lint_tree_cached(&tree.root, Some(&cache)).unwrap();
    assert_eq!(after.files_cached, 0, "corrupt cache must be ignored");
    assert_eq!(
        render(&cold, Format::Json),
        render(&after, Format::Json),
        "findings must survive cache corruption"
    );
    // The rewritten cache works again.
    let warm = lint_tree_cached(&tree.root, Some(&cache)).unwrap();
    assert_eq!(warm.files_cached, warm.files_scanned);
}
