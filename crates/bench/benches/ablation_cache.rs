//! Ablation: LLC model choice (none / object-LRU / set-associative).
//!
//! The object-granular LRU is the default because it is ~an order of
//! magnitude cheaper to simulate than the line-granular set-associative
//! model; this bench quantifies both the simulation-speed gap and (in the
//! printed preamble) how little the measured curve differs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hybridmem::{CacheConfig, CacheKind, HybridSpec};
use kvsim::{Placement, Server, StoreKind};
use std::hint::black_box;
use ycsb::WorkloadSpec;

fn spec_with(kind: CacheKind, dataset: u64) -> HybridSpec {
    let mut spec = HybridSpec::paper_testbed();
    spec.cache = match kind {
        CacheKind::None => CacheConfig::disabled(),
        CacheKind::ObjectLru => CacheConfig::paper_llc(),
        CacheKind::SetAssociative => CacheConfig::line_granular(),
    };
    spec.cache.capacity_bytes = (dataset / 85).max(1 << 16);
    spec
}

fn curve_delta_summary() {
    let trace = WorkloadSpec::trending().scaled(500, 5_000).generate(9);
    let mut results = Vec::new();
    for kind in [
        CacheKind::None,
        CacheKind::ObjectLru,
        CacheKind::SetAssociative,
    ] {
        let spec = spec_with(kind, trace.dataset_bytes());
        let report = Server::build_with(
            StoreKind::Redis,
            spec,
            hybridmem::clock::NoiseConfig::disabled(),
            &trace,
            Placement::AllSlow,
        )
        .expect("server")
        .run(&trace);
        results.push((kind, report.throughput_ops_s()));
    }
    let obj = results[1].1;
    let line = results[2].1;
    println!(
        "[ablation_cache] slow-only throughput: none {:.0}, object-LRU {:.0}, set-assoc {:.0} \
         (object vs line gap {:+.2}%)",
        results[0].1,
        obj,
        line,
        (obj / line - 1.0) * 100.0
    );
}

fn bench_cache_models(c: &mut Criterion) {
    curve_delta_summary();
    let trace = WorkloadSpec::trending().scaled(500, 5_000).generate(9);
    let mut group = c.benchmark_group("cache_model");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    for kind in [
        CacheKind::None,
        CacheKind::ObjectLru,
        CacheKind::SetAssociative,
    ] {
        group.bench_with_input(
            BenchmarkId::new("run_trace", format!("{kind:?}")),
            &kind,
            |b, &kind| {
                let spec = spec_with(kind, trace.dataset_bytes());
                let mut server = Server::build_with(
                    StoreKind::Redis,
                    spec,
                    hybridmem::clock::NoiseConfig::disabled(),
                    &trace,
                    Placement::AllSlow,
                )
                .expect("server");
                b.iter(|| black_box(server.run(&trace).runtime_ns));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cache_models);
criterion_main!(benches);
