//! Knapsack solver scaling: exact DP vs density greedy on tiering-shaped
//! instances (item weights = record sizes, values = promotion benefits).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mnemo::knapsack::{dp_exact, greedy, solve, Item};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn tiering_items(n: usize, seed: u64) -> Vec<Item> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            // Record-size-shaped weights (1 KB .. 128 KB) and zipf-ish values.
            let weight = 1u64 << rng.random_range(10..17);
            let value = 1.0 / (1.0 + (i as f64).powf(0.8)) * 1e6;
            Item {
                id: i as u64,
                weight,
                value,
            }
        })
        .collect()
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("knapsack");
    group.sample_size(10);
    for n in [100usize, 1_000, 10_000] {
        let items = tiering_items(n, 42);
        let capacity: u64 = items.iter().map(|i| i.weight).sum::<u64>() / 3;
        group.bench_with_input(BenchmarkId::new("greedy", n), &items, |b, items| {
            b.iter(|| black_box(greedy(items, capacity).value));
        });
        group.bench_with_input(BenchmarkId::new("solve", n), &items, |b, items| {
            b.iter(|| black_box(solve(items, capacity).value));
        });
        if n <= 1_000 {
            group.bench_with_input(BenchmarkId::new("dp_unit4k", n), &items, |b, items| {
                b.iter(|| black_box(dp_exact(items, capacity, (capacity / 4096).max(1)).value));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
