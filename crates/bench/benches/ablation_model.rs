//! Ablation: GlobalAverage vs SizeAware estimation model.
//!
//! Measures the cost of fitting each model variant and building the full
//! estimate curve, and prints an accuracy comparison on the mixed-size
//! Trending Preview workload (where the variants differ most) before the
//! timing runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kvsim::StoreKind;
use mnemo::accuracy::{ErrorStats, EvalPoint};
use mnemo::advisor::{Advisor, AdvisorConfig, OrderingKind};
use mnemo::{EstimateEngine, ModelKind, PatternEngine, PerfModel};
use std::hint::black_box;
use ycsb::WorkloadSpec;

fn accuracy_summary() {
    let trace = WorkloadSpec::trending_preview()
        .scaled(1_000, 10_000)
        .generate(5);
    for model in [ModelKind::GlobalAverage, ModelKind::SizeAware] {
        let mut config = AdvisorConfig::default();
        config.spec.cache.capacity_bytes = trace.dataset_bytes() / 85;
        config.model = model;
        config.ordering = OrderingKind::MnemoT;
        let spec = config.spec.clone();
        let consultation = Advisor::new(config)
            .consult(StoreKind::Redis, &trace)
            .expect("consultation");
        let points = mnemo::accuracy::evaluate(
            StoreKind::Redis,
            &trace,
            &consultation,
            &spec,
            hybridmem::clock::NoiseConfig::disabled(),
            9,
        )
        .expect("evaluation");
        let errors: Vec<f64> = points.iter().map(EvalPoint::error_pct).collect();
        let stats = ErrorStats::from_errors(&errors);
        println!(
            "[ablation_model] {model:?}: median |err| {:.3}%, max {:.3}% (trending preview)",
            stats.median, stats.max
        );
    }
}

fn bench_models(c: &mut Criterion) {
    accuracy_summary();
    let trace = WorkloadSpec::trending_preview()
        .scaled(1_000, 10_000)
        .generate(5);
    let baselines = mnemo::SensitivityEngine::default()
        .measure(StoreKind::Redis, &trace)
        .expect("baselines");
    let pattern = PatternEngine::analyze(&trace);
    let order = pattern.hotness_order();

    let mut group = c.benchmark_group("model");
    group.sample_size(20);
    for kind in [ModelKind::GlobalAverage, ModelKind::SizeAware] {
        group.bench_with_input(
            BenchmarkId::new("fit", format!("{kind:?}")),
            &kind,
            |b, &kind| b.iter(|| PerfModel::fit(black_box(kind), &baselines, &trace.sizes)),
        );
        let model = PerfModel::fit(kind, &baselines, &trace.sizes);
        let engine = EstimateEngine::new(model, cloudcost::CostModel::default());
        group.bench_with_input(
            BenchmarkId::new("curve", format!("{kind:?}")),
            &kind,
            |b, _| b.iter(|| engine.curve(black_box(&pattern), black_box(&order))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
