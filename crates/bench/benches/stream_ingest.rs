//! Streaming profiler ingest throughput: events/sec through
//! `StreamProfiler::observe` at several memory budgets. The profiler
//! must keep up with a live KV server's request rate, so the per-event
//! cost (a few hashes and counter bumps) is the figure of merit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mnemo_stream::{StreamConfig, StreamProfiler};
use std::hint::black_box;
use ycsb::{AccessEvent, DistKind, WorkloadSpec};

fn bench_ingest(c: &mut Criterion) {
    let spec = WorkloadSpec {
        distribution: DistKind::ScrambledZipfian { theta: 0.99 },
        ..WorkloadSpec::trending().scaled(10_000, 100_000)
    };
    let events: Vec<AccessEvent> = spec.generate(11).events().collect();

    let mut group = c.benchmark_group("stream_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    for budget_kib in [16usize, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("budget_kib", budget_kib),
            &budget_kib,
            |b, &kib| {
                let config = StreamConfig::with_budget_bytes(kib * 1024);
                b.iter(|| {
                    let mut profiler = StreamProfiler::new(config);
                    for event in &events {
                        profiler.observe(black_box(event));
                    }
                    black_box(profiler.events())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
