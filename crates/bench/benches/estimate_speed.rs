//! The Estimate Engine's "instantaneous" claim (§V-B): building the full
//! per-key estimate curve must stay linear and fast as the key space
//! grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kvsim::StoreKind;
use mnemo::{EstimateEngine, ModelKind, PatternEngine, PerfModel, SensitivityEngine};
use std::hint::black_box;
use ycsb::WorkloadSpec;

fn bench_curve_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate_curve");
    group.sample_size(10);
    for keys in [1_000u64, 10_000, 50_000] {
        // Fit once on a small measured run; the curve cost is what scales.
        let small = WorkloadSpec::trending().scaled(200, 2_000).generate(1);
        let baselines = SensitivityEngine::default()
            .measure(StoreKind::Redis, &small)
            .expect("baselines");
        let model = PerfModel::fit(ModelKind::GlobalAverage, &baselines, &small.sizes);

        let trace = WorkloadSpec::trending()
            .scaled(keys, (keys as usize) * 4)
            .generate(1);
        let pattern = PatternEngine::analyze(&trace);
        let order = pattern.hotness_order();
        let engine = EstimateEngine::new(model.clone(), cloudcost::CostModel::default());
        group.throughput(Throughput::Elements(keys));
        group.bench_with_input(BenchmarkId::new("keys", keys), &keys, |b, _| {
            b.iter(|| black_box(engine.curve(&pattern, &order).rows.len()));
        });
    }
    group.finish();
}

fn bench_pattern_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_engine");
    group.sample_size(10);
    for requests in [10_000usize, 100_000, 400_000] {
        let trace = WorkloadSpec::timeline()
            .scaled(10_000, requests)
            .generate(2);
        group.throughput(Throughput::Elements(requests as u64));
        group.bench_with_input(BenchmarkId::new("requests", requests), &requests, |b, _| {
            b.iter(|| black_box(PatternEngine::analyze(&trace).total_requests()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_curve_scaling, bench_pattern_analysis);
criterion_main!(benches);
