//! Sampling throughput of the YCSB-style key choosers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use ycsb::dist::DistKind;

fn bench_choosers(c: &mut Criterion) {
    let kinds: [(&str, DistKind); 6] = [
        ("uniform", DistKind::Uniform),
        ("sequential", DistKind::Sequential),
        ("zipfian", DistKind::Zipfian { theta: 0.99 }),
        ("scrambled", DistKind::ScrambledZipfian { theta: 0.99 }),
        (
            "hotspot",
            DistKind::Hotspot {
                hot_fraction: 0.2,
                hot_op_fraction: 0.8,
            },
        ),
        (
            "latest",
            DistKind::Latest {
                theta: 0.99,
                churn_period: 10,
            },
        ),
    ];
    let mut group = c.benchmark_group("key_choosers");
    group.sample_size(20);
    const DRAWS: u64 = 100_000;
    group.throughput(Throughput::Elements(DRAWS));
    for (name, kind) in kinds {
        group.bench_with_input(BenchmarkId::new("draw", name), &kind, |b, kind| {
            let mut chooser = kind.chooser(10_000);
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut acc = 0u64;
                for _ in 0..DRAWS {
                    acc = acc.wrapping_add(chooser.next(&mut rng));
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    for spec in ycsb::WorkloadSpec::table3() {
        let spec = spec.scaled(10_000, 100_000);
        group.throughput(Throughput::Elements(spec.requests as u64));
        group.bench_with_input(
            BenchmarkId::new("generate", spec.name.clone()),
            &spec,
            |b, spec| {
                b.iter(|| black_box(spec.generate(7).len()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_choosers, bench_trace_generation);
criterion_main!(benches);
