//! Simulation speed of the deployment alternatives (static server,
//! dynamic tierer, cache mode) and of the profiler family (full
//! instrumentation vs PEBS-style sampling vs MnemoT's description-only
//! pattern analysis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kvsim::{CacheModeServer, DynamicConfig, DynamicTieringServer, Placement, Server, StoreKind};
use mnemo::baselines::{InstrumentedProfiler, SamplingProfiler};
use std::hint::black_box;
use ycsb::WorkloadSpec;

fn bench_deployments(c: &mut Criterion) {
    let trace = WorkloadSpec::trending().scaled(500, 8_000).generate(6);
    let budget = trace.dataset_bytes() / 5;
    let mut group = c.benchmark_group("deployments");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));

    group.bench_function(BenchmarkId::new("run", "static"), |b| {
        let mut server = Server::build(StoreKind::Redis, &trace, Placement::AllSlow).unwrap();
        b.iter(|| black_box(server.run(&trace).runtime_ns));
    });
    group.bench_function(BenchmarkId::new("run", "dynamic_tiering"), |b| {
        let mut server =
            DynamicTieringServer::build(StoreKind::Redis, &trace, DynamicConfig::new(budget))
                .unwrap();
        b.iter(|| black_box(server.run(&trace).runtime_ns));
    });
    group.bench_function(BenchmarkId::new("run", "cache_mode"), |b| {
        let mut server = CacheModeServer::build(StoreKind::Redis, &trace, budget).unwrap();
        b.iter(|| black_box(server.run(&trace).runtime_ns));
    });
    group.finish();
}

fn bench_profilers(c: &mut Criterion) {
    let trace = WorkloadSpec::timeline().scaled(1_000, 10_000).generate(6);
    let mut group = c.benchmark_group("profiler_family");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("instrumented_full", |b| {
        b.iter(|| black_box(InstrumentedProfiler::profile(&trace).events));
    });
    for period in [100u64, 1_000, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("sampling", period),
            &period,
            |b, &period| {
                let profiler = SamplingProfiler::new(period);
                b.iter(|| black_box(profiler.profile(&trace).events));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_deployments, bench_profilers);
criterion_main!(benches);
