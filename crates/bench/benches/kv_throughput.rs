//! Simulation speed of the three KV engine models (requests simulated
//! per second of host time) — the practical cost of a Sensitivity Engine
//! run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kvsim::{Placement, Server, StoreKind};
use std::hint::black_box;
use ycsb::WorkloadSpec;

fn bench_engines(c: &mut Criterion) {
    let trace = WorkloadSpec::timeline().scaled(1_000, 10_000).generate(3);
    let mut group = c.benchmark_group("kv_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    for store in [StoreKind::Redis, StoreKind::Memcached, StoreKind::Dynamo] {
        for placement in [Placement::AllFast, Placement::AllSlow] {
            let label = format!("{store}/{placement:?}");
            group.bench_with_input(BenchmarkId::new("run", label), &store, |b, &store| {
                let mut server = Server::build(store, &trace, placement.clone()).expect("server");
                b.iter(|| black_box(server.run(&trace).runtime_ns));
            });
        }
    }
    group.finish();
}

fn bench_sharded(c: &mut Criterion) {
    let trace = WorkloadSpec::timeline().scaled(1_024, 20_000).generate(3);
    let mut group = c.benchmark_group("sharded_cluster");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &n| {
            let cluster =
                kvsim::ShardedCluster::build(StoreKind::Redis, &trace, &Placement::AllFast, n)
                    .expect("cluster");
            b.iter(|| black_box(cluster.run(&trace).runtime_ns));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_sharded);
criterion_main!(benches);
