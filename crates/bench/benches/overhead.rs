//! Table IV's quantitative core: MnemoT's description-only tiering vs
//! the instrumentation-based profiling pipeline on the same workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mnemo::baselines::InstrumentedProfiler;
use mnemo::pattern::PatternEngine;
use mnemo::tiering::MnemoT;
use std::hint::black_box;
use ycsb::WorkloadSpec;

fn bench_profilers(c: &mut Criterion) {
    let trace = WorkloadSpec::timeline().scaled(2_000, 20_000).generate(11);
    let mut group = c.benchmark_group("profiling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("mnemot", "pattern+weights"),
        &trace,
        |b, trace| {
            b.iter(|| {
                let pattern = PatternEngine::analyze(trace);
                black_box(MnemoT::weight_order(&pattern).len())
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("instrumented", "per-line"),
        &trace,
        |b, trace| {
            b.iter(|| black_box(InstrumentedProfiler::profile(trace).events));
        },
    );
    group.finish();
}

criterion_group!(benches, bench_profilers);
criterion_main!(benches);
