//! Heap-allocation accounting for the perf trajectory.
//!
//! Installs a counting [`GlobalAlloc`] wrapper around the system
//! allocator so `mnemo perf` can report *allocation counts* per bench —
//! a deterministic proxy for hot-path heap churn that, unlike wall
//! clock, survives machine-to-machine comparison. The counters are
//! process-wide relaxed atomics: two uncontended `fetch_add`s per
//! allocation, cheap enough to leave on for every bench binary.
//!
//! Counts are deterministic for a fixed binary, argv, and environment
//! when the suite runs single-worker (the perf harness pins `--jobs 1`);
//! toolchain bumps can shift them by a few permille, which is why the
//! compare gate takes a small relative tolerance instead of exact
//! equality (see `perf::Thresholds::alloc_tolerance`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that counts every allocation event
/// (`alloc`, `alloc_zeroed`, and the allocating half of `realloc`).
pub struct CountingAlloc;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// `(allocation events, bytes requested)` since process start.
/// Monotonic; diff two readings to charge a code region.
pub fn allocation_counts() -> (u64, u64) {
    (
        ALLOC_COUNT.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_counted() {
        let (c0, b0) = allocation_counts();
        let v: Vec<u8> = Vec::with_capacity(4096);
        let (c1, b1) = allocation_counts();
        drop(v);
        assert!(c1 > c0, "allocation event counted");
        assert!(b1 - b0 >= 4096, "bytes charged: {}", b1 - b0);
    }
}
