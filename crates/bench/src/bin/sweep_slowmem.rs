//! Extension experiment: how do the savings depend on the SlowMem
//! technology? The paper fixes Table I's throttled-DRAM point (B:0.12,
//! L:3.62); this sweep varies the bandwidth and latency factors across
//! the NVDIMM design space (including an Optane-DC-like point) and
//! reports the Fig. 9 quantity — cost at a 10% slowdown SLO — plus the
//! store sensitivity at each point.

use hybridmem::{HybridSpec, TierSpec};
use kvsim::StoreKind;
use mnemo::advisor::{Advisor, AdvisorConfig, OrderingKind};
use mnemo_bench::{measurement_noise, paper_workload, print_table, seed_for, write_csv};

/// (label, bandwidth factor, latency factor) points across the NVM space.
const POINTS: [(&str, f64, f64); 6] = [
    ("near-DRAM", 0.50, 1.5),
    ("optane-dc-like", 0.25, 2.5),
    ("paper (Table I)", 0.12, 3.62),
    ("slower NVM", 0.08, 5.0),
    ("flash-like", 0.04, 10.0),
    ("extreme", 0.02, 20.0),
];

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    println!("SlowMem technology sweep (Trending, Redis, 10% SLO, p = 0.2)");
    let spec_w = paper_workload("trending")?;
    let trace = spec_w.generate(seed_for(&spec_w.name));

    let results = mnemo_bench::parallel(POINTS.len(), |i| -> Result<_, String> {
        let (label, b, l) = POINTS[i];
        let mut spec = HybridSpec::paper_testbed();
        spec.slow = TierSpec::derived(&spec.fast, b, l);
        spec.cache.capacity_bytes = spec
            .cache
            .capacity_bytes
            .min((trace.dataset_bytes() / 85).max(1 << 16));
        let advisor = Advisor::new(AdvisorConfig {
            spec,
            noise: measurement_noise(3),
            price_factor: 0.2,
            model: mnemo::ModelKind::GlobalAverage,
            ordering: OrderingKind::MnemoT,
            cache_correction: None,
            fault_plan: None,
        });
        let consultation = advisor
            .consult(StoreKind::Redis, &trace)
            .map_err(|e| format!("consultation failed: {e}"))?;
        let rec = consultation
            .recommend(0.10)
            .ok_or("recommendation on an empty curve")?;
        Ok((label, b, l, consultation.baselines.sensitivity(), rec))
    });
    let results = results.into_iter().collect::<Result<Vec<_>, _>>()?;

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (label, b, l, sens, rec) in results {
        rows.push(vec![
            label.to_string(),
            format!("B:{b:.2} L:{l:.2}"),
            format!("{:+.1}%", sens * 100.0),
            format!("{:.2}x", rec.cost_reduction),
            format!("{:.0}%", rec.fast_ratio * 100.0),
        ]);
        csv.push(format!(
            "{label},{b},{l},{sens:.5},{:.4},{:.4}",
            rec.cost_reduction, rec.fast_ratio
        ));
    }
    print_table(
        "cost at 10% SLO vs SlowMem speed",
        &[
            "technology",
            "factors",
            "fast-vs-slow gain",
            "cost",
            "FastMem share",
        ],
        &rows,
    );
    write_csv(
        "sweep_slowmem.csv",
        "label,bandwidth_factor,latency_factor,sensitivity,cost_reduction,fast_ratio",
        &csv,
    )?;
    println!("\nExpected shape: the faster the NVM, the less FastMem the SLO needs and the");
    println!("closer the bill falls to the 0.20 floor; very slow NVM forces FastMem to hold");
    println!("most of the hot set and erodes the savings.");
    Ok(())
}
