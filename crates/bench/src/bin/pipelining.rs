//! Extension experiment: client pipelining vs the cost trade-off.
//!
//! The paper's testbed drives one synchronous YCSB client, so every
//! request pays a full network/protocol round trip — the fixed cost that
//! *masks* memory time and caps Redis' Fast-vs-Slow gap at ~40%. Real
//! Redis deployments pipeline. Amortising the fixed cost across a batch
//! exposes memory time: the same workload becomes far more
//! hybrid-memory-sensitive, and the 10%-slowdown SLO suddenly demands
//! much more FastMem.

use kvsim::{Placement, Server, StoreKind};
use mnemo::advisor::{Advisor, AdvisorConfig, OrderingKind};
use mnemo::sensitivity::{BaselineRun, Baselines};
use mnemo_bench::{paper_workload, print_table, seed_for, testbed_for, write_csv};

const DEPTHS: [u32; 4] = [1, 4, 16, 64];

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    println!("Pipelining: amortised fixed cost exposes memory time (Trending, Redis)");
    let spec = paper_workload("trending")?;
    let trace = spec.generate(seed_for(&spec.name));
    let testbed = testbed_for(&trace);

    let results = mnemo_bench::parallel(DEPTHS.len(), |i| -> Result<_, String> {
        let depth = DEPTHS[i];
        let run = |placement: Placement| -> Result<_, String> {
            Ok(Server::build_with(
                StoreKind::Redis,
                testbed.clone(),
                hybridmem::clock::NoiseConfig::disabled(),
                &trace,
                placement,
            )
            .map_err(|e| format!("server build failed: {e}"))?
            .run_pipelined(&trace, depth))
        };
        let fast_report = run(Placement::AllFast)?;
        let slow_report = run(Placement::AllSlow)?;
        let sensitivity = fast_report.throughput_ops_s() / slow_report.throughput_ops_s() - 1.0;

        // Feed the pipelined baselines through the normal Mnemo pipeline.
        let baselines = Baselines {
            store: StoreKind::Redis,
            workload: trace.name.clone(),
            fast: BaselineRun {
                tier: hybridmem::MemTier::Fast,
                runtime_ns: fast_report.runtime_ns,
                avg_read_ns: fast_report.avg_read_ns(),
                avg_write_ns: fast_report.avg_write_ns(),
                report: fast_report,
            },
            slow: BaselineRun {
                tier: hybridmem::MemTier::Slow,
                runtime_ns: slow_report.runtime_ns,
                avg_read_ns: slow_report.avg_read_ns(),
                avg_write_ns: slow_report.avg_write_ns(),
                report: slow_report,
            },
        };
        let advisor = Advisor::new(AdvisorConfig {
            spec: testbed.clone(),
            ordering: OrderingKind::MnemoT,
            ..AdvisorConfig::default()
        });
        let consultation = advisor
            .consult_with_baselines(baselines, &trace)
            .map_err(|e| format!("consultation failed: {e}"))?;
        let rec = consultation
            .recommend(0.10)
            .ok_or("estimate curve is empty")?;
        Ok((depth, sensitivity, rec))
    });
    let results = results.into_iter().collect::<Result<Vec<_>, _>>()?;

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (depth, sensitivity, rec) in &results {
        rows.push(vec![
            depth.to_string(),
            format!("{:+.1}%", sensitivity * 100.0),
            format!("{:.2}x", rec.cost_reduction),
            format!("{:.0}%", rec.fast_ratio * 100.0),
        ]);
        csv.push(format!(
            "{depth},{sensitivity:.5},{:.4},{:.4}",
            rec.cost_reduction, rec.fast_ratio
        ));
    }
    print_table(
        "pipeline depth vs sensitivity and cost at the 10% SLO",
        &["depth", "fast-vs-slow gain", "cost", "FastMem share"],
        &rows,
    );
    write_csv(
        "pipelining.csv",
        "depth,sensitivity,cost_reduction,fast_ratio",
        &csv,
    )?;
    println!("\nReading: the paper's ~40% gap is an artifact of a synchronous client.");
    println!("Pipelined clients amortise the fixed cost, memory dominates, and the same");
    println!("SLO needs much more FastMem — cost sizing depends on the client model too.");
    Ok(())
}
