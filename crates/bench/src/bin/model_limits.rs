//! Extension experiment: where Mnemo's model breaks — storage-engaged
//! stores (the paper's §V "Target applications" caveat, made
//! quantitative).
//!
//! The RocksDB-like engine serves part of its reads from a simulated SSD
//! through a block cache. Disk time is placement-*independent*, and
//! which keys enjoy memory speed depends on block-cache residency — two
//! properties the baseline-average model cannot express. The same
//! pipeline that achieves ~0.1% median error on Redis should visibly
//! degrade here.

use kvsim::StoreKind;
use mnemo::accuracy::{ErrorStats, EvalPoint};
use mnemo::advisor::OrderingKind;
use mnemo_bench::{consult, eval_points, paper_workload, print_table, seed_for, write_csv};

const POINTS: usize = 9;

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    println!("Model limits: in-memory store vs storage-engaged store (Trending)");
    let spec = paper_workload("trending")?;
    let trace = spec.generate(seed_for(&spec.name));

    let results = mnemo_bench::parallel(2, |i| -> Result<_, String> {
        let store = if i == 0 {
            StoreKind::Redis
        } else {
            StoreKind::Rocks
        };
        let consultation = consult(store, &trace, OrderingKind::TouchOrder)?;
        let points = eval_points(store, &trace, &consultation, POINTS)?;
        let sensitivity = consultation.baselines.sensitivity();
        Ok((store, sensitivity, points))
    });
    let results = results.into_iter().collect::<Result<Vec<_>, _>>()?;

    let mut csv = Vec::new();
    let mut rows = Vec::new();
    for (store, sensitivity, points) in &results {
        let errors: Vec<f64> = points.iter().map(EvalPoint::error_pct).collect();
        let stats = ErrorStats::from_errors(&errors);
        for p in points {
            csv.push(format!(
                "{store},{:.4},{:.1},{:.1},{:+.3}",
                p.cost_reduction,
                p.measured_ops_s,
                p.estimated_ops_s,
                p.error_pct()
            ));
        }
        rows.push(vec![
            store.to_string(),
            format!("{:+.1}%", sensitivity * 100.0),
            format!("{:.3}%", stats.median),
            format!("{:.3}%", stats.q3),
            format!("{:.3}%", stats.max),
        ]);
    }
    print_table(
        "estimate error: target-class store vs storage-engaged store",
        &[
            "store",
            "fast-vs-slow gain",
            "median |err|",
            "q3",
            "max |err|",
        ],
        &rows,
    );
    write_csv(
        "model_limits.csv",
        "store,cost_reduction,measured_ops_s,estimated_ops_s,error_pct",
        &csv,
    )?;
    let redis_med = {
        let (_, _, pts) = &results[0];
        ErrorStats::from_errors(&pts.iter().map(EvalPoint::error_pct).collect::<Vec<_>>()).median
    };
    let rocks_med = {
        let (_, _, pts) = &results[1];
        ErrorStats::from_errors(&pts.iter().map(EvalPoint::error_pct).collect::<Vec<_>>()).median
    };
    println!(
        "\nThe storage-engaged store's median error is {:.1}x the in-memory store's —",
        rocks_med / redis_med.max(1e-9)
    );
    println!("the paper's \"Target applications\" caveat, quantified: disk time is");
    println!("placement-independent, so the per-key promotion benefits the model assigns");
    println!("from baseline averages misattribute the gap.");
    Ok(())
}
