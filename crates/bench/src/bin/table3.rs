//! Table III — the custom YCSB workloads and their parameters.

use mnemo_bench::{paper_workloads, print_table};
use ycsb::SizeModel;

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    let rows: Vec<Vec<String>> = paper_workloads()
        .iter()
        .map(|w| {
            let sizes = match &w.sizes {
                SizeModel::Single(c) => c.name().to_string(),
                SizeModel::Mixed(parts) => parts
                    .iter()
                    .map(|(c, _)| c.name())
                    .collect::<Vec<_>>()
                    .join(" + "),
                SizeModel::Lognormal { median_bytes, .. } => {
                    format!("lognormal ~{median_bytes} B")
                }
            };
            let rf = w.read_fraction();
            let ratio = format!(
                "{}:{}",
                (rf * 100.0).round() as u32,
                ((1.0 - rf) * 100.0).round() as u32
            );
            vec![
                w.name.clone(),
                w.distribution.name().to_string(),
                ratio,
                sizes,
                w.keys.to_string(),
                w.requests.to_string(),
                w.use_case.clone(),
            ]
        })
        .collect();
    print_table(
        "Table III: custom YCSB workloads",
        &[
            "Workload",
            "Distribution",
            "R:W",
            "Record sizes",
            "Keys",
            "Requests",
            "Use case",
        ],
        &rows,
    );
    Ok(())
}
