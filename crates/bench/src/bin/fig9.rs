//! Fig. 9 — cost reduction across all workloads and key-value stores for
//! performance within a 10% permissible application slowdown. Lower is
//! better; the floor is 0.20 (SlowMem-only at p = 0.2).

use mnemo::advisor::OrderingKind;
use mnemo_bench::{consult, paper_workloads, print_table, seed_for, stores, write_csv};

const SLO_SLOWDOWN: f64 = 0.10;

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    println!("Fig. 9: cost reduction at a 10% slowdown SLO (p = 0.2 floor)");
    let workloads = paper_workloads();
    let jobs: Vec<(usize, usize)> = (0..stores().len())
        .flat_map(|s| (0..workloads.len()).map(move |w| (s, w)))
        .collect();
    let results = mnemo_bench::parallel(jobs.len(), |i| -> Result<_, String> {
        let (s, w) = jobs[i];
        let store = stores()[s];
        let spec = &workloads[w];
        let trace = spec.generate(seed_for(&spec.name));
        let consultation = consult(store, &trace, OrderingKind::MnemoT)?;
        let rec = consultation
            .recommend(SLO_SLOWDOWN)
            .ok_or("recommendation on an empty curve")?;
        Ok((s, w, rec))
    });
    let results = results.into_iter().collect::<Result<Vec<_>, _>>()?;

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (w, spec) in workloads.iter().enumerate() {
        let mut row = vec![spec.name.clone()];
        for (s, store) in stores().iter().enumerate() {
            let rec = results
                .iter()
                .find(|(rs, rw, _)| *rs == s && *rw == w)
                .map(|(_, _, r)| r)
                .ok_or("job result missing from sweep output")?;
            row.push(format!(
                "{:.2} ({:>3.0}% fast)",
                rec.cost_reduction,
                rec.fast_ratio * 100.0
            ));
            csv.push(format!(
                "{},{},{:.4},{:.4},{:.4}",
                spec.name, store, rec.cost_reduction, rec.fast_ratio, rec.est_slowdown
            ));
        }
        rows.push(row);
    }
    print_table(
        "cost relative to FastMem-only (and FastMem capacity share chosen)",
        &["workload", "Redis", "DynamoDB", "Memcached"],
        &rows,
    );
    write_csv(
        "fig9_cost_reduction.csv",
        "workload,store,cost_reduction,fast_ratio,est_slowdown",
        &csv,
    )?;
    println!("\nPaper shape: Memcached hits the 0.20 floor everywhere; Redis saves most on");
    println!("trending-style workloads; News Feed offers little; DynamoDB saves ~20-30% at best.");
    Ok(())
}
