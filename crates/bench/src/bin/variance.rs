//! Measurement variance: the paper reports "the mean of multiple
//! experiments runs" and folds run-to-run variability into its error
//! analysis. This binary quantifies the reproduction's equivalent: the
//! spread of measured throughput and of the estimate error across
//! independently-seeded measurement campaigns.

use kvsim::StoreKind;
use mnemo::accuracy::EvalPoint;
use mnemo::advisor::OrderingKind;
use mnemo_bench::{consult, paper_workload, print_table, seed_for, testbed_for, write_csv};

const RUNS: usize = 8;
const POINTS: usize = 5;

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    println!("Measurement variance across {RUNS} independently-jittered runs (Trending, Redis)");
    let spec = paper_workload("trending")?;
    let trace = spec.generate(seed_for(&spec.name));
    let consultation = consult(StoreKind::Redis, &trace, OrderingKind::TouchOrder)?;

    // One evaluation campaign per noise seed.
    let campaigns = mnemo_bench::parallel(RUNS, |i| -> Result<_, String> {
        mnemo::accuracy::evaluate(
            StoreKind::Redis,
            &trace,
            &consultation,
            &testbed_for(&trace),
            hybridmem::clock::NoiseConfig::default_jitter(1000 + i as u64),
            POINTS,
        )
        .map_err(|e| format!("evaluation failed: {e}"))
    });
    let campaigns: Vec<Vec<EvalPoint>> = campaigns.into_iter().collect::<Result<_, _>>()?;

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for p in 0..POINTS {
        let throughputs: Vec<f64> = campaigns.iter().map(|c| c[p].measured_ops_s).collect();
        let errors: Vec<f64> = campaigns.iter().map(|c| c[p].error_pct().abs()).collect();
        let mean = throughputs.iter().sum::<f64>() / RUNS as f64;
        let sd = (throughputs.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / RUNS as f64).sqrt();
        let mean_err = errors.iter().sum::<f64>() / RUNS as f64;
        let cost = campaigns[0][p].cost_reduction;
        rows.push(vec![
            format!("{cost:.2}"),
            format!("{mean:8.1}"),
            format!("{sd:6.1}"),
            format!("{:.3}%", sd / mean * 100.0),
            format!("{mean_err:.3}%"),
        ]);
        csv.push(format!("{cost:.4},{mean:.2},{sd:.2},{mean_err:.4}"));
    }
    print_table(
        "throughput mean ± sd and mean |estimate error| per capacity point",
        &["cost (xFast)", "mean ops/s", "sd", "cv", "mean |err|"],
        &rows,
    );
    write_csv(
        "variance.csv",
        "cost_reduction,mean_ops_s,sd_ops_s,mean_abs_err_pct",
        &csv,
    )?;
    println!("\nWith 2% per-request jitter over 100k requests, run-to-run throughput");
    println!("variation is tiny (law of large numbers), which is why the paper can");
    println!("report a 0.07% median estimate error from physical measurements.");
    Ok(())
}
