//! Online vs offline Pattern Engine (extension experiment).
//!
//! Streams a 1M-request scrambled-zipfian workload through the bounded
//! [`mnemo_stream::StreamProfiler`] at several memory budgets and feeds
//! the reconstructed pattern to the advisor, comparing the resulting SLO
//! sweet spot against the exact offline MnemoT consultation that sees
//! every request. Shows the accuracy a few KiB of sketches buy: the cost
//! factor converges onto the exact one as the budget grows.
//!
//! `MNEMO_SCALE` shrinks the stream for CI (divisor, default 1).

use kvsim::StoreKind;
use mnemo::advisor::Advisor;
use mnemo::sensitivity::SensitivityEngine;
use mnemo_bench::{measurement_noise, print_table, scale_divisor, testbed_for, write_csv};
use mnemo_stream::{StreamConfig, StreamProfiler};
use ycsb::{DistKind, WorkloadSpec};

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    let d = scale_divisor();
    let keys = (10_000u64 / d).max(100);
    let requests = (1_000_000usize / d as usize).max(1_000);
    let spec = WorkloadSpec {
        distribution: DistKind::ScrambledZipfian { theta: 0.99 },
        ..WorkloadSpec::trending().scaled(keys, requests)
    };
    let trace = spec.generate(42);
    println!(
        "streaming the '{}' workload: {} keys, {} requests, {:.1} MB dataset",
        trace.name,
        trace.keys(),
        trace.len(),
        trace.dataset_bytes() as f64 / 1e6
    );

    let slo = 0.10;
    let config = mnemo::advisor::AdvisorConfig {
        spec: testbed_for(&trace),
        noise: measurement_noise(7),
        ..mnemo::advisor::AdvisorConfig::default()
    };
    let baselines = SensitivityEngine::new(config.spec.clone(), config.noise)
        .measure(StoreKind::Redis, &trace)
        .map_err(|e| format!("baseline measurement failed: {e}"))?;
    let advisor = Advisor::new(config);

    // The reference: the offline Pattern Engine with exact per-key stats.
    let exact = advisor
        .consult_with_baselines(baselines.clone(), &trace)
        .map_err(|e| format!("offline consultation failed: {e}"))?
        .recommend(slo)
        .ok_or("offline estimate curve is empty")?;
    println!(
        "exact offline MnemoT @{:.0}% SLO: {:.1}% FastMem bytes, cost {:.3}x\n",
        slo * 100.0,
        exact.fast_ratio * 100.0,
        exact.cost_reduction
    );

    let budgets_kib = [8usize, 16, 32, 64, 128, 256];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &kib in &budgets_kib {
        let mut profiler = StreamProfiler::new(StreamConfig::with_budget_bytes(kib * 1024));
        for event in trace.events() {
            profiler.observe(&event);
        }
        let approx = profiler.approx_pattern();
        let head = approx.head_keys.len();
        let streamed = advisor
            .consult_with_pattern(baselines.clone(), approx.pattern)
            .map_err(|e| format!("streaming consultation failed: {e}"))?
            .recommend(slo)
            .ok_or("streamed estimate curve is empty")?;
        let rel_err = (streamed.cost_reduction - exact.cost_reduction).abs() / exact.cost_reduction;
        rows.push(vec![
            format!("{kib}"),
            format!("{:.1}", profiler.memory_bytes() as f64 / 1024.0),
            format!("{head}"),
            format!("{}", profiler.distinct_keys()),
            format!("{:.1}%", streamed.fast_ratio * 100.0),
            format!("{:.3}x", streamed.cost_reduction),
            format!("{:.1}%", 100.0 * rel_err),
        ]);
        csv.push(format!(
            "{kib},{},{head},{},{:.6},{:.6},{:.6},{:.6}",
            profiler.memory_bytes(),
            profiler.distinct_keys(),
            streamed.fast_ratio,
            streamed.cost_reduction,
            exact.cost_reduction,
            rel_err
        ));
    }
    print_table(
        "sketch budget vs advisor accuracy (exact cost is the target)",
        &[
            "budget KiB",
            "used KiB",
            "head keys",
            "distinct est",
            "fast bytes",
            "cost",
            "err vs exact",
        ],
        &rows,
    );
    write_csv(
        "streaming_accuracy.csv",
        "budget_kib,used_bytes,head_keys,distinct_est,fast_ratio,cost_stream,cost_exact,rel_err",
        &csv,
    )?;
    Ok(())
}
