//! Table II — performance baselines, capacity sizings and memory cost
//! reduction factors (p = 0.2).

use cloudcost::CostModel;
use mnemo_bench::print_table;

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    let model = CostModel::default();
    let total: u64 = 1 << 30; // a nominal 1 GiB dataset (C bytes)
    let rows = model.table2(total, 0.2);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, p)| {
            vec![
                name.clone(),
                format!("{} bytes", p.fast_bytes),
                format!("{} bytes", p.slow_bytes),
                format!("{:.2}", p.reduction_factor),
            ]
        })
        .collect();
    print_table(
        "Table II: baselines and cost reduction (p = 0.2)",
        &["Runtime", "FastMem", "SlowMem", "Cost factor"],
        &table,
    );
    println!("\nSweep of R(p) over FastMem ratio:");
    for point in model.sweep(total, 11) {
        let ratio = point.fast_bytes as f64 / total as f64;
        println!(
            "  fast ratio {:4.1}% -> cost {:.3}x",
            ratio * 100.0,
            point.reduction_factor
        );
    }
    Ok(())
}
