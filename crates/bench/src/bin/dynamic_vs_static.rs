//! Extension experiment: Mnemo's static placement vs a migrating
//! dynamic tierer (the "existing tiering solution" class of Fig. 2b), at
//! an equal FastMem budget.
//!
//! Expected shape: on stable patterns (trending, timeline) the static
//! placement Mnemo produces matches the dynamic tierer, which wastes
//! time migrating; on sliding patterns (news feed) only migration tracks
//! the hot window — quantifying the paper's scoping statement that Mnemo
//! offers "a static key allocation, with no support for dynamic data
//! migration".

use kvsim::{DynamicConfig, DynamicTieringServer, Server, StoreKind};
use mnemo::advisor::OrderingKind;
use mnemo::placement::PlacementEngine;
use mnemo_bench::{consult, paper_workloads, print_table, seed_for, testbed_for, write_csv};

const BUDGET_FRACTION: f64 = 0.2; // 20% of the dataset in FastMem

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    println!(
        "Static (Mnemo) vs dynamic tiering at a {:.0}% FastMem budget (Redis)",
        BUDGET_FRACTION * 100.0
    );
    let workloads = paper_workloads();
    let results = mnemo_bench::parallel(workloads.len(), |i| -> Result<_, String> {
        let spec = &workloads[i];
        let trace = spec.generate(seed_for(&spec.name));
        let budget = (trace.dataset_bytes() as f64 * BUDGET_FRACTION) as u64;
        let testbed = testbed_for(&trace);

        // Mnemo: static placement from the MnemoT ordering at the budget.
        let consultation = consult(StoreKind::Redis, &trace, OrderingKind::MnemoT)?;
        let placement =
            PlacementEngine::placement_for_budget(&consultation.order, &trace.sizes, budget);
        let static_report = Server::build_with(
            StoreKind::Redis,
            testbed.clone(),
            hybridmem::clock::NoiseConfig::disabled(),
            &trace,
            placement,
        )
        .map_err(|e| format!("static server build failed: {e}"))?
        .run(&trace);

        // Dynamic tierer at the same budget (discovers the hot set online,
        // pays migration time).
        let mut dynamic = DynamicTieringServer::build_with(
            StoreKind::Redis,
            testbed,
            &trace,
            DynamicConfig {
                epoch_requests: 2_000,
                decay: 0.7,
                ..DynamicConfig::new(budget)
            },
        )
        .map_err(|e| format!("dynamic server build failed: {e}"))?;
        let dynamic_report = dynamic.run(&trace);
        let stats = dynamic.migration_stats();
        Ok((spec.name.clone(), static_report, dynamic_report, stats))
    });
    let results = results.into_iter().collect::<Result<Vec<_>, _>>()?;

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, stat, dyn_, mig) in &results {
        let ratio = dyn_.throughput_ops_s() / stat.throughput_ops_s();
        rows.push(vec![
            name.clone(),
            format!("{:8.0}", stat.throughput_ops_s()),
            format!("{:8.0}", dyn_.throughput_ops_s()),
            format!("{:+5.1}%", (ratio - 1.0) * 100.0),
            format!("{}", mig.promotions + mig.demotions),
            format!("{:.1} ms", mig.migration_ns / 1e6),
        ]);
        csv.push(format!(
            "{name},{:.1},{:.1},{},{:.3}",
            stat.throughput_ops_s(),
            dyn_.throughput_ops_s(),
            mig.promotions + mig.demotions,
            mig.migration_ns / 1e6
        ));
    }
    print_table(
        "measured throughput (ops/s): Mnemo static vs migrating tierer",
        &[
            "workload",
            "static",
            "dynamic",
            "dyn vs static",
            "migrations",
            "migration time",
        ],
        &rows,
    );
    write_csv(
        "dynamic_vs_static.csv",
        "workload,static_ops_s,dynamic_ops_s,migrations,migration_ms",
        &csv,
    )?;
    println!("\nReading: on stable hot sets Mnemo's one-shot placement wins outright — the");
    println!("tierer pays migration bandwidth for nothing. On news feed the gap narrows but");
    println!("whether migration *wins* depends on how fast the window slides vs how fast");
    println!("data can be copied, which the churn sweep below isolates.");

    churn_sweep()?;
    Ok(())
}

/// News-feed churn sweep: slow the content churn (requests per new item)
/// and watch dynamic tiering cross from losing to winning.
fn churn_sweep() -> Result<(), mnemo_bench::HarnessError> {
    println!("\n--- news feed churn sweep (Redis, dynamic vs static) ---");
    let base = mnemo_bench::paper_workload("news feed")?;
    let sweep: Vec<u64> = vec![
        (base.requests as u64 / base.keys).max(1), // paper pace: window rotates once per trace
        4 * (base.requests as u64 / base.keys).max(1),
        16 * (base.requests as u64 / base.keys).max(1),
    ];
    let results = mnemo_bench::parallel(sweep.len(), |i| -> Result<_, String> {
        let churn_period = sweep[i];
        let mut spec = base.clone();
        spec.distribution = ycsb::DistKind::Latest {
            theta: 0.99,
            churn_period,
        };
        spec.name = format!("news feed (churn 1/{churn_period})");
        let trace = spec.generate(seed_for(&spec.name));
        let budget = (trace.dataset_bytes() as f64 * BUDGET_FRACTION) as u64;
        let testbed = testbed_for(&trace);

        let consultation = consult(StoreKind::Redis, &trace, OrderingKind::MnemoT)?;
        let placement =
            PlacementEngine::placement_for_budget(&consultation.order, &trace.sizes, budget);
        let static_report = Server::build_with(
            StoreKind::Redis,
            testbed.clone(),
            hybridmem::clock::NoiseConfig::disabled(),
            &trace,
            placement,
        )
        .map_err(|e| format!("static server build failed: {e}"))?
        .run(&trace);
        let mut dynamic = DynamicTieringServer::build_with(
            StoreKind::Redis,
            testbed,
            &trace,
            DynamicConfig {
                epoch_requests: 2_000,
                decay: 0.7,
                ..DynamicConfig::new(budget)
            },
        )
        .map_err(|e| format!("dynamic server build failed: {e}"))?;
        let dynamic_report = dynamic.run(&trace);
        Ok((
            churn_period,
            static_report.throughput_ops_s(),
            dynamic_report.throughput_ops_s(),
        ))
    });
    let results = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(churn, st, dy)| {
            vec![
                format!("1 new item / {churn} requests"),
                format!("{st:8.0}"),
                format!("{dy:8.0}"),
                format!("{:+5.1}%", (dy / st - 1.0) * 100.0),
            ]
        })
        .collect();
    print_table(
        "churn pace vs who wins",
        &["content churn", "static", "dynamic", "dyn vs static"],
        &rows,
    );
    println!("Observed: epoch-granular migration never actually wins here — news feed's");
    println!("recency skew concentrates on the *newest* items, whose hottest moment has");
    println!("passed by the time an epoch boundary promotes them. The gap is smallest at");
    println!("moderate churn (enough reuse per item to reward tracking, little enough");
    println!("migration bandwidth). This reinforces Fig. 9: news-feed-like patterns simply");
    println!("need DRAM; neither static placement nor page migration recovers the gap.");
    Ok(())
}
