//! Table I harness entry point; the body lives in
//! `mnemo_bench::suite::table1` so `mnemo perf` can run it in-process.

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    mnemo_bench::suite::table1::run().map(|_| ())
}
