//! Serving-layer throughput harness entry point; the body lives in
//! `mnemo_bench::suite::serve_throughput` so `mnemo perf` can run it
//! in-process.
//!
//! `MNEMO_SCALE` shrinks the streams for CI (divisor, default 1).

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    mnemo_bench::suite::serve_throughput::run(mnemo_bench::scale_divisor()).map(|_| ())
}
