//! §V "Workload downsampling" — Mnemo's estimate stays accurate when the
//! baselines are measured on a randomly downsampled trace, and the
//! downsized workload is affected by hybrid memory to the same degree as
//! the original.

use kvsim::StoreKind;
use mnemo::accuracy::{evaluate, ErrorStats, EvalPoint};
use mnemo::advisor::OrderingKind;
use mnemo::ModelKind;
use mnemo_bench::{
    measurement_noise, paper_advisor, paper_workload, print_table, seed_for, testbed_for, write_csv,
};
use ycsb::sample::downsample;

const FACTORS: [usize; 5] = [1, 2, 4, 8, 16];
const POINTS: usize = 7;

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    println!("Downsampling: estimate accuracy from sampled baselines (Trending, Redis)");
    let spec = paper_workload("trending")?;
    let full = spec.generate(seed_for(&spec.name));

    let results = mnemo_bench::parallel(FACTORS.len(), |i| -> Result<_, String> {
        let factor = FACTORS[i];
        let sampled = downsample(&full, factor, 99);
        // Profile (baselines + pattern + curve) on the *sampled* trace...
        let advisor = paper_advisor(&sampled, OrderingKind::TouchOrder, ModelKind::GlobalAverage);
        let consultation = advisor
            .consult(StoreKind::Redis, &sampled)
            .map_err(|e| format!("consultation failed: {e}"))?;
        // ...then check the estimate against measured runs of the sampled
        // workload, and compare its sensitivity with the full one.
        let points = evaluate(
            StoreKind::Redis,
            &sampled,
            &consultation,
            &testbed_for(&sampled),
            measurement_noise(5),
            POINTS,
        )
        .map_err(|e| format!("evaluation failed: {e}"))?;
        let sensitivity = consultation.baselines.sensitivity();
        Ok((factor, sampled.len(), sensitivity, points))
    });
    let results = results.into_iter().collect::<Result<Vec<_>, _>>()?;

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let full_sensitivity = results[0].2;
    for (factor, requests, sensitivity, points) in &results {
        let errors: Vec<f64> = points.iter().map(EvalPoint::error_pct).collect();
        let stats = ErrorStats::from_errors(&errors);
        rows.push(vec![
            format!("1/{factor}"),
            requests.to_string(),
            format!("{:+.1}%", sensitivity * 100.0),
            format!("{:.3}%", stats.median),
            format!("{:.3}%", stats.max),
        ]);
        csv.push(format!(
            "{factor},{requests},{sensitivity:.5},{:.4},{:.4}",
            stats.median, stats.max
        ));
    }
    print_table(
        "sampled-workload baselines: sensitivity preserved, estimate accurate",
        &[
            "sample",
            "requests",
            "fast-vs-slow gain",
            "median |err|",
            "max |err|",
        ],
        &rows,
    );
    println!(
        "\nFull-workload sensitivity {:+.1}%; all sampled runs must stay close.",
        full_sensitivity * 100.0
    );
    write_csv(
        "downsampling.csv",
        "factor,requests,sensitivity,median_err_pct,max_err_pct",
        &csv,
    )?;
    Ok(())
}
