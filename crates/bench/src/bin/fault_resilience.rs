//! Robustness experiment: fault intensity vs SLO attainment.
//!
//! Sweeps a seeded fault plan from nominal to severe — SlowMem latency
//! spikes, bandwidth throttles and migration failures scaling together —
//! and reports, per intensity:
//!
//! * what the advisor recommends under the faulted baselines and whether
//!   that recommendation still meets the healthy-hardware SLO (or comes
//!   back tagged with a machine-readable [`mnemo::advisor::DegradedReason`]);
//! * the measured slowdown of the advised static placement replayed
//!   through the faulted server vs the clean run;
//! * the dynamic tierer's retry/fallback behaviour under the same plan.
//!
//! Everything is keyed off the plan seed and the virtual clock, so the
//! whole sweep is byte-identical for every `--jobs` value — the export
//! joins the CI bench-smoke determinism gate.

use kvsim::{DynamicConfig, DynamicTieringServer, Server, StoreKind};
use mnemo::advisor::{Advisor, AdvisorConfig, OrderingKind};
use mnemo::placement::PlacementEngine;
use mnemo_bench::{measurement_noise, print_table, testbed_for, write_csv};
use mnemo_faults::{FaultEvent, FaultPlan};
use ycsb::WorkloadSpec;

const SLO_SLOWDOWN: f64 = 0.10;
const PLAN_SEED: u64 = 2026;
/// Past every virtual timestamp the runs reach: the windows cover the
/// whole replay.
const FOREVER_NS: u128 = u128::MAX;

/// The sweep axis: 0.0 = healthy hardware, 1.0 = severe degradation.
const INTENSITIES: [f64; 6] = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];

/// A whole-run fault plan at the given intensity. The latency and
/// bandwidth factors scale hard enough that the LLC cannot hide them.
fn plan_at(intensity: f64) -> FaultPlan {
    let mut plan = FaultPlan::new(PLAN_SEED);
    if intensity <= 0.0 {
        return plan;
    }
    plan = plan
        .with(FaultEvent::LatencySpike {
            tier: hybridmem::MemTier::Slow.id(),
            start_ns: 0,
            end_ns: FOREVER_NS,
            factor: 1.0 + 40.0 * intensity,
        })
        .with(FaultEvent::BandwidthThrottle {
            tier: hybridmem::MemTier::Slow.id(),
            start_ns: 0,
            end_ns: FOREVER_NS,
            factor: 1.0 / (1.0 + 15.0 * intensity),
        })
        .with(FaultEvent::MigrationFailure {
            start_ns: 0,
            end_ns: FOREVER_NS,
            probability: 0.9 * intensity,
        });
    plan
}

fn advisor_with(trace: &ycsb::Trace, plan: Option<FaultPlan>) -> Advisor {
    Advisor::new(AdvisorConfig {
        spec: testbed_for(trace),
        noise: measurement_noise(7),
        price_factor: 0.2,
        model: mnemo::ModelKind::GlobalAverage,
        ordering: OrderingKind::MnemoT,
        cache_correction: None,
        fault_plan: plan,
    })
}

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    println!(
        "Fault resilience: fault intensity vs attainment of a {:.0}% slowdown SLO (Redis, trending)",
        SLO_SLOWDOWN * 100.0
    );
    let trace = WorkloadSpec::trending().scaled(300, 8_000).generate(11);
    let testbed = testbed_for(&trace);

    // The healthy consultation anchors the SLO: "within 10% of what the
    // hardware delivered before it degraded".
    let healthy = advisor_with(&trace, None)
        .consult(StoreKind::Redis, &trace)
        .map_err(|e| format!("healthy consultation failed: {e}"))?;
    let healthy_fast_ops = healthy.curve.fast_only().est_throughput_ops_s;

    let results = mnemo_bench::parallel(INTENSITIES.len(), |i| -> Result<_, String> {
        let intensity = INTENSITIES[i];
        let plan = plan_at(intensity);

        // Advise on the faulted hardware, judged against the healthy SLO.
        let consultation = advisor_with(&trace, Some(plan.clone()))
            .consult(StoreKind::Redis, &trace)
            .map_err(|e| format!("faulted consultation failed: {e}"))?;
        let resilient = consultation.recommend_resilient_vs(SLO_SLOWDOWN, Some(healthy_fast_ops));

        // Replay the advised placement through clean and faulted servers.
        let placement = PlacementEngine::placement_for_budget(
            &consultation.order,
            &trace.sizes,
            resilient.recommendation.fast_bytes,
        );
        let build = |faulted: bool| -> Result<_, String> {
            let mut server = Server::build_with(
                StoreKind::Redis,
                testbed.clone(),
                hybridmem::clock::NoiseConfig::disabled(),
                &trace,
                placement.clone(),
            )
            .map_err(|e| format!("server build failed: {e}"))?;
            if faulted {
                server.install_fault_plan(&plan);
            }
            Ok(server.run(&trace))
        };
        let clean = build(false)?;
        let faulted = build(true)?;
        let measured_slowdown = 1.0 - faulted.throughput_ops_s() / clean.throughput_ops_s();

        // The dynamic tierer under the same plan: migrations fail with
        // the plan's probability and retreat through capped backoff.
        let budget = (trace.dataset_bytes() as f64 * 0.2) as u64;
        let mut dynamic = DynamicTieringServer::build_with(
            StoreKind::Redis,
            testbed.clone(),
            &trace,
            DynamicConfig {
                epoch_requests: 2_000,
                decay: 0.7,
                ..DynamicConfig::new(budget)
            },
        )
        .map_err(|e| format!("dynamic server build failed: {e}"))?;
        dynamic.install_fault_plan(&plan);
        dynamic.run(&trace);
        let mig = dynamic.migration_stats();

        Ok((intensity, resilient, measured_slowdown, mig))
    });
    let results = results.into_iter().collect::<Result<Vec<_>, _>>()?;

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut tel = mnemo_telemetry::Recorder::new();
    for (intensity, resilient, measured_slowdown, mig) in &results {
        let rec = &resilient.recommendation;
        let tag = match resilient.degraded {
            None => "compliant".to_string(),
            Some(reason) => format!("{reason:?}"),
        };
        rows.push(vec![
            format!("{intensity:.1}"),
            format!("{:.3}", rec.est_slowdown),
            format!("{:3.0}%", rec.fast_ratio * 100.0),
            if resilient.is_compliant() {
                "yes"
            } else {
                "no"
            }
            .to_string(),
            format!("{:.3}", measured_slowdown),
            format!("{}", mig.retries),
            format!("{}", mig.fallbacks),
        ]);
        csv.push(format!(
            "{intensity:.2},{:.5},{:.5},{},{},{:.5},{},{},{}",
            rec.est_slowdown,
            rec.fast_ratio,
            resilient.is_compliant(),
            tag.split_whitespace().next().unwrap_or("compliant"),
            measured_slowdown,
            mig.retries,
            mig.failures,
            mig.fallbacks
        ));
        tel.count("fault_resilience.points", 1);
        tel.gauge("fault_resilience.est_slowdown", rec.est_slowdown);
        tel.gauge("fault_resilience.measured_slowdown", *measured_slowdown);
        tel.count("fault_resilience.migration_retries", mig.retries);
        tel.count("fault_resilience.migration_fallbacks", mig.fallbacks);
        if resilient.is_compliant() {
            tel.count("fault_resilience.compliant", 1);
        } else {
            tel.count("fault_resilience.degraded", 1);
        }
    }
    print_table(
        "advised placement under faults, judged against the healthy SLO",
        &[
            "intensity",
            "est_slowdown",
            "fast share",
            "meets SLO",
            "measured vs clean",
            "retries",
            "fallbacks",
        ],
        &rows,
    );
    write_csv(
        "fault_resilience.csv",
        "intensity,est_slowdown,fast_ratio,compliant,degraded,measured_slowdown,retries,failures,fallbacks",
        &csv,
    )?;
    mnemo_bench::export_telemetry("fault_resilience", &[tel.take_snapshot(0)])?;
    println!("\nShape: low intensities stay compliant by buying more FastMem; past the point");
    println!("where even FastMem-only misses the healthy SLO the advisor returns the");
    println!("nearest-feasible row tagged SloUnattainable instead of failing.");
    Ok(())
}
