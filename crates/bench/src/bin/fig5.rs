//! Fig. 5 harness entry point; the body lives in
//! `mnemo_bench::suite::fig5` so `mnemo perf` can run it in-process.
//!
//! Usage: `fig5 [a|b|c] [--jobs N]` (default: all panels).

fn main() -> Result<(), mnemo_bench::HarnessError> {
    let args = mnemo_bench::harness_args()?;
    let only = match args.first().map(String::as_str) {
        None => None,
        Some("a") => Some('a'),
        Some("b") => Some('b'),
        Some("c") => Some('c'),
        Some(other) => return Err(format!("unknown panel `{other}` (expected a, b, or c)")),
    };
    mnemo_bench::suite::fig5::run(mnemo_bench::scale_divisor(), only).map(|_| ())
}
