//! Fig. 5 — Redis client performance as a function of memory cost for
//! incremental FastMem:SlowMem capacity ratios, with Mnemo's estimate.
//!
//! Panels: (a) key distribution (trending / news feed / timeline),
//! (b) read:write ratio (timeline vs edit thumbnail),
//! (c) record size (trending vs trending preview).
//!
//! Usage: `fig5 [a|b|c] [--jobs N]` (default: all panels).

use kvsim::StoreKind;
use mnemo::advisor::OrderingKind;
use mnemo_bench::{consult, eval_points, paper_workload, print_table, seed_for, write_csv};

const POINTS: usize = 9;

fn panel(
    letter: char,
    title: &str,
    workloads: &[&str],
    csv: &mut Vec<String>,
) -> Result<(), mnemo_bench::HarnessError> {
    println!("\n--- Fig. 5{letter}: {title} ---");
    let results = mnemo_bench::parallel(workloads.len(), |i| -> Result<_, String> {
        let spec = paper_workload(workloads[i])?;
        let trace = spec.generate(seed_for(&spec.name));
        let consultation = consult(StoreKind::Redis, &trace, OrderingKind::TouchOrder)?;
        let points = eval_points(StoreKind::Redis, &trace, &consultation, POINTS)?;
        Ok((spec.name.clone(), points))
    });
    for result in results {
        let (name, points) = result?;
        let slow = points
            .first()
            .ok_or("evaluation returned no points")?
            .measured_ops_s;
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                let meas = (p.measured_ops_s / slow - 1.0) * 100.0;
                let est = (p.estimated_ops_s / slow - 1.0) * 100.0;
                csv.push(format!(
                    "{letter},{name},{:.4},{:.1},{:.1},{:.1}",
                    p.cost_reduction, p.measured_ops_s, p.estimated_ops_s, meas
                ));
                vec![
                    format!("{:.2}", p.cost_reduction),
                    format!("{:8.1}", p.measured_ops_s),
                    format!("{:+5.1}%", meas),
                    format!("{:+5.1}%", est),
                ]
            })
            .collect();
        print_table(
            &format!("{name} (Redis, throughput vs memory cost)"),
            &[
                "cost (xFast)",
                "measured ops/s",
                "meas +% vs slow",
                "est +% vs slow",
            ],
            &rows,
        );
    }
    Ok(())
}

fn main() -> Result<(), mnemo_bench::HarnessError> {
    let args = mnemo_bench::harness_args()?;
    let arg = args.first().cloned();
    let mut timer = mnemo_bench::SweepTimer::new("fig5");
    let mut csv = Vec::new();
    let run = |l: char| arg.is_none() || arg.as_deref() == Some(&l.to_string());
    if run('a') {
        timer.stage("panel-a", 3, || {
            panel(
                'a',
                "key distribution",
                &["trending", "news feed", "timeline"],
                &mut csv,
            )
        })?;
    }
    if run('b') {
        timer.stage("panel-b", 2, || {
            panel(
                'b',
                "read:write ratio",
                &["timeline", "edit thumbnail"],
                &mut csv,
            )
        })?;
    }
    if run('c') {
        timer.stage("panel-c", 2, || {
            panel(
                'c',
                "record size",
                &["trending", "trending preview"],
                &mut csv,
            )
        })?;
    }
    write_csv(
        "fig5_curves.csv",
        "panel,workload,cost_reduction,measured_ops_s,estimated_ops_s,improvement_pct",
        &csv,
    )?;
    mnemo_bench::write_timing(&timer)?;
    println!("\nPaper shape: throughput tracks the key-access CDF; trending gains ~31% of its");
    println!("~40% total improvement at ~36% of the FastMem-only cost.");
    Ok(())
}
