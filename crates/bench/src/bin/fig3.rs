//! Fig. 3 — CDF of the key space across request pattern distributions:
//! "the probability for a key ID to be requested throughout the
//! workload".

use mnemo_bench::{paper_workloads, seed_for, write_csv};

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    println!("Fig. 3: key-space CDFs per distribution");
    let mut csv = Vec::new();
    for spec in paper_workloads() {
        let trace = spec.generate(seed_for(&spec.name));
        let cdf = trace.key_cdf();
        let n = cdf.len();
        // Print a 10-point summary; dump the full CDF to CSV.
        print!("  {:<18} ({:<17})", spec.name, spec.distribution.name());
        for i in 1..=10 {
            let idx = i * n / 10 - 1;
            print!(" {:4.0}%", cdf[idx] * 100.0);
        }
        println!();
        for (k, &p) in cdf.iter().enumerate() {
            if k % (n / 200).max(1) == 0 || k == n - 1 {
                csv.push(format!("{},{},{:.6}", spec.name, k, p));
            }
        }
    }
    println!("  (columns: cumulative request probability at each decile of the key space)");
    write_csv("fig3_key_cdfs.csv", "workload,key_id,cum_probability", &csv)?;
    Ok(())
}
