//! Fig. 1 — percentage of the cost of memory in select Memory Optimized
//! VMs across major cloud providers.
//!
//! Methodology (§I / Amur et al.): model every instance price as
//! `vCPU*C + GB*M`, least-squares over the provider's catalogue, then
//! report `GB*M / price` for each memory-optimized instance.

use cloudcost::regression::{memory_share_series, CostSplit};
use cloudcost::{Provider, ProviderKind};
use mnemo_bench::{print_table, write_csv};

fn main() {
    mnemo_bench::harness_args();
    println!("Fig. 1: memory share of VM cost (Nov-2018 on-demand prices)");
    let mut csv_rows = Vec::new();
    for kind in ProviderKind::ALL {
        let provider = Provider::new(kind);
        let split = CostSplit::fit(&provider.instances).expect("catalogue fit failed");
        let rows: Vec<Vec<String>> = memory_share_series(&provider.instances)
            .expect("series failed")
            .iter()
            .map(|r| {
                csv_rows.push(format!("{},{},{:.4}", kind.name(), r.instance, r.share));
                vec![r.instance.to_string(), format!("{:5.1}%", r.share * 100.0)]
            })
            .collect();
        print_table(
            &format!(
                "{} (C=${:.4}/vCPU/h, M=${:.5}/GB/h, rms {:.1}%)",
                kind.name(),
                split.per_vcpu,
                split.per_gb,
                split.rms_relative_error * 100.0
            ),
            &["instance", "memory share"],
            &rows,
        );
    }
    write_csv(
        "fig1_memory_share.csv",
        "provider,instance,memory_share",
        &csv_rows,
    );
    println!("\nPaper band: memory is ~60-85% of the VM cost for these instances.");
}
