//! Collect every CSV artifact under `target/experiments/` into one
//! Markdown appendix (`target/experiments/APPENDIX.md`) — a single
//! reviewable record of the last full regeneration.

use std::fmt::Write as _;
use std::fs;

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    let dir = mnemo_bench::out_dir()?;
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .map_err(|e| format!("cannot read experiment dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "no CSVs found — run `cargo run --release -p mnemo-bench --bin all` first"
    );

    let mut md = String::from(
        "# Experiment appendix\n\nGenerated from the CSV artifacts of the last full run.\n",
    );
    for path in &entries {
        let name = path
            .file_stem()
            .unwrap_or(path.as_os_str())
            .to_string_lossy();
        let content =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let mut lines = content.lines();
        let header = match lines.next() {
            Some(h) => h,
            None => continue,
        };
        let _ = writeln!(md, "\n## {name}\n");
        let cols = header.split(',').count();
        let _ = writeln!(
            md,
            "| {} |",
            header.split(',').collect::<Vec<_>>().join(" | ")
        );
        let _ = writeln!(md, "|{}", "---|".repeat(cols));
        let rows: Vec<&str> = lines.collect();
        // Large tables are elided to head+tail to keep the appendix readable.
        const HEAD: usize = 12;
        const TAIL: usize = 4;
        if rows.len() <= HEAD + TAIL + 2 {
            for row in &rows {
                let _ = writeln!(md, "| {} |", row.split(',').collect::<Vec<_>>().join(" | "));
            }
        } else {
            for row in &rows[..HEAD] {
                let _ = writeln!(md, "| {} |", row.split(',').collect::<Vec<_>>().join(" | "));
            }
            let _ = writeln!(md, "| … ({} rows elided) … |", rows.len() - HEAD - TAIL);
            for row in &rows[rows.len() - TAIL..] {
                let _ = writeln!(md, "| {} |", row.split(',').collect::<Vec<_>>().join(" | "));
            }
        }
    }
    let out = dir.join("APPENDIX.md");
    fs::write(&out, md).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "appendix with {} tables -> {}",
        entries.len(),
        out.display()
    );
    Ok(())
}
