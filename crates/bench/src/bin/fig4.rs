//! Fig. 4 — CDF of common data sizes used across social media platforms
//! (log-scale horizontal axis in the paper).

use mnemo_bench::write_csv;
use ycsb::SizeClass;

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    println!("Fig. 4: record-size CDFs (bytes, log scale)");
    let probes: Vec<u64> = (6..=20).map(|e| 1u64 << e).collect(); // 64 B .. 1 MB
    let mut csv = Vec::new();
    print!("  {:<16}", "size");
    for &b in &probes {
        print!(" {:>7}", human(b));
    }
    println!();
    for class in SizeClass::ALL {
        print!("  {:<16}", class.name());
        for &b in &probes {
            let p = class.cdf(b as f64);
            print!(" {:>6.1}%", p * 100.0);
            csv.push(format!("{},{},{:.6}", class.name(), b, p));
        }
        println!();
    }
    println!("  (median sizes: thumbnail 100 KB, text post 10 KB, caption 1 KB)");
    write_csv("fig4_size_cdfs.csv", "class,bytes,cum_probability", &csv)?;
    Ok(())
}

fn human(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}
