//! Fig. 8 — evaluation of Mnemo's estimate.
//!
//! Panels: (a) estimate error boxplots per store, (b) store comparison on
//! Trending, (c) average-latency estimate, (d/e) tail latencies (not
//! estimated, reported), (f) Mnemo vs MnemoT estimate.
//!
//! Usage: `fig8 [a|b|c|d|f] [--jobs N]` (default: all panels).

use kvsim::StoreKind;
use mnemo::accuracy::{ErrorStats, EvalPoint};
use mnemo::advisor::OrderingKind;
use mnemo_bench::{
    consult, eval_points, paper_workload, paper_workloads, print_table, seed_for, stores, write_csv,
};

const POINTS: usize = 9;

fn panel_a() -> Result<(), mnemo_bench::HarnessError> {
    println!("\n--- Fig. 8a: estimate percentage error per store (boxplots) ---");
    let workloads = paper_workloads();
    // Run the paper's plain model and, as an extension comparison, the
    // cache-aware corrected model over the same (store, workload) grid.
    let jobs: Vec<(StoreKind, usize, bool)> = stores()
        .iter()
        .flat_map(|&s| (0..workloads.len()).flat_map(move |w| [(s, w, false), (s, w, true)]))
        .collect();
    let results = mnemo_bench::parallel(jobs.len(), |i| -> Result<_, String> {
        let (store, w, corrected) = jobs[i];
        let spec = &workloads[w];
        let trace = spec.generate(seed_for(&spec.name));
        let consultation = if corrected {
            let mut config = mnemo_bench::paper_advisor(
                &trace,
                OrderingKind::TouchOrder,
                mnemo::ModelKind::GlobalAverage,
            )
            .config()
            .clone();
            config.cache_correction = Some(config.spec.cache.capacity_bytes);
            mnemo::Advisor::new(config)
                .consult(store, &trace)
                .map_err(|e| format!("consultation failed: {e}"))?
        } else {
            consult(store, &trace, OrderingKind::TouchOrder)?
        };
        let points = eval_points(store, &trace, &consultation, POINTS)?;
        Ok((store, corrected, points))
    });
    let results = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    let mut csv = Vec::new();
    for corrected in [false, true] {
        let mut rows = Vec::new();
        for store in stores() {
            let errors: Vec<f64> = results
                .iter()
                .filter(|(s, c, _)| *s == store && *c == corrected)
                .flat_map(|(_, _, pts)| pts.iter().map(EvalPoint::error_pct))
                .collect();
            let stats = ErrorStats::from_errors(&errors);
            // Signed bias: positive = estimate below measurement
            // (pessimistic, i.e. SLO-safe when recommending).
            let bias = errors.iter().sum::<f64>() / errors.len() as f64;
            csv.push(format!(
                "{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
                store, corrected, stats.min, stats.q1, stats.median, stats.q3, stats.max, bias
            ));
            rows.push(vec![
                store.to_string(),
                format!("{:.3}%", stats.min),
                format!("{:.3}%", stats.q1),
                format!("{:.3}%", stats.median),
                format!("{:.3}%", stats.q3),
                format!("{:.3}%", stats.max),
                format!("{:+.3}%", bias),
                stats.count.to_string(),
            ]);
        }
        let title = if corrected {
            "with cache-aware correction (extension)"
        } else {
            "paper model (all Table III workloads)"
        };
        print_table(
            &format!("absolute estimate error — {title}"),
            &[
                "store", "min", "q1", "median", "q3", "max", "bias", "points",
            ],
            &rows,
        );
    }
    write_csv(
        "fig8a_error_boxplots.csv",
        "store,cache_aware,min,q1,median,q3,max,bias",
        &csv,
    )?;
    println!("Paper: 0.07% median error across all stores.");
    println!("The corrected variant deliberately under-credits LLC-resident keys, so its");
    println!("larger errors are pessimistic bias (positive = estimate below measurement):");
    println!("recommendations over-provision FastMem rather than violate the SLO. It pays");
    println!("off where the plain model over-promises (sharp zipfian heads, see Fig. 8f).");
    Ok(())
}

fn trending_points(store: StoreKind) -> Result<Vec<EvalPoint>, String> {
    let spec = paper_workload("trending")?;
    let trace = spec.generate(seed_for(&spec.name));
    let consultation = consult(store, &trace, OrderingKind::TouchOrder)?;
    eval_points(store, &trace, &consultation, POINTS)
}

fn panel_b() -> Result<(), mnemo_bench::HarnessError> {
    println!("\n--- Fig. 8b: store comparison (Trending) ---");
    let all = mnemo_bench::parallel(3, |i| trending_points(stores()[i]));
    let all = all.into_iter().collect::<Result<Vec<_>, _>>()?;
    let mut csv = Vec::new();
    for (store, points) in stores().iter().zip(all) {
        let slow = points
            .first()
            .ok_or("evaluation returned no points")?
            .measured_ops_s;
        let fast = points
            .last()
            .ok_or("evaluation returned no points")?
            .measured_ops_s;
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                csv.push(format!(
                    "{store},{:.4},{:.1},{:.1}",
                    p.cost_reduction, p.measured_ops_s, p.estimated_ops_s
                ));
                vec![
                    format!("{:.2}", p.cost_reduction),
                    format!("{:9.1}", p.measured_ops_s),
                    format!("{:9.1}", p.estimated_ops_s),
                ]
            })
            .collect();
        print_table(
            &format!("{store} (sensitivity fast/slow = {:.2}x)", fast / slow),
            &["cost (xFast)", "measured ops/s", "estimated ops/s"],
            &rows,
        );
    }
    write_csv(
        "fig8b_store_comparison.csv",
        "store,cost_reduction,measured_ops_s,estimated_ops_s",
        &csv,
    )?;
    println!("Paper ordering: DynamoDB most impacted, Memcached barely influenced.");
    Ok(())
}

fn panel_c_d_e() -> Result<(), mnemo_bench::HarnessError> {
    println!(
        "\n--- Fig. 8c/8d/8e: average latency estimate and measured tails (Trending, Redis) ---"
    );
    let spec = paper_workload("trending")?;
    let trace = spec.generate(seed_for(&spec.name));
    let consultation = consult(StoreKind::Redis, &trace, OrderingKind::TouchOrder)?;
    let points = eval_points(StoreKind::Redis, &trace, &consultation, POINTS)?;
    // The paper reports tails without estimating them; the mixture-model
    // tail estimator (extension, mnemo::tail) is shown alongside.
    let tails = consultation.tail_estimator();
    let mut csv = Vec::new();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let est_p95 = tails.quantile_at_prefix(&consultation.order, p.prefix, 0.95);
            let est_p99 = tails.quantile_at_prefix(&consultation.order, p.prefix, 0.99);
            csv.push(format!(
                "{:.4},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1}",
                p.cost_reduction,
                p.measured_avg_latency_ns / 1000.0,
                p.estimated_avg_latency_ns / 1000.0,
                p.measured_tail_ns.0 / 1000.0,
                p.measured_tail_ns.1 / 1000.0,
                est_p95 / 1000.0,
                est_p99 / 1000.0
            ));
            vec![
                format!("{:.2}", p.cost_reduction),
                format!("{:8.1}", p.measured_avg_latency_ns / 1000.0),
                format!("{:8.1}", p.estimated_avg_latency_ns / 1000.0),
                format!("{:+.2}%", p.latency_error_pct()),
                format!("{:8.1}", p.measured_tail_ns.0 / 1000.0),
                format!("{:8.1}", est_p95 / 1000.0),
                format!("{:8.1}", p.measured_tail_ns.1 / 1000.0),
                format!("{:8.1}", est_p99 / 1000.0),
            ]
        })
        .collect();
    print_table(
        "latency (us): average measured vs estimated; tails measured vs mixture estimate",
        &[
            "cost (xFast)",
            "avg meas",
            "avg est",
            "err",
            "p95 meas",
            "p95 est*",
            "p99 meas",
            "p99 est*",
        ],
        &rows,
    );
    write_csv(
        "fig8cde_latency.csv",
        "cost_reduction,measured_avg_us,estimated_avg_us,p95_us,p99_us,est_p95_us,est_p99_us",
        &csv,
    )?;
    println!("Paper: the average-latency estimate is extremely accurate; the paper does NOT");
    println!("estimate tails — the est* columns come from this repo's mixture-model extension.");
    Ok(())
}

fn panel_f() -> Result<(), mnemo_bench::HarnessError> {
    println!("\n--- Fig. 8f: Mnemo vs MnemoT estimate (Timeline: scrambled zipfian) ---");
    let spec = paper_workload("timeline")?;
    let trace = spec.generate(seed_for(&spec.name));
    let both = mnemo_bench::parallel(2, |i| -> Result<_, String> {
        let ordering = if i == 0 {
            OrderingKind::TouchOrder
        } else {
            OrderingKind::MnemoT
        };
        let consultation = consult(StoreKind::Redis, &trace, ordering)?;
        let points = eval_points(StoreKind::Redis, &trace, &consultation, POINTS)?;
        Ok((ordering, points))
    });
    let both = both.into_iter().collect::<Result<Vec<_>, _>>()?;
    let mut csv = Vec::new();
    for (ordering, points) in &both {
        let name = match ordering {
            OrderingKind::TouchOrder => "Mnemo (touch order)",
            OrderingKind::MnemoT => "MnemoT (weight order)",
            OrderingKind::Hotness => "hotness",
        };
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                csv.push(format!(
                    "{name},{:.4},{:.1},{:.1},{:+.3}",
                    p.cost_reduction,
                    p.measured_ops_s,
                    p.estimated_ops_s,
                    p.error_pct()
                ));
                vec![
                    format!("{:.2}", p.cost_reduction),
                    format!("{:9.1}", p.measured_ops_s),
                    format!("{:9.1}", p.estimated_ops_s),
                    format!("{:+.3}%", p.error_pct()),
                ]
            })
            .collect();
        print_table(
            name,
            &["cost (xFast)", "measured ops/s", "estimated ops/s", "error"],
            &rows,
        );
    }
    // MnemoT's tiering must dominate touch order at interior costs.
    let (_, mnemo) = &both[0];
    let (_, mnemot) = &both[1];
    let mid = mnemo.len() / 2;
    println!(
        "\nAt ~{:.0}% of FastMem-only cost: MnemoT {:.0} ops/s vs Mnemo {:.0} ops/s ({:+.1}%)",
        mnemo[mid].cost_reduction * 100.0,
        mnemot[mid].measured_ops_s,
        mnemo[mid].measured_ops_s,
        (mnemot[mid].measured_ops_s / mnemo[mid].measured_ops_s - 1.0) * 100.0
    );
    write_csv(
        "fig8f_mnemot.csv",
        "variant,cost_reduction,measured_ops_s,estimated_ops_s,error_pct",
        &csv,
    )?;
    Ok(())
}

fn main() -> Result<(), mnemo_bench::HarnessError> {
    let args = mnemo_bench::harness_args()?;
    let arg = args.first().cloned();
    let run = |l: &str| arg.is_none() || arg.as_deref() == Some(l);
    let mut timer = mnemo_bench::SweepTimer::new("fig8");
    if run("a") {
        timer.stage("panel-a", 0, panel_a)?;
    }
    if run("b") {
        timer.stage("panel-b", 0, panel_b)?;
    }
    if run("c") || arg.as_deref() == Some("d") || arg.as_deref() == Some("e") {
        timer.stage("panel-cde", 0, panel_c_d_e)?;
    }
    if run("f") {
        timer.stage("panel-f", 0, panel_f)?;
    }
    mnemo_bench::write_timing(&timer)?;
    Ok(())
}
