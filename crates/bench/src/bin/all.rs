//! Regenerate every table and figure in sequence (see EXPERIMENTS.md).
//!
//! Usage: `all [--jobs N]` — the flag is forwarded to every experiment,
//! and a `timing-all.csv` per-experiment wall-clock summary lands next
//! to the figure CSVs.

use std::process::Command;

const EXPERIMENTS: [&str; 19] = [
    "fig1",
    "table1",
    "table2",
    "table3",
    "fig3",
    "fig4",
    "fig5",
    "fig8",
    "fig9",
    "table4",
    "downsampling",
    "ycsb_core",
    "sweep_slowmem",
    "dynamic_vs_static",
    "cache_mode",
    "model_limits",
    "pipelining",
    "variance",
    "appendix",
];

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    let jobs = mnemo_par::effective_jobs();
    let mut timer = mnemo_bench::SweepTimer::new("all");
    // Run siblings through cargo so they are rebuilt if stale (spawning
    // target-dir executables directly can silently run old code).
    for exp in EXPERIMENTS {
        println!("\n================ {exp} ================");
        // Each experiment is one telemetry span; the per-experiment
        // wall-clock summary still lands in timing-all.csv.
        let status = timer.stage(exp, 1, || {
            let mut args = vec![
                "run".to_string(),
                "--release".into(),
                "--quiet".into(),
                "-p".into(),
                "mnemo-bench".into(),
                "--bin".into(),
                exp.to_string(),
                "--".into(),
                "--jobs".into(),
                jobs.to_string(),
            ];
            if let Some(dir) = mnemo_bench::telemetry_dir() {
                args.push(format!("--telemetry={}", dir.display()));
            }
            Command::new("cargo").args(&args).status()
        });
        let status = status.map_err(|e| format!("cannot spawn {exp} via cargo: {e}"))?;
        assert!(status.success(), "{exp} failed");
    }
    mnemo_bench::write_timing(&timer)?;
    println!("\nAll experiments regenerated. CSVs in target/experiments/.");
    Ok(())
}
