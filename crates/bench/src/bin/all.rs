//! Regenerate every table and figure in sequence (see EXPERIMENTS.md).

use std::process::Command;

const EXPERIMENTS: [&str; 19] = [
    "fig1",
    "table1",
    "table2",
    "table3",
    "fig3",
    "fig4",
    "fig5",
    "fig8",
    "fig9",
    "table4",
    "downsampling",
    "ycsb_core",
    "sweep_slowmem",
    "dynamic_vs_static",
    "cache_mode",
    "model_limits",
    "pipelining",
    "variance",
    "appendix",
];

fn main() {
    // Run siblings through cargo so they are rebuilt if stale (spawning
    // target-dir executables directly can silently run old code).
    for exp in EXPERIMENTS {
        println!("\n================ {exp} ================");
        let status = Command::new("cargo")
            .args([
                "run",
                "--release",
                "--quiet",
                "-p",
                "mnemo-bench",
                "--bin",
                exp,
            ])
            .status()
            .expect("spawn experiment via cargo");
        assert!(status.success(), "{exp} failed");
    }
    println!("\nAll experiments regenerated. CSVs in target/experiments/.");
}
