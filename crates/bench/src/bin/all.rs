//! Regenerate every table and figure in sequence (see EXPERIMENTS.md).
//!
//! Usage: `all [--jobs N]` — the flag is forwarded to every experiment,
//! and a `timing-all.csv` per-experiment wall-clock summary lands next
//! to the figure CSVs.

use std::process::Command;
use std::time::Instant;

const EXPERIMENTS: [&str; 19] = [
    "fig1",
    "table1",
    "table2",
    "table3",
    "fig3",
    "fig4",
    "fig5",
    "fig8",
    "fig9",
    "table4",
    "downsampling",
    "ycsb_core",
    "sweep_slowmem",
    "dynamic_vs_static",
    "cache_mode",
    "model_limits",
    "pipelining",
    "variance",
    "appendix",
];

fn main() {
    mnemo_bench::harness_args();
    let jobs = mnemo_par::effective_jobs();
    let mut timer = mnemo_bench::SweepTimer::new("all");
    // Run siblings through cargo so they are rebuilt if stale (spawning
    // target-dir executables directly can silently run old code).
    for exp in EXPERIMENTS {
        println!("\n================ {exp} ================");
        let t = Instant::now();
        let status = Command::new("cargo")
            .args([
                "run",
                "--release",
                "--quiet",
                "-p",
                "mnemo-bench",
                "--bin",
                exp,
                "--",
                "--jobs",
                &jobs.to_string(),
            ])
            .status()
            .expect("spawn experiment via cargo");
        assert!(status.success(), "{exp} failed");
        timer.record(exp, 1, t.elapsed());
    }
    mnemo_bench::write_timing(&timer);
    println!("\nAll experiments regenerated. CSVs in target/experiments/.");
}
