//! Extension experiment: three ways to spend the same FastMem capacity.
//!
//! The paper assumes a *flat* hybrid address space ("FastMem does not
//! serve the purpose of caching for SlowMem") and proposes static,
//! planned placement. This experiment compares, at an equal FastMem
//! budget across capacity ratios:
//!
//! 1. **Mnemo static partition** — planned placement from the estimate
//!    curve (needs profiling, zero runtime overhead);
//! 2. **cache mode** — FastMem as a write-back object cache of SlowMem
//!    (Intel Memory Mode-style: zero planning, admission/write-back
//!    traffic at runtime);
//! 3. **dynamic tiering** — epoch-based migration (Fig. 2b systems).

use kvsim::{CacheModeServer, DynamicConfig, DynamicTieringServer, Server, StoreKind};
use mnemo::advisor::OrderingKind;
use mnemo::placement::PlacementEngine;
use mnemo_bench::{consult, paper_workload, print_table, seed_for, testbed_for, write_csv};

const RATIOS: [f64; 4] = [0.1, 0.2, 0.4, 0.6];

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    println!("Three deployments of the same FastMem capacity (Redis)");
    let mut csv = Vec::new();
    for workload in ["trending", "news feed", "edit thumbnail"] {
        let spec = paper_workload(workload)?;
        let trace = spec.generate(seed_for(&spec.name));
        let testbed = testbed_for(&trace);
        let consultation = consult(StoreKind::Redis, &trace, OrderingKind::MnemoT)?;

        let results = mnemo_bench::parallel(RATIOS.len(), |i| -> Result<_, String> {
            let ratio = RATIOS[i];
            let budget = (trace.dataset_bytes() as f64 * ratio) as u64;

            let placement =
                PlacementEngine::placement_for_budget(&consultation.order, &trace.sizes, budget);
            let static_tp = Server::build_with(
                StoreKind::Redis,
                testbed.clone(),
                hybridmem::clock::NoiseConfig::disabled(),
                &trace,
                placement,
            )
            .map_err(|e| format!("static server build failed: {e}"))?
            .run(&trace)
            .throughput_ops_s();

            let mut cm =
                CacheModeServer::build_with(StoreKind::Redis, testbed.clone(), &trace, budget)
                    .map_err(|e| format!("cache-mode server build failed: {e}"))?;
            let cache_tp = cm.run(&trace).throughput_ops_s();
            let hit_ratio = cm.stats().hit_ratio();

            let mut dt = DynamicTieringServer::build_with(
                StoreKind::Redis,
                testbed.clone(),
                &trace,
                DynamicConfig {
                    epoch_requests: 2_000,
                    ..DynamicConfig::new(budget)
                },
            )
            .map_err(|e| format!("dynamic server build failed: {e}"))?;
            let dyn_tp = dt.run(&trace).throughput_ops_s();

            Ok((ratio, static_tp, cache_tp, hit_ratio, dyn_tp))
        });
        let results = results.into_iter().collect::<Result<Vec<_>, _>>()?;

        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|(ratio, st, ca, hit, dy)| {
                csv.push(format!(
                    "{workload},{ratio},{st:.1},{ca:.1},{hit:.4},{dy:.1}"
                ));
                vec![
                    format!("{:.0}%", ratio * 100.0),
                    format!("{st:8.0}"),
                    format!("{ca:8.0} ({:.0}% hits)", hit * 100.0),
                    format!("{dy:8.0}"),
                ]
            })
            .collect();
        print_table(
            &format!("{workload}: throughput (ops/s) by FastMem share"),
            &["FastMem", "Mnemo static", "cache mode", "dynamic tiering"],
            &rows,
        );
    }
    write_csv(
        "cache_mode.csv",
        "workload,fast_ratio,static_ops_s,cache_ops_s,hit_ratio,dynamic_ops_s",
        &csv,
    )?;
    println!("\nReading: planned static placement avoids all runtime traffic and wins when");
    println!("the hot set is stable and known; cache mode needs no planning and adapts");
    println!("instantly (strongest on sliding news-feed patterns) but pays admission and");
    println!("write-back bandwidth — most visible on the update-heavy workload.");
    Ok(())
}
