//! Table IV — profiling-overhead comparison between MnemoT and existing
//! tiering solutions, quantified on this substrate:
//!
//! * **MnemoT**: two real baseline executions + an input-description-only
//!   weight calculation (no instrumentation).
//! * **Instrumentation-based** (X-Mem-like): shadow every memory access at
//!   cache-line granularity during execution — the per-request event
//!   amplification is the "up to 40x" overhead source.
//! * **One-baseline + ML** (Tahoe-like): one real baseline + model
//!   inference, but only after a training corpus was collected by running
//!   *both* baselines over many workloads.

use kvsim::StoreKind;
use mnemo::baselines::{head_agreement, InstrumentedProfiler, MlBaselineModel, MlBaselineProfiler};
use mnemo::pattern::PatternEngine;
use mnemo::sensitivity::SensitivityEngine;
use mnemo::tiering::MnemoT;
use mnemo_bench::{paper_workload, paper_workloads, print_table, seed_for, testbed_for, write_csv};
use std::time::Instant;

fn main() {
    mnemo_bench::harness_args();
    println!("Table IV: profiling overhead comparison (wall-clock on this host)");
    let spec = paper_workload("timeline").unwrap_or_else(|e| panic!("{e}"));
    let trace = spec.generate(seed_for(&spec.name));
    let engine = SensitivityEngine::new(
        testbed_for(&trace),
        hybridmem::clock::NoiseConfig::disabled(),
    );

    // MnemoT: two baseline executions + description-only tiering.
    let t0 = Instant::now();
    let baselines = engine.measure(StoreKind::Redis, &trace).expect("baselines");
    let baseline_time = t0.elapsed();
    let t1 = Instant::now();
    let pattern = PatternEngine::analyze(&trace);
    let order = MnemoT::weight_order(&pattern);
    let tiering_time = t1.elapsed();
    assert_eq!(order.len(), trace.keys() as usize);
    let _ = baselines;

    // Instrumentation-based: shadow execution at line granularity.
    let t2 = Instant::now();
    let instrumented = InstrumentedProfiler::profile(&trace);
    let instr_time = t2.elapsed();

    // Tahoe-like: training-corpus collection (both baselines over the
    // other workloads) + one real baseline + inference.
    let t3 = Instant::now();
    let train_traces: Vec<_> = paper_workloads()
        .iter()
        .filter(|w| w.name != "timeline")
        .map(|w| w.generate(seed_for(&w.name)))
        .collect();
    let samples = MlBaselineProfiler::collect_training(&engine, StoreKind::Redis, &train_traces)
        .expect("training corpus");
    let training_time = t3.elapsed();
    let profiler = MlBaselineProfiler::new(MlBaselineModel::train(&samples));
    let t4 = Instant::now();
    let inferred = profiler
        .profile(&engine, StoreKind::Redis, &trace)
        .expect("inference");
    let tahoe_profile_time = t4.elapsed();
    let real = engine.measure(StoreKind::Redis, &trace).expect("reference");
    let infer_err =
        (inferred.fast.runtime_ns - real.fast.runtime_ns).abs() / real.fast.runtime_ns * 100.0;

    let ms = |d: std::time::Duration| format!("{:.1} ms", d.as_secs_f64() * 1e3);
    print_table(
        "profiling step timings",
        &[
            "profiling step",
            "MnemoT",
            "instrumented (X-Mem-like)",
            "ML-baseline (Tahoe-like)",
        ],
        &[
            vec![
                "input preparation".into(),
                "workload description only".into(),
                "instrument every access".into(),
                "workload description only".into(),
            ],
            vec![
                "performance baselines".into(),
                format!("2 runs: {}", ms(baseline_time)),
                format!("2 runs: {}", ms(baseline_time)),
                format!(
                    "1 run + infer: {} (err {:.1}%)",
                    ms(tahoe_profile_time),
                    infer_err
                ),
            ],
            vec![
                "training data".into(),
                "none".into(),
                "none".into(),
                format!(
                    "{} ({} workloads x 2 runs)",
                    ms(training_time),
                    train_traces.len()
                ),
            ],
            vec![
                "tiering calculation".into(),
                ms(tiering_time),
                format!(
                    "{} ({:.0}x events/request)",
                    ms(instr_time),
                    instrumented.amplification
                ),
                ms(tiering_time),
            ],
        ],
    );
    let speedup = instr_time.as_secs_f64() / tiering_time.as_secs_f64().max(1e-9);
    let agreement = head_agreement(&trace, (trace.keys() / 5) as usize);
    println!("\nMnemoT tiering is {speedup:.0}x faster than instrumented profiling while agreeing");
    println!(
        "on {:.0}% of the hot head (top 20% of keys).",
        agreement * 100.0
    );
    write_csv(
        "table4_overhead.csv",
        "step,mnemot_ms,instrumented_ms,tahoe_ms",
        &[
            format!(
                "tiering,{:.3},{:.3},{:.3}",
                tiering_time.as_secs_f64() * 1e3,
                instr_time.as_secs_f64() * 1e3,
                tiering_time.as_secs_f64() * 1e3
            ),
            format!(
                "baselines,{:.3},{:.3},{:.3}",
                baseline_time.as_secs_f64() * 1e3,
                baseline_time.as_secs_f64() * 1e3,
                (training_time + tahoe_profile_time).as_secs_f64() * 1e3
            ),
        ],
    );
}
