//! Table IV — profiling-overhead comparison between MnemoT and existing
//! tiering solutions, quantified on this substrate:
//!
//! * **MnemoT**: two real baseline executions + an input-description-only
//!   weight calculation (no instrumentation).
//! * **Instrumentation-based** (X-Mem-like): shadow every memory access at
//!   cache-line granularity during execution — the per-request event
//!   amplification is the "up to 40x" overhead source.
//! * **One-baseline + ML** (Tahoe-like): one real baseline + model
//!   inference, but only after a training corpus was collected by running
//!   *both* baselines over many workloads.
//!
//! Every step runs inside a telemetry span ([`SweepTimer::stage`]), so
//! the wall-clock comparison lands both in this table and in the
//! standard `timing-table4.csv` artifact.

use kvsim::StoreKind;
use mnemo::baselines::{head_agreement, InstrumentedProfiler, MlBaselineModel, MlBaselineProfiler};
use mnemo::pattern::PatternEngine;
use mnemo::sensitivity::SensitivityEngine;
use mnemo::tiering::MnemoT;
use mnemo_bench::{
    paper_workload, paper_workloads, print_table, seed_for, testbed_for, write_csv, write_timing,
    SweepTimer,
};
use std::time::Duration;

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    println!("Table IV: profiling overhead comparison (wall-clock on this host)");
    let spec = paper_workload("timeline")?;
    let trace = spec.generate(seed_for(&spec.name));
    let engine = SensitivityEngine::new(
        testbed_for(&trace),
        hybridmem::clock::NoiseConfig::disabled(),
    );
    let mut timer = SweepTimer::new("table4");

    // MnemoT: two baseline executions + description-only tiering.
    let baselines = timer.stage("baselines", 2, || {
        engine
            .measure(StoreKind::Redis, &trace)
            .map_err(|e| format!("baseline measurement failed: {e}"))
    })?;
    let order = timer.stage("tiering", trace.keys() as usize, || {
        let pattern = PatternEngine::analyze(&trace);
        MnemoT::weight_order(&pattern)
    });
    assert_eq!(order.len(), trace.keys() as usize);
    let _ = baselines;

    // Instrumentation-based: shadow execution at line granularity.
    let instrumented = timer.stage("instrumentation", trace.len(), || {
        InstrumentedProfiler::profile(&trace)
    });

    // Tahoe-like: training-corpus collection (both baselines over the
    // other workloads) + one real baseline + inference.
    let train_traces: Vec<_> = paper_workloads()
        .iter()
        .filter(|w| w.name != "timeline")
        .map(|w| w.generate(seed_for(&w.name)))
        .collect();
    let samples = timer.stage("training", train_traces.len(), || {
        MlBaselineProfiler::collect_training(&engine, StoreKind::Redis, &train_traces)
            .map_err(|e| format!("training-corpus collection failed: {e}"))
    })?;
    let profiler = MlBaselineProfiler::new(MlBaselineModel::train(&samples));
    let inferred = timer.stage("tahoe_profile", 1, || {
        profiler
            .profile(&engine, StoreKind::Redis, &trace)
            .map_err(|e| format!("inference failed: {e}"))
    })?;
    let real = engine
        .measure(StoreKind::Redis, &trace)
        .map_err(|e| format!("reference measurement failed: {e}"))?;
    let infer_err =
        (inferred.fast.runtime_ns - real.fast.runtime_ns).abs() / real.fast.runtime_ns * 100.0;

    let stages = timer.stages();
    let wall = |name: &str| -> Result<Duration, String> {
        stages
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.wall)
            .ok_or_else(|| format!("stage {name} was not recorded"))
    };
    let baseline_time = wall("baselines")?;
    let tiering_time = wall("tiering")?;
    let instr_time = wall("instrumentation")?;
    let training_time = wall("training")?;
    let tahoe_profile_time = wall("tahoe_profile")?;

    let ms = |d: Duration| format!("{:.1} ms", d.as_secs_f64() * 1e3);
    print_table(
        "profiling step timings",
        &[
            "profiling step",
            "MnemoT",
            "instrumented (X-Mem-like)",
            "ML-baseline (Tahoe-like)",
        ],
        &[
            vec![
                "input preparation".into(),
                "workload description only".into(),
                "instrument every access".into(),
                "workload description only".into(),
            ],
            vec![
                "performance baselines".into(),
                format!("2 runs: {}", ms(baseline_time)),
                format!("2 runs: {}", ms(baseline_time)),
                format!(
                    "1 run + infer: {} (err {:.1}%)",
                    ms(tahoe_profile_time),
                    infer_err
                ),
            ],
            vec![
                "training data".into(),
                "none".into(),
                "none".into(),
                format!(
                    "{} ({} workloads x 2 runs)",
                    ms(training_time),
                    train_traces.len()
                ),
            ],
            vec![
                "tiering calculation".into(),
                ms(tiering_time),
                format!(
                    "{} ({:.0}x events/request)",
                    ms(instr_time),
                    instrumented.amplification
                ),
                ms(tiering_time),
            ],
        ],
    );
    let speedup = instr_time.as_secs_f64() / tiering_time.as_secs_f64().max(1e-9);
    let agreement = head_agreement(&trace, (trace.keys() / 5) as usize);
    println!("\nMnemoT tiering is {speedup:.0}x faster than instrumented profiling while agreeing");
    println!(
        "on {:.0}% of the hot head (top 20% of keys).",
        agreement * 100.0
    );
    write_csv(
        "table4_overhead.csv",
        "step,mnemot_ms,instrumented_ms,tahoe_ms",
        &[
            format!(
                "tiering,{:.3},{:.3},{:.3}",
                tiering_time.as_secs_f64() * 1e3,
                instr_time.as_secs_f64() * 1e3,
                tiering_time.as_secs_f64() * 1e3
            ),
            format!(
                "baselines,{:.3},{:.3},{:.3}",
                baseline_time.as_secs_f64() * 1e3,
                baseline_time.as_secs_f64() * 1e3,
                (training_time + tahoe_profile_time).as_secs_f64() * 1e3
            ),
        ],
    )?;
    write_timing(&timer)?;
    mnemo_bench::export_telemetry("table4", &[timer.snapshot()])?;
    Ok(())
}
