//! Tier-matrix harness entry point; the body lives in
//! `mnemo_bench::suite::tier_matrix` so `mnemo perf` can run it
//! in-process.

fn main() -> Result<(), mnemo_bench::HarnessError> {
    mnemo_bench::harness_args()?;
    mnemo_bench::suite::tier_matrix::run(mnemo_bench::scale_divisor()).map(|_| ())
}
