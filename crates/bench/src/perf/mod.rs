//! The `mnemo perf` perf-audit harness.
//!
//! Runs a fixed suite of benches (fig1, fig5, table1, ycsb_core,
//! serve_throughput) at a pinned scale, measures each end to end —
//! wall clock per stage via the telemetry-span [`crate::SweepTimer`], ops/s,
//! peak RSS, allocation counts from [`crate::alloc_track`], and the
//! bench's own deterministic counters — and emits the machine-readable
//! `BENCH_CORE.json` trajectory CI gates on. [`compare`] diffs two
//! trajectory files into findings (regressions, improvements, counter
//! drift) with configurable thresholds; wall clock is compared loosely
//! (machines differ), deterministic counters exactly (drift means the
//! simulation changed), allocation counts within a small relative
//! tolerance (toolchains differ slightly).
//!
//! Determinism contract: a suite run pins the worker pool to one
//! worker, so the sim-domain counters and allocation counts are
//! functions of the binary + argv + environment only.

pub mod json;

use crate::suite::{self, SuiteOutcome};
use crate::HarnessError;
use json::Json;
use std::fmt::Write as _;

/// Trajectory schema identifier; bump on breaking layout changes.
pub const SCHEMA: &str = "mnemo-bench-core/v1";

/// The benches every suite runs, in run order.
pub const BENCHES: [&str; 5] = ["fig1", "fig5", "table1", "ycsb_core", "serve_throughput"];

/// A named suite: the same five benches at a pinned scale divisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteSpec {
    /// Suite name (`core`, `smoke`).
    pub name: &'static str,
    /// Default `MNEMO_SCALE`-style divisor the suite pins.
    pub default_scale: u64,
}

/// Look up a suite by name. `core` runs at paper scale (divisor 1);
/// `smoke` at divisor 50, matching the CI bench-smoke jobs.
pub fn suite_spec(name: &str) -> Option<SuiteSpec> {
    match name {
        "core" => Some(SuiteSpec {
            name: "core",
            default_scale: 1,
        }),
        "smoke" => Some(SuiteSpec {
            name: "smoke",
            default_scale: 50,
        }),
        _ => None,
    }
}

/// One per-stage wall-clock sample inside a bench.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Stage name (from the bench's own `SweepTimer`).
    pub name: String,
    /// Items the stage processed.
    pub items: u64,
    /// Stage wall clock in nanoseconds.
    pub wall_ns: u64,
}

/// One bench's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Bench name (`fig5`, …).
    pub name: String,
    /// End-to-end wall clock in nanoseconds.
    pub wall_ns: u64,
    /// Work items the bench drove (requests, rows — see its counters).
    pub items: u64,
    /// `items / wall` in items per second.
    pub ops_per_s: f64,
    /// Peak resident set size of the process so far, in KiB
    /// (`VmHWM`; 0 where unavailable). Informational only.
    pub peak_rss_kib: u64,
    /// Heap allocation events during the bench.
    pub alloc_count: u64,
    /// Heap bytes requested during the bench.
    pub alloc_bytes: u64,
    /// Per-stage wall samples from inside the bench.
    pub stages: Vec<StageRecord>,
    /// Deterministic sim-domain counters (sorted by name): request
    /// totals, output-row counts, FNV-1a artifact checksums. Compared
    /// exactly by the CI gate.
    pub counters: Vec<(String, u64)>,
}

/// A full trajectory: one suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreReport {
    /// [`SCHEMA`].
    pub schema: String,
    /// Suite name.
    pub suite: String,
    /// Scale divisor the run was pinned to.
    pub scale: u64,
    /// Worker count (always 1 for recorded trajectories).
    pub jobs: u64,
    /// Per-bench records, in run order.
    pub benches: Vec<BenchRecord>,
}

/// FNV-1a over raw bytes — the artifact checksum the counter gate uses.
pub fn fnv64(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

/// Peak resident set size in KiB from `/proc/self/status` (`VmHWM`);
/// 0 when the platform does not expose it. Wall-clock-free but still
/// machine-dependent — reported for humans, never gated on.
pub fn peak_rss_kib() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

fn saturating_u64(n: u128) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Run one suite at the given scale divisor and collect the trajectory.
///
/// Pins the worker pool to 1 for the duration (restored to unbounded
/// afterwards) so allocation counts and stage boundaries are
/// reproducible; sim-domain outputs are `--jobs`-invariant anyway.
pub fn run_suite(spec: SuiteSpec, scale: u64) -> Result<CoreReport, HarnessError> {
    mnemo_par::set_jobs(1);
    let result = run_suite_pinned(spec, scale);
    mnemo_par::set_jobs(0);
    result
}

fn run_suite_pinned(spec: SuiteSpec, scale: u64) -> Result<CoreReport, HarnessError> {
    let mut timer = mnemo_par::SweepTimer::new("perf");
    let mut benches = Vec::with_capacity(BENCHES.len());
    for name in BENCHES {
        println!(
            "\n==== perf: {name} (suite {}, scale {scale}) ====",
            spec.name
        );
        let (alloc0, bytes0) = crate::alloc_track::allocation_counts();
        let outcome = timer.stage(name, 1, || run_bench(name, scale))?;
        let (alloc1, bytes1) = crate::alloc_track::allocation_counts();
        let wall = timer
            .stages()
            .iter()
            .rev()
            .find(|s| s.name == name)
            .map(|s| s.wall)
            .unwrap_or_default();
        let wall_ns = saturating_u64(wall.as_nanos());
        let wall_s = wall.as_secs_f64();
        benches.push(BenchRecord {
            name: name.to_string(),
            wall_ns,
            items: outcome.items,
            ops_per_s: if wall_s > 0.0 {
                outcome.items as f64 / wall_s
            } else {
                0.0
            },
            peak_rss_kib: peak_rss_kib(),
            alloc_count: alloc1.saturating_sub(alloc0),
            alloc_bytes: bytes1.saturating_sub(bytes0),
            stages: outcome
                .stages
                .iter()
                .map(|s| StageRecord {
                    name: s.name.clone(),
                    items: saturating_u64(s.items as u128),
                    wall_ns: saturating_u64(s.wall.as_nanos()),
                })
                .collect(),
            counters: outcome.counters,
        });
    }
    Ok(CoreReport {
        schema: SCHEMA.to_string(),
        suite: spec.name.to_string(),
        scale,
        jobs: 1,
        benches,
    })
}

fn run_bench(name: &str, scale: u64) -> Result<SuiteOutcome, HarnessError> {
    match name {
        "fig1" => suite::fig1::run(),
        "fig5" => suite::fig5::run(scale, None),
        "table1" => suite::table1::run(),
        "ycsb_core" => suite::ycsb_core::run(scale),
        "serve_throughput" => suite::serve_throughput::run(scale),
        other => Err(format!("unknown perf bench '{other}'")),
    }
}

// ---------------------------------------------------------------- JSON

impl CoreReport {
    /// Render the trajectory as pretty JSON (stable field order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", json::escape(&self.schema));
        let _ = writeln!(out, "  \"suite\": \"{}\",", json::escape(&self.suite));
        let _ = writeln!(out, "  \"scale\": {},", self.scale);
        let _ = writeln!(out, "  \"jobs\": {},", self.jobs);
        out.push_str("  \"benches\": [\n");
        for (i, b) in self.benches.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": \"{}\",", json::escape(&b.name));
            let _ = writeln!(out, "      \"wall_ns\": {},", b.wall_ns);
            let _ = writeln!(out, "      \"items\": {},", b.items);
            let _ = writeln!(out, "      \"ops_per_s\": {:.3},", b.ops_per_s);
            let _ = writeln!(out, "      \"peak_rss_kib\": {},", b.peak_rss_kib);
            let _ = writeln!(out, "      \"alloc_count\": {},", b.alloc_count);
            let _ = writeln!(out, "      \"alloc_bytes\": {},", b.alloc_bytes);
            out.push_str("      \"stages\": [");
            for (j, s) in b.stages.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n        {{\"name\": \"{}\", \"items\": {}, \"wall_ns\": {}}}",
                    json::escape(&s.name),
                    s.items,
                    s.wall_ns
                );
            }
            if !b.stages.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("],\n");
            out.push_str("      \"counters\": {");
            for (j, (k, v)) in b.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\n        \"{}\": {}", json::escape(k), v);
            }
            if !b.counters.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("}\n");
            out.push_str(if i + 1 < self.benches.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a trajectory document. Lexical failures carry the source
    /// line ([`json::ParseError`]); structural failures name the field.
    pub fn from_json(src: &str) -> Result<CoreReport, json::ParseError> {
        let doc = json::parse(src)?;
        Self::from_value(&doc).map_err(|msg| json::ParseError { line: 1, msg })
    }

    fn from_value(doc: &Json) -> Result<CoreReport, String> {
        let schema = doc
            .field("schema", "trajectory")?
            .str("schema")?
            .to_string();
        let suite = doc.field("suite", "trajectory")?.str("suite")?.to_string();
        let scale = doc.field("scale", "trajectory")?.u64("scale")?;
        let jobs = doc.field("jobs", "trajectory")?.u64("jobs")?;
        let mut benches = Vec::new();
        for (i, b) in doc
            .field("benches", "trajectory")?
            .arr("benches")?
            .iter()
            .enumerate()
        {
            let what = format!("benches[{i}]");
            let name = b.field("name", &what)?.str("name")?.to_string();
            let mut stages = Vec::new();
            for (j, s) in b.field("stages", &what)?.arr("stages")?.iter().enumerate() {
                let swhat = format!("{what}.stages[{j}]");
                stages.push(StageRecord {
                    name: s.field("name", &swhat)?.str("name")?.to_string(),
                    items: s.field("items", &swhat)?.u64("items")?,
                    wall_ns: s.field("wall_ns", &swhat)?.u64("wall_ns")?,
                });
            }
            let mut counters = Vec::new();
            for (k, v) in b.field("counters", &what)?.obj("counters")? {
                counters.push((k.clone(), v.u64(&format!("{what}.counters.{k}"))?));
            }
            benches.push(BenchRecord {
                wall_ns: b.field("wall_ns", &what)?.u64("wall_ns")?,
                items: b.field("items", &what)?.u64("items")?,
                ops_per_s: b.field("ops_per_s", &what)?.f64("ops_per_s")?,
                peak_rss_kib: b.field("peak_rss_kib", &what)?.u64("peak_rss_kib")?,
                alloc_count: b.field("alloc_count", &what)?.u64("alloc_count")?,
                alloc_bytes: b.field("alloc_bytes", &what)?.u64("alloc_bytes")?,
                stages,
                counters,
                name,
            });
        }
        Ok(CoreReport {
            schema,
            suite,
            scale,
            jobs,
            benches,
        })
    }
}

// ------------------------------------------------------------- compare

/// Regression thresholds for [`compare`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Fail when `current wall > baseline wall * wall_tolerance`.
    /// 1.5 locally; the CI smoke gate passes 3.0 (runner variance).
    pub wall_tolerance: f64,
    /// Fail when allocation counts drift by more than this relative
    /// fraction (toolchain bumps move them slightly; sim counters are
    /// still compared exactly).
    pub alloc_tolerance: f64,
    /// Absolute wall-clock slack added on top of the ratio gate:
    /// a regression only fails when
    /// `current > baseline * wall_tolerance + wall_floor_ns`.
    /// Sub-millisecond benches (table1 prints two rows) are pure
    /// scheduler jitter — without a floor they flap the gate at any
    /// ratio tolerance.
    pub wall_floor_ns: u64,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds {
            wall_tolerance: 1.5,
            alloc_tolerance: 0.02,
            wall_floor_ns: 5_000_000,
        }
    }
}

/// What a finding means for the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// Baseline and current disagree on schema/suite/scale — not
    /// comparable. Fails.
    Incomparable,
    /// A bench present in the baseline is missing from the current
    /// run. Fails.
    MissingBench,
    /// A bench new in the current run. Informational.
    NewBench,
    /// Wall clock regressed past the tolerance. Fails.
    WallRegression,
    /// Wall clock improved past the inverse tolerance. Informational.
    WallImprovement,
    /// A deterministic counter changed. Fails.
    CounterDrift,
    /// Allocation counts drifted past the tolerance. Fails.
    AllocDrift,
}

impl FindingKind {
    /// Stable machine-readable name.
    pub fn as_str(&self) -> &'static str {
        match self {
            FindingKind::Incomparable => "incomparable",
            FindingKind::MissingBench => "missing_bench",
            FindingKind::NewBench => "new_bench",
            FindingKind::WallRegression => "wall_regression",
            FindingKind::WallImprovement => "wall_improvement",
            FindingKind::CounterDrift => "counter_drift",
            FindingKind::AllocDrift => "alloc_drift",
        }
    }

    /// Does this finding fail the compare gate?
    pub fn fails(&self) -> bool {
        !matches!(self, FindingKind::NewBench | FindingKind::WallImprovement)
    }
}

/// One compare finding.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfFinding {
    /// Bench the finding is about (empty for run-level findings).
    pub bench: String,
    /// Metric name (`wall_ns`, `alloc_count`, a counter name, …).
    pub metric: String,
    /// Classification.
    pub kind: FindingKind,
    /// Baseline value, rendered.
    pub baseline: String,
    /// Current value, rendered.
    pub current: String,
    /// `current / baseline` where meaningful.
    pub ratio: Option<f64>,
    /// Human-readable detail.
    pub note: String,
}

/// The outcome of diffing two trajectories.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Comparison {
    /// All findings, in bench order.
    pub findings: Vec<PerfFinding>,
}

impl Comparison {
    /// Findings that fail the gate.
    pub fn failures(&self) -> usize {
        self.findings.iter().filter(|f| f.kind.fails()).count()
    }
}

fn ratio(current: u64, baseline: u64) -> Option<f64> {
    (baseline > 0).then(|| current as f64 / baseline as f64)
}

/// Diff `current` against `baseline` under `thresholds`.
pub fn compare(baseline: &CoreReport, current: &CoreReport, th: &Thresholds) -> Comparison {
    let mut cmp = Comparison::default();
    for (metric, b, c) in [
        ("schema", &baseline.schema, &current.schema),
        ("suite", &baseline.suite, &current.suite),
    ] {
        if b != c {
            cmp.findings.push(PerfFinding {
                bench: String::new(),
                metric: metric.to_string(),
                kind: FindingKind::Incomparable,
                baseline: b.clone(),
                current: c.clone(),
                ratio: None,
                note: format!("{metric} mismatch; runs are not comparable"),
            });
        }
    }
    if baseline.scale != current.scale {
        cmp.findings.push(PerfFinding {
            bench: String::new(),
            metric: "scale".to_string(),
            kind: FindingKind::Incomparable,
            baseline: baseline.scale.to_string(),
            current: current.scale.to_string(),
            ratio: None,
            note: "scale mismatch; counters and walls are not comparable".to_string(),
        });
    }
    if !cmp.findings.is_empty() {
        // Nothing below is meaningful across incompatible runs.
        return cmp;
    }

    for b in &baseline.benches {
        let Some(c) = current.benches.iter().find(|c| c.name == b.name) else {
            cmp.findings.push(PerfFinding {
                bench: b.name.clone(),
                metric: "bench".to_string(),
                kind: FindingKind::MissingBench,
                baseline: "present".to_string(),
                current: "absent".to_string(),
                ratio: None,
                note: format!("bench {} missing from the current run", b.name),
            });
            continue;
        };
        // Wall clock: loose, threshold-gated both ways, with an
        // absolute floor so micro-bench jitter never fires the gate.
        let floor = th.wall_floor_ns as f64;
        if let Some(r) = ratio(c.wall_ns, b.wall_ns) {
            if c.wall_ns as f64 > b.wall_ns as f64 * th.wall_tolerance + floor {
                cmp.findings.push(PerfFinding {
                    bench: b.name.clone(),
                    metric: "wall_ns".to_string(),
                    kind: FindingKind::WallRegression,
                    baseline: b.wall_ns.to_string(),
                    current: c.wall_ns.to_string(),
                    ratio: Some(r),
                    note: format!("{:.2}x slower (tolerance {:.2}x)", r, th.wall_tolerance),
                });
            } else if (b.wall_ns as f64) > c.wall_ns as f64 * th.wall_tolerance + floor {
                cmp.findings.push(PerfFinding {
                    bench: b.name.clone(),
                    metric: "wall_ns".to_string(),
                    kind: FindingKind::WallImprovement,
                    baseline: b.wall_ns.to_string(),
                    current: c.wall_ns.to_string(),
                    ratio: Some(r),
                    note: format!("{:.2}x faster", 1.0 / r),
                });
            }
        }
        // Deterministic counters (and items): exact.
        if c.items != b.items {
            cmp.findings.push(PerfFinding {
                bench: b.name.clone(),
                metric: "items".to_string(),
                kind: FindingKind::CounterDrift,
                baseline: b.items.to_string(),
                current: c.items.to_string(),
                ratio: ratio(c.items, b.items),
                note: "work-item count changed".to_string(),
            });
        }
        for (name, bv) in &b.counters {
            let cv = c.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
            match cv {
                Some(cv) if cv == *bv => {}
                Some(cv) => cmp.findings.push(PerfFinding {
                    bench: b.name.clone(),
                    metric: name.clone(),
                    kind: FindingKind::CounterDrift,
                    baseline: bv.to_string(),
                    current: cv.to_string(),
                    ratio: ratio(cv, *bv),
                    note: "deterministic counter drifted".to_string(),
                }),
                None => cmp.findings.push(PerfFinding {
                    bench: b.name.clone(),
                    metric: name.clone(),
                    kind: FindingKind::CounterDrift,
                    baseline: bv.to_string(),
                    current: "absent".to_string(),
                    ratio: None,
                    note: "deterministic counter disappeared".to_string(),
                }),
            }
        }
        // Allocation counts: relative tolerance.
        if let Some(r) = ratio(c.alloc_count, b.alloc_count) {
            if (r - 1.0).abs() > th.alloc_tolerance {
                cmp.findings.push(PerfFinding {
                    bench: b.name.clone(),
                    metric: "alloc_count".to_string(),
                    kind: FindingKind::AllocDrift,
                    baseline: b.alloc_count.to_string(),
                    current: c.alloc_count.to_string(),
                    ratio: Some(r),
                    note: format!(
                        "allocation count drifted {:+.2}% (tolerance ±{:.0}%)",
                        (r - 1.0) * 100.0,
                        th.alloc_tolerance * 100.0
                    ),
                });
            }
        }
    }
    for c in &current.benches {
        if !baseline.benches.iter().any(|b| b.name == c.name) {
            cmp.findings.push(PerfFinding {
                bench: c.name.clone(),
                metric: "bench".to_string(),
                kind: FindingKind::NewBench,
                baseline: "absent".to_string(),
                current: "present".to_string(),
                ratio: None,
                note: format!("bench {} is new in the current run", c.name),
            });
        }
    }
    cmp
}

/// Render a comparison as `findings.json`.
pub fn findings_json(cmp: &Comparison, th: &Thresholds) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"mnemo-perf-findings/v1\",");
    let _ = writeln!(out, "  \"wall_tolerance\": {},", th.wall_tolerance);
    let _ = writeln!(out, "  \"alloc_tolerance\": {},", th.alloc_tolerance);
    let _ = writeln!(out, "  \"wall_floor_ns\": {},", th.wall_floor_ns);
    let _ = writeln!(out, "  \"failures\": {},", cmp.failures());
    out.push_str("  \"findings\": [");
    for (i, f) in cmp.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"bench\": \"{}\", \"metric\": \"{}\", \"kind\": \"{}\", \
             \"fails\": {}, \"baseline\": \"{}\", \"current\": \"{}\", \"ratio\": {}, \
             \"note\": \"{}\"}}",
            json::escape(&f.bench),
            json::escape(&f.metric),
            f.kind.as_str(),
            f.kind.fails(),
            json::escape(&f.baseline),
            json::escape(&f.current),
            f.ratio
                .map_or_else(|| "null".to_string(), |r| format!("{r:.4}")),
            json::escape(&f.note)
        );
    }
    if !cmp.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Render the human compare summary: per-bench walls with ratios, then
/// the findings.
pub fn human_summary(baseline: &CoreReport, current: &CoreReport, cmp: &Comparison) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "perf compare: suite {} scale {} — baseline vs current",
        current.suite, current.scale
    );
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>14} {:>8}",
        "bench", "baseline ms", "current ms", "ratio"
    );
    for b in &baseline.benches {
        if let Some(c) = current.benches.iter().find(|c| c.name == b.name) {
            let r = ratio(c.wall_ns, b.wall_ns).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "{:<18} {:>14.2} {:>14.2} {:>7.2}x",
                b.name,
                b.wall_ns as f64 / 1e6,
                c.wall_ns as f64 / 1e6,
                r
            );
        }
    }
    if cmp.findings.is_empty() {
        let _ = writeln!(out, "\nno findings: trajectories agree within thresholds");
    } else {
        let _ = writeln!(out, "\nfindings ({} fail the gate):", cmp.failures());
        for f in &cmp.findings {
            let _ = writeln!(
                out,
                "  [{}] {}{}{}: {} -> {} ({})",
                if f.kind.fails() { "FAIL" } else { "info" },
                f.bench,
                if f.bench.is_empty() { "" } else { "." },
                f.metric,
                f.baseline,
                f.current,
                f.note
            );
        }
    }
    out
}

/// Render a fresh run as a human table (the `mnemo perf` output).
pub fn run_summary(report: &CoreReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "perf suite {} (scale {}, jobs {}): {} benches",
        report.suite,
        report.scale,
        report.jobs,
        report.benches.len()
    );
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>12} {:>14} {:>12} {:>12}",
        "bench", "wall ms", "items", "items/s", "allocs", "peak MiB"
    );
    for b in &report.benches {
        let _ = writeln!(
            out,
            "{:<18} {:>12.2} {:>12} {:>14.0} {:>12} {:>12.1}",
            b.name,
            b.wall_ns as f64 / 1e6,
            b.items,
            b.ops_per_s,
            b.alloc_count,
            b.peak_rss_kib as f64 / 1024.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, wall_ns: u64, alloc: u64) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            wall_ns,
            items: 100,
            // A value exact under the writer's `{:.3}` formatting, so
            // the round-trip test can compare reports for equality.
            ops_per_s: 12_345.5,
            peak_rss_kib: 2048,
            alloc_count: alloc,
            alloc_bytes: alloc * 64,
            stages: vec![StageRecord {
                name: "stage-a".to_string(),
                items: 100,
                wall_ns: wall_ns / 2,
            }],
            counters: vec![
                ("csv_fnv".to_string(), 0xdead_beef),
                ("rows".to_string(), 63),
            ],
        }
    }

    fn report(wall_ns: u64) -> CoreReport {
        CoreReport {
            schema: SCHEMA.to_string(),
            suite: "smoke".to_string(),
            scale: 50,
            jobs: 1,
            benches: vec![record("fig5", wall_ns, 10_000)],
        }
    }

    #[test]
    fn trajectory_json_round_trips() {
        let r = report(1_500_000);
        let parsed = CoreReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn corrupt_json_reports_the_line() {
        let mut doc = report(1_000).to_json();
        // Break a number mid-document.
        let pos = doc.find("\"wall_ns\": 1000").unwrap();
        doc.replace_range(pos..pos + 15, "\"wall_ns\": 10x0");
        let err = CoreReport::from_json(&doc).unwrap_err();
        assert!(err.line > 1, "line {} in {err}", err.line);
    }

    #[test]
    fn schema_mismatch_is_incomparable() {
        let base = report(1_000_000);
        let mut cur = report(1_000_000);
        cur.schema = "mnemo-bench-core/v2".to_string();
        let cmp = compare(&base, &cur, &Thresholds::default());
        assert_eq!(cmp.findings.len(), 1);
        assert_eq!(cmp.findings[0].kind, FindingKind::Incomparable);
        assert_eq!(cmp.failures(), 1);
    }

    #[test]
    fn improvement_is_informational() {
        let base = report(2_000_000_000);
        let cur = report(500_000_000);
        let cmp = compare(&base, &cur, &Thresholds::default());
        assert_eq!(cmp.findings.len(), 1, "{cmp:?}");
        assert_eq!(cmp.findings[0].kind, FindingKind::WallImprovement);
        assert_eq!(cmp.failures(), 0);
    }

    #[test]
    fn regression_over_threshold_fails() {
        let base = report(1_000_000_000);
        let cur = report(1_600_000_000);
        let cmp = compare(&base, &cur, &Thresholds::default());
        assert_eq!(cmp.failures(), 1, "{cmp:?}");
        assert_eq!(cmp.findings[0].kind, FindingKind::WallRegression);
        // Within tolerance: clean.
        let cur = report(1_400_000_000);
        assert_eq!(compare(&base, &cur, &Thresholds::default()).failures(), 0);
        // Wider tolerance forgives the same regression.
        let loose = Thresholds {
            wall_tolerance: 3.0,
            ..Thresholds::default()
        };
        let cur = report(1_600_000_000);
        assert_eq!(compare(&base, &cur, &loose).failures(), 0);
    }

    #[test]
    fn wall_floor_forgives_microbench_jitter() {
        // 60us -> 100us is a 1.67x "regression" but far below the 5ms
        // floor: micro-benches must not flap the gate.
        let base = report(60_000);
        let cur = report(100_000);
        assert_eq!(compare(&base, &cur, &Thresholds::default()).failures(), 0);
        // With the floor disabled the same pair fails.
        let strict = Thresholds {
            wall_floor_ns: 0,
            ..Thresholds::default()
        };
        assert_eq!(compare(&base, &cur, &strict).failures(), 1);
    }

    #[test]
    fn missing_bench_fails() {
        let base = report(1_000_000);
        let mut cur = report(1_000_000);
        cur.benches.clear();
        let cmp = compare(&base, &cur, &Thresholds::default());
        assert_eq!(cmp.findings[0].kind, FindingKind::MissingBench);
        assert_eq!(cmp.failures(), 1);
    }

    #[test]
    fn counter_drift_fails_exactly() {
        let base = report(1_000_000);
        let mut cur = report(1_000_000);
        cur.benches[0].counters[0].1 ^= 1;
        let cmp = compare(&base, &cur, &Thresholds::default());
        assert_eq!(cmp.failures(), 1, "{cmp:?}");
        assert_eq!(cmp.findings[0].kind, FindingKind::CounterDrift);
    }

    #[test]
    fn alloc_drift_has_tolerance() {
        let base = report(1_000_000);
        let mut cur = report(1_000_000);
        cur.benches[0].alloc_count = 10_100; // +1%: inside the 2% band
        assert_eq!(compare(&base, &cur, &Thresholds::default()).failures(), 0);
        cur.benches[0].alloc_count = 10_500; // +5%: drift
        let cmp = compare(&base, &cur, &Thresholds::default());
        assert_eq!(cmp.failures(), 1, "{cmp:?}");
        assert_eq!(cmp.findings[0].kind, FindingKind::AllocDrift);
    }

    #[test]
    fn findings_json_and_summaries_render() {
        let base = report(1_000_000_000);
        let cur = report(2_000_000_000);
        let th = Thresholds::default();
        let cmp = compare(&base, &cur, &th);
        let doc = findings_json(&cmp, &th);
        assert!(doc.contains("\"wall_regression\""), "{doc}");
        assert!(json::parse(&doc).is_ok(), "findings.json must be valid");
        let human = human_summary(&base, &cur, &cmp);
        assert!(human.contains("FAIL"), "{human}");
        let run = run_summary(&cur);
        assert!(run.contains("fig5"), "{run}");
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"abc"), fnv64(b"abc"));
        assert_ne!(fnv64(b"abc"), fnv64(b"abd"));
    }

    #[test]
    fn suites_are_pinned() {
        assert_eq!(suite_spec("core").unwrap().default_scale, 1);
        assert_eq!(suite_spec("smoke").unwrap().default_scale, 50);
        assert!(suite_spec("nope").is_none());
    }
}
