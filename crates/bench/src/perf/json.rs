//! Minimal JSON reader/writer for the perf trajectory files.
//!
//! The workspace builds offline (no `serde_json`), so `BENCH_CORE.json`
//! and `findings.json` go through this hand-rolled implementation.
//! Numbers are kept as their raw source text (lossless for `u64`
//! counters and checksums, which would round through `f64`), and every
//! parse error carries the 1-based source line so a corrupt baseline
//! surfaces as a line-numbered CLI error instead of a panic.

use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text (lossless round-trip).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure at a 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending byte.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field; `what` names the context in the error.
    pub fn field(&self, key: &str, what: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("{what}: missing field `{key}`"))
    }

    /// The string payload.
    pub fn str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("{what}: expected a string, got {}", other.kind())),
        }
    }

    /// The number as `u64` (exact — raw text is parsed, not `f64`).
    pub fn u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Num(raw) => raw
                .parse::<u64>()
                .map_err(|_| format!("{what}: `{raw}` is not a u64")),
            other => Err(format!("{what}: expected a number, got {}", other.kind())),
        }
    }

    /// The number as `f64`.
    pub fn f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(raw) => raw
                .parse::<f64>()
                .map_err(|_| format!("{what}: `{raw}` is not a number")),
            other => Err(format!("{what}: expected a number, got {}", other.kind())),
        }
    }

    /// The array elements.
    pub fn arr(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("{what}: expected an array, got {}", other.kind())),
        }
    }

    /// The object fields.
    pub fn obj(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(fields) => Ok(fields),
            other => Err(format!("{what}: expected an object, got {}", other.kind())),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "a bool",
            Json::Num(_) => "a number",
            Json::Str(_) => "a string",
            Json::Arr(_) => "an array",
            Json::Obj(_) => "an object",
        }
    }
}

/// Escape a string for JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing content after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => {
                Err(self.err(format!("expected `{}`, found `{}`", b as char, got as char)))
            }
            None => Err(self.err(format!("expected `{}`, found end of input", b as char))),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        for &b in word.as_bytes() {
            self.expect_byte(b)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character `{}`", other as char))),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(fields)),
                Some(other) => {
                    return Err(self.err(format!(
                        "expected `,` or `}}` in object, found `{}`",
                        other as char
                    )))
                }
                None => return Err(self.err("unterminated object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                Some(other) => {
                    return Err(self.err(format!(
                        "expected `,` or `]` in array, found `{}`",
                        other as char
                    )))
                }
                None => return Err(self.err("unterminated array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("unknown string escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Re-assemble the UTF-8 sequence from its lead byte.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        let mut digits = 0usize;
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+')) {
            if matches!(self.peek(), Some(b'0'..=b'9')) {
                digits += 1;
            }
            self.bump();
            // `-` may follow an exponent marker.
            if matches!(self.peek(), Some(b'-'))
                && matches!(self.bytes.get(self.pos - 1), Some(b'e' | b'E'))
            {
                self.bump();
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if digits == 0 || raw.parse::<f64>().is_err() {
            return Err(self.err(format!("malformed number `{raw}`")));
        }
        Ok(Json::Num(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_numbers_losslessly() {
        let doc = "{\"a\": 18446744073709551615, \"b\": -1.25e3}";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().u64("a").unwrap(), u64::MAX);
        assert_eq!(v.get("b").unwrap().f64("b").unwrap(), -1250.0);
    }

    #[test]
    fn parses_nested_structures_and_escapes() {
        let doc = r#"{"rows": [{"name": "a\"b", "ok": true}, null], "n": 3}"#;
        let v = parse(doc).unwrap();
        let rows = v.get("rows").unwrap().arr("rows").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("name").unwrap().str("name").unwrap(), "a\"b");
        assert_eq!(rows[1], Json::Null);
    }

    #[test]
    fn errors_carry_the_line_number() {
        let doc = "{\n  \"a\": 1,\n  \"b\": nope\n}\n";
        let err = parse(doc).unwrap_err();
        assert_eq!(err.line, 3, "{err}");
        assert!(err.to_string().starts_with("line 3:"), "{err}");

        let err = parse("{\"a\": 1\n").unwrap_err();
        assert_eq!(err.line, 2, "{err}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(parse("{} x").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn escape_handles_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
