//! Library form of the paper-figure bench suite.
//!
//! Each submodule is the body of the matching `src/bin/` harness,
//! callable in-process so `mnemo perf` can run the whole suite in one
//! binary and charge wall clock, allocations, and deterministic
//! counters per bench. The bins stay as thin wrappers, so
//! `cargo run --release --bin fig5` and `mnemo perf` execute the exact
//! same code and write the exact same artifacts (the golden-figure CI
//! gates hold for both entry points).
//!
//! Every `run` takes its scale divisor explicitly instead of reading
//! `MNEMO_SCALE` itself — the perf harness pins the scale per suite and
//! must not mutate process environment mid-run.

pub mod fig1;
pub mod fig5;
pub mod serve_throughput;
pub mod table1;
pub mod tier_matrix;
pub mod ycsb_core;

use crate::perf::fnv64;

/// What one bench reports back to the perf harness.
#[derive(Debug, Clone, Default)]
pub struct SuiteOutcome {
    /// Work items driven (requests for trace benches, rows for
    /// catalogue benches) — the denominator for ops/s.
    pub items: u64,
    /// Deterministic sim-domain counters, sorted by name. These are
    /// exact-compared by the CI perf gate: totals, output-row counts,
    /// and FNV-1a checksums of the CSV artifacts.
    pub counters: Vec<(String, u64)>,
    /// Per-stage wall samples from the bench's own `SweepTimer`
    /// (empty for single-stage benches).
    pub stages: Vec<mnemo_par::StageSample>,
}

impl SuiteOutcome {
    /// Record a deterministic counter, keeping the list name-sorted.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.counters.push((name.to_string(), value));
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
    }
}

/// FNV-1a checksum of a CSV artifact exactly as [`crate::write_csv`]
/// lays it out: header line, then one line per row, `\n`-terminated.
pub fn csv_fnv(header: &str, rows: &[String]) -> u64 {
    let mut text =
        String::with_capacity(header.len() + 1 + rows.iter().map(|r| r.len() + 1).sum::<usize>());
    text.push_str(header);
    text.push('\n');
    for row in rows {
        text.push_str(row);
        text.push('\n');
    }
    fnv64(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_fnv_matches_file_layout() {
        let rows = vec!["a,1".to_string(), "b,2".to_string()];
        assert_eq!(csv_fnv("k,v", &rows), fnv64(b"k,v\na,1\nb,2\n"));
    }

    #[test]
    fn counters_stay_sorted() {
        let mut o = SuiteOutcome::default();
        o.counter("zeta", 1);
        o.counter("alpha", 2);
        assert_eq!(o.counters[0].0, "alpha");
    }
}
