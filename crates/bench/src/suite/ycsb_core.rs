//! Extension experiment: Mnemo applied to the six standard YCSB core
//! workloads (A-F) the paper's Table III was adapted from — including
//! scan-heavy E (scans expand into consecutive reads) and
//! read-modify-write-heavy F.

use super::SuiteOutcome;
use crate::{consult, print_table, seed_for, stores, write_csv, HarnessError};
use mnemo::advisor::OrderingKind;
use ycsb::WorkloadSpec;

const SLO_SLOWDOWN: f64 = 0.10;
const CSV_HEADER: &str = "workload,store,sensitivity,cost_reduction,fast_ratio";

/// Run the full store x workload matrix at scale divisor `d` and emit
/// `ycsb_core.csv`.
pub fn run(d: u64) -> Result<SuiteOutcome, HarnessError> {
    println!("YCSB core workloads (A-F): sensitivity and sizing at a 10% SLO");
    let d = d.max(1);
    // The suite at YCSB's default ~1 KB records, plus a 100 KB "media"
    // variant of each workload: at 1 KB the engines' fixed per-op cost
    // masks memory time entirely (the paper's Fig. 5c observation about
    // small records), so the media variant shows where the trade-off
    // actually opens up.
    let suite: Vec<WorkloadSpec> = WorkloadSpec::ycsb_core_suite()
        .into_iter()
        .flat_map(|w| {
            let keys = (w.keys / d).max(10);
            let requests = (w.requests / d as usize).max(100);
            let small = w.scaled(keys, requests);
            let mut media = small.clone();
            media.name = format!("{} @100KB", small.name);
            media.sizes = ycsb::SizeModel::Single(ycsb::SizeClass::Thumbnail);
            [small, media]
        })
        .collect();

    let jobs: Vec<(usize, usize)> = (0..stores().len())
        .flat_map(|s| (0..suite.len()).map(move |w| (s, w)))
        .collect();
    let results = crate::parallel(jobs.len(), |i| -> Result<_, String> {
        let (s, w) = jobs[i];
        let spec = &suite[w];
        let trace = spec.generate(seed_for(&spec.name));
        let consultation = consult(stores()[s], &trace, OrderingKind::MnemoT)?;
        let sensitivity = consultation.baselines.sensitivity();
        let rec = consultation
            .recommend(SLO_SLOWDOWN)
            .ok_or("recommendation on an empty curve")?;
        Ok((s, w, trace.len() as u64, sensitivity, rec))
    });
    let results = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    let requests: u64 = results.iter().map(|(_, _, n, _, _)| n).sum();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (w, spec) in suite.iter().enumerate() {
        let trace_reads = spec.read_fraction();
        let mut row = vec![
            spec.name.clone(),
            spec.distribution.name().to_string(),
            format!("{:.0}% reads", trace_reads * 100.0),
        ];
        for (s, store) in stores().iter().enumerate() {
            let (_, _, _, sens, rec) = results
                .iter()
                .find(|(rs, rw, _, _, _)| *rs == s && *rw == w)
                .ok_or_else(|| format!("missing result for store {s} workload {w}"))?;
            row.push(format!(
                "{:+.0}% / {:.2}x",
                sens * 100.0,
                rec.cost_reduction
            ));
            csv.push(format!(
                "{},{},{:.4},{:.4},{:.4}",
                spec.name, store, sens, rec.cost_reduction, rec.fast_ratio
            ));
        }
        rows.push(row);
    }
    print_table(
        "per store: Fast-vs-Slow sensitivity / cost at 10% SLO",
        &[
            "workload",
            "distribution",
            "mix",
            "Redis",
            "DynamoDB",
            "Memcached",
        ],
        &rows,
    );
    write_csv("ycsb_core.csv", CSV_HEADER, &csv)?;
    println!("\nExpected shape: read-only C is the most savings-friendly zipfian workload;");
    println!("update-heavy A and RMW-heavy F are damped by write traffic; scan-heavy E");
    println!("streams large ranges and behaves like a read-only workload with a flatter");
    println!("access CDF (scan starts are zipfian but scans sweep cold keys too).");

    let mut outcome = SuiteOutcome {
        items: requests,
        ..SuiteOutcome::default()
    };
    outcome.counter("consultations", results.len() as u64);
    outcome.counter("trace_requests", requests);
    outcome.counter("csv_fnv", super::csv_fnv(CSV_HEADER, &csv));
    Ok(outcome)
}
