//! Fig. 1 — percentage of the cost of memory in select Memory Optimized
//! VMs across major cloud providers.
//!
//! Methodology (§I / Amur et al.): model every instance price as
//! `vCPU*C + GB*M`, least-squares over the provider's catalogue, then
//! report `GB*M / price` for each memory-optimized instance.

use super::SuiteOutcome;
use crate::{print_table, write_csv, HarnessError};
use cloudcost::regression::{memory_share_series, CostSplit};
use cloudcost::{Provider, ProviderKind};

const CSV_HEADER: &str = "provider,instance,memory_share";

/// Fit every provider catalogue and emit `fig1_memory_share.csv` plus
/// the fig1 telemetry export. Scale-independent (fixed price catalogue).
pub fn run() -> Result<SuiteOutcome, HarnessError> {
    println!("Fig. 1: memory share of VM cost (Nov-2018 on-demand prices)");
    let mut csv_rows = Vec::new();
    // The figure's inputs are a fixed price catalogue, so everything
    // recorded here is scale- and jobs-independent: the export is the
    // byte-stable golden the CI bench-smoke job diffs.
    let mut tel = mnemo_telemetry::Recorder::new();
    let mut providers = 0u64;
    for kind in ProviderKind::ALL {
        let slug = match kind {
            ProviderKind::Aws => "aws",
            ProviderKind::Gcp => "gcp",
            ProviderKind::Azure => "azure",
        };
        let provider = Provider::new(kind);
        let split = CostSplit::fit(&provider.instances)
            .map_err(|e| format!("catalogue fit failed: {e}"))?;
        providers += 1;
        tel.count("fig1.providers", 1);
        tel.count("fig1.catalogue_instances", provider.instances.len() as u64);
        tel.gauge(
            &format!("fig1.{slug}.fit_rms_error"),
            split.rms_relative_error,
        );
        let rows: Vec<Vec<String>> = memory_share_series(&provider.instances)
            .map_err(|e| format!("memory-share series failed: {e}"))?
            .iter()
            .map(|r| {
                csv_rows.push(format!("{},{},{:.4}", kind.name(), r.instance, r.share));
                tel.count("fig1.instances", 1);
                tel.gauge("fig1.memory_share", r.share);
                tel.gauge(&format!("fig1.{slug}.memory_share"), r.share);
                vec![r.instance.to_string(), format!("{:5.1}%", r.share * 100.0)]
            })
            .collect();
        print_table(
            &format!(
                "{} (C=${:.4}/vCPU/h, M=${:.5}/GB/h, rms {:.1}%)",
                kind.name(),
                split.per_vcpu,
                split.per_gb,
                split.rms_relative_error * 100.0
            ),
            &["instance", "memory share"],
            &rows,
        );
    }
    write_csv("fig1_memory_share.csv", CSV_HEADER, &csv_rows)?;
    crate::export_telemetry("fig1", &[tel.take_snapshot(0)])?;
    println!("\nPaper band: memory is ~60-85% of the VM cost for these instances.");

    let mut outcome = SuiteOutcome {
        items: csv_rows.len() as u64,
        ..SuiteOutcome::default()
    };
    outcome.counter("providers", providers);
    outcome.counter("instances", csv_rows.len() as u64);
    outcome.counter("csv_fnv", super::csv_fnv(CSV_HEADER, &csv_rows));
    Ok(outcome)
}
