//! Fig. 5 — Redis client performance as a function of memory cost for
//! incremental FastMem:SlowMem capacity ratios, with Mnemo's estimate.
//!
//! Panels: (a) key distribution (trending / news feed / timeline),
//! (b) read:write ratio (timeline vs edit thumbnail),
//! (c) record size (trending vs trending preview).

use super::SuiteOutcome;
use crate::{
    consult, eval_points, paper_workload_at, print_table, seed_for, write_csv, HarnessError,
};
use kvsim::StoreKind;
use mnemo::advisor::OrderingKind;

const POINTS: usize = 9;
const CSV_HEADER: &str =
    "panel,workload,cost_reduction,measured_ops_s,estimated_ops_s,improvement_pct";

fn panel(
    d: u64,
    letter: char,
    title: &str,
    workloads: &[&str],
    csv: &mut Vec<String>,
) -> Result<u64, HarnessError> {
    println!("\n--- Fig. 5{letter}: {title} ---");
    let results = crate::parallel(workloads.len(), |i| -> Result<_, String> {
        let spec = paper_workload_at(d, workloads[i])?;
        let trace = spec.generate(seed_for(&spec.name));
        let consultation = consult(StoreKind::Redis, &trace, OrderingKind::TouchOrder)?;
        let points = eval_points(StoreKind::Redis, &trace, &consultation, POINTS)?;
        Ok((spec.name.clone(), trace.len() as u64, points))
    });
    let mut requests = 0u64;
    for result in results {
        let (name, trace_len, points) = result?;
        requests += trace_len;
        let slow = points
            .first()
            .ok_or("evaluation returned no points")?
            .measured_ops_s;
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                let meas = (p.measured_ops_s / slow - 1.0) * 100.0;
                let est = (p.estimated_ops_s / slow - 1.0) * 100.0;
                csv.push(format!(
                    "{letter},{name},{:.4},{:.1},{:.1},{:.1}",
                    p.cost_reduction, p.measured_ops_s, p.estimated_ops_s, meas
                ));
                vec![
                    format!("{:.2}", p.cost_reduction),
                    format!("{:8.1}", p.measured_ops_s),
                    format!("{:+5.1}%", meas),
                    format!("{:+5.1}%", est),
                ]
            })
            .collect();
        print_table(
            &format!("{name} (Redis, throughput vs memory cost)"),
            &[
                "cost (xFast)",
                "measured ops/s",
                "meas +% vs slow",
                "est +% vs slow",
            ],
            &rows,
        );
    }
    Ok(requests)
}

/// Run the requested panel (`None` = all) at scale divisor `d`,
/// emitting `fig5_curves.csv` and `timing-fig5.csv`.
pub fn run(d: u64, only: Option<char>) -> Result<SuiteOutcome, HarnessError> {
    let mut timer = mnemo_par::SweepTimer::new("fig5");
    let mut csv = Vec::new();
    let mut requests = 0u64;
    let run = |l: char| only.is_none() || only == Some(l);
    if run('a') {
        requests += timer.stage("panel-a", 3, || {
            panel(
                d,
                'a',
                "key distribution",
                &["trending", "news feed", "timeline"],
                &mut csv,
            )
        })?;
    }
    if run('b') {
        requests += timer.stage("panel-b", 2, || {
            panel(
                d,
                'b',
                "read:write ratio",
                &["timeline", "edit thumbnail"],
                &mut csv,
            )
        })?;
    }
    if run('c') {
        requests += timer.stage("panel-c", 2, || {
            panel(
                d,
                'c',
                "record size",
                &["trending", "trending preview"],
                &mut csv,
            )
        })?;
    }
    write_csv("fig5_curves.csv", CSV_HEADER, &csv)?;
    crate::write_timing(&timer)?;
    println!("\nPaper shape: throughput tracks the key-access CDF; trending gains ~31% of its");
    println!("~40% total improvement at ~36% of the FastMem-only cost.");

    let mut outcome = SuiteOutcome {
        items: requests,
        stages: timer.stages(),
        ..SuiteOutcome::default()
    };
    outcome.counter("trace_requests", requests);
    outcome.counter("rows", csv.len() as u64);
    outcome.counter("csv_fnv", super::csv_fnv(CSV_HEADER, &csv));
    Ok(outcome)
}
