//! Table I — testbed bandwidth and latency values for DRAM (FastMem)
//! and emulated NVM (SlowMem).

use super::SuiteOutcome;
use crate::{print_table, write_csv, HarnessError};
use hybridmem::HybridSpec;

const CSV_HEADER: &str = "tier,bandwidth_factor,latency_factor,read_latency_ns,bandwidth_gb_s";

/// Print Table I and emit `table1_testbed.csv`. Scale-independent.
pub fn run() -> Result<SuiteOutcome, HarnessError> {
    let spec = HybridSpec::paper_testbed();
    let (b, l) = spec.slow_factors();
    print_table(
        "Table I: testbed bandwidth and latency",
        &["", "FastMem", "SlowMem"],
        &[
            vec![
                "Factor".into(),
                "B:1 L:1".into(),
                format!("B:{b:.2} L:{l:.2}"),
            ],
            vec![
                "Latency (ns)".into(),
                format!("{:.1}", spec.fast.read_latency_ns),
                format!("{:.1}", spec.slow.read_latency_ns),
            ],
            vec![
                "BW (GB/s)".into(),
                format!("{:.1}", spec.fast.bandwidth_bytes_per_ns),
                format!("{:.2}", spec.slow.bandwidth_bytes_per_ns),
            ],
        ],
    );
    let csv_rows = [
        format!(
            "fastmem,1.00,1.00,{:.1},{:.2}",
            spec.fast.read_latency_ns, spec.fast.bandwidth_bytes_per_ns
        ),
        format!(
            "slowmem,{b:.2},{l:.2},{:.1},{:.2}",
            spec.slow.read_latency_ns, spec.slow.bandwidth_bytes_per_ns
        ),
    ];
    write_csv("table1_testbed.csv", CSV_HEADER, &csv_rows)?;
    println!(
        "\nLLC: {} MB ({} model), line {} B, {}-way",
        spec.cache.capacity_bytes >> 20,
        match spec.cache.kind {
            hybridmem::CacheKind::None => "disabled",
            hybridmem::CacheKind::ObjectLru => "object-LRU",
            hybridmem::CacheKind::SetAssociative => "set-associative",
        },
        spec.cache.line_bytes,
        spec.cache.ways
    );

    let mut outcome = SuiteOutcome {
        items: csv_rows.len() as u64,
        ..SuiteOutcome::default()
    };
    outcome.counter("rows", csv_rows.len() as u64);
    outcome.counter("csv_fnv", super::csv_fnv(CSV_HEADER, &csv_rows));
    Ok(outcome)
}
