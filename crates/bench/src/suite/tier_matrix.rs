//! N-tier extension experiment: the tiering-policy × hierarchy grid.
//!
//! Runs every [`mnemo_tier::PolicyKind`] against every hierarchy preset
//! on the tier scenario suite (the paper's trending baseline plus the
//! scan-analytics, TTL-churn and flash-crowd stress presets), clean and
//! under a per-hierarchy fault plan whose events name tiers by their
//! spec names. Emits `tier_matrix.csv` — one row per (workload,
//! hierarchy, policy, faults) cell with runtime, throughput, hierarchy
//! cost, the paper's cost-efficiency metric lifted to N tiers, and the
//! epoch-migration volume.
//!
//! Every run uses the virtual clock, disabled noise, and a fixed seed,
//! so the grid is byte-identical for every `--jobs` value — the CSV
//! joins the CI bench-smoke determinism gate and the committed golden
//! matrix.

use super::SuiteOutcome;
use crate::{print_table, seed_for, write_csv, HarnessError};
use hybridmem::clock::NoiseConfig;
use hybridmem::stack::StackSpec;
use kvsim::tiered::{trace_stats, trace_windows, TieredServer};
use mnemo_faults::{FaultPlan, TierNames};
use mnemo_tier::{dram_optane_ssd, paper_two_tier, PolicyKind};
use ycsb::WorkloadSpec;

/// Re-plan period as a fraction of the trace (4 epochs per run).
const EPOCHS_PER_RUN: u64 = 4;
/// Past every virtual timestamp the runs reach.
const FOREVER_NS: u128 = u128::MAX;

const CSV_HEADER: &str = "workload,hierarchy,policy,faults,requests,runtime_ns,\
throughput_ops_s,cost_usd,cost_efficiency,moved_keys,moved_bytes";

/// The hierarchy presets under test, with the tier whose degradation
/// the faulted variant names.
fn hierarchies() -> Vec<(&'static str, StackSpec, &'static str)> {
    vec![
        ("paper_two_tier", paper_two_tier(), "slowmem"),
        ("dram_optane_ssd", dram_optane_ssd(), "optane"),
    ]
}

/// Shrink a hierarchy's upper tiers relative to the trace's stored
/// footprint so placement is a real decision: the top tier holds ~20%,
/// intermediate tiers ~35%, and the bottom tier everything.
fn sized_for(mut spec: StackSpec, stored_bytes: u64) -> StackSpec {
    let n = spec.tiers.len();
    for (i, tier) in spec.tiers.iter_mut().enumerate() {
        tier.capacity_bytes = if i == 0 {
            (stored_bytes / 5).max(1)
        } else if i + 1 < n {
            (stored_bytes * 35 / 100).max(1)
        } else {
            stored_bytes + 4096
        };
    }
    // Keep the LLC proportional to the dataset, as the two-tier benches
    // do, so the cache cannot swallow the whole working set.
    spec.cache.capacity_bytes = spec
        .cache
        .capacity_bytes
        .min((stored_bytes / 85).max(1 << 16));
    spec
}

/// A degradation plan that names the hierarchy's tier by its spec name
/// (exercising the named-tier fault path end to end): a latency spike
/// plus a bandwidth throttle on `tier_name` for the whole run.
fn faulted_plan(spec: &StackSpec, tier_name: &str) -> Result<FaultPlan, String> {
    let names: Vec<&str> = spec.tiers.iter().map(|t| t.name.as_str()).collect();
    let tiers = TierNames::from_names(&names);
    let text = format!(
        "seed = 7\n\n\
         [[event]]\nkind = \"latency_spike\"\ntier = \"{tier_name}\"\n\
         start_ns = 0\nend_ns = {FOREVER_NS}\nfactor = 30.0\n\n\
         [[event]]\nkind = \"bandwidth_throttle\"\ntier = \"{tier_name}\"\n\
         start_ns = 0\nend_ns = {FOREVER_NS}\nfactor = 0.05\n"
    );
    FaultPlan::parse_toml_with(&text, &tiers).map_err(|e| format!("tier_matrix fault plan: {e}"))
}

struct Cell {
    workload: String,
    hierarchy: &'static str,
    policy: &'static str,
    faults: &'static str,
    requests: u64,
    runtime_ns: f64,
    cost_usd: f64,
    moved_keys: u64,
    moved_bytes: u64,
}

/// Run the grid at scale divisor `d` and emit `tier_matrix.csv`.
pub fn run(d: u64) -> Result<SuiteOutcome, HarnessError> {
    println!("tier matrix: tiering policy x hierarchy grid on the tier scenario suite");
    let d = d.max(1);
    // Equalise *primitive* request counts across mixes (scans expand),
    // so scan-analytics does not dwarf the point workloads.
    let traces: Vec<ycsb::Trace> = WorkloadSpec::tier_suite()
        .iter()
        .map(|w| {
            let per_op = w.ops.expected_accesses_per_op().max(1.0);
            let keys = (1_000 / d).max(20);
            let requests = ((16_000.0 / per_op) as usize / d as usize).max(100);
            let spec = w.scaled(keys, requests);
            spec.generate(seed_for(&spec.name))
        })
        .collect();

    // One job per (workload, hierarchy, policy, fault-variant) cell.
    let hier = hierarchies();
    let mut jobs = Vec::new();
    for w in 0..traces.len() {
        for h in 0..hier.len() {
            for p in 0..PolicyKind::ALL.len() {
                for faulted in [false, true] {
                    jobs.push((w, h, p, faulted));
                }
            }
        }
    }

    let results = crate::parallel(jobs.len(), |i| -> Result<Cell, String> {
        let (w, h, p, faulted) = jobs[i];
        let trace = &traces[w];
        let (hier_name, base, fault_tier) = &hier[h];
        let kind = PolicyKind::ALL[p];
        let stats = trace_stats(trace);
        let stored: u64 = stats.iter().map(|s| s.bytes + 64).sum();
        let spec = sized_for(base.clone(), stored);
        let epoch = (trace.len() as u64 / EPOCHS_PER_RUN).max(1);
        let windows = trace_windows(trace, epoch);
        let mut server = TieredServer::build_with(
            spec.clone(),
            NoiseConfig::disabled(),
            epoch,
            kind.build(seed_for(hier_name), &windows),
            trace,
        )
        .map_err(|e| format!("tiered server build failed: {e}"))?;
        if faulted {
            server.install_fault_plan(&faulted_plan(&spec, fault_tier)?);
        }
        let report = server.run(trace);
        let mig = server.migration_stats();
        Ok(Cell {
            workload: trace.name.clone(),
            hierarchy: hier_name,
            policy: kind.name(),
            faults: if faulted { "degraded" } else { "clean" },
            requests: report.requests as u64,
            runtime_ns: report.runtime_ns,
            cost_usd: spec.cost_usd(),
            moved_keys: mig.moved_keys,
            moved_bytes: mig.moved_bytes,
        })
    });
    let cells = results.into_iter().collect::<Result<Vec<_>, _>>()?;

    let mut csv = Vec::with_capacity(cells.len());
    let mut rows = Vec::new();
    let mut moved_total = 0u64;
    let mut requests_total = 0u64;
    for c in &cells {
        let throughput = c.requests as f64 / (c.runtime_ns / 1e9);
        let cost_eff = throughput / c.cost_usd;
        csv.push(format!(
            "{},{},{},{},{},{:.0},{:.3},{:.6},{:.6},{},{}",
            c.workload,
            c.hierarchy,
            c.policy,
            c.faults,
            c.requests,
            c.runtime_ns,
            throughput,
            c.cost_usd,
            cost_eff,
            c.moved_keys,
            c.moved_bytes
        ));
        moved_total += c.moved_keys;
        requests_total += c.requests;
        if c.faults == "clean" {
            rows.push(vec![
                c.workload.clone(),
                c.hierarchy.to_string(),
                c.policy.to_string(),
                format!("{:.0}", throughput),
                format!("{:.2}", cost_eff),
                format!("{}", c.moved_keys),
            ]);
        }
    }
    print_table(
        "clean cells: throughput (ops/s), cost-efficiency (ops/s/$), keys moved",
        &[
            "workload",
            "hierarchy",
            "policy",
            "ops/s",
            "ops/s/$",
            "moved",
        ],
        &rows,
    );
    write_csv("tier_matrix.csv", CSV_HEADER, &csv)?;
    println!("\nShape: greedy and oracle lead on the stable presets (trending, flash crowd);");
    println!("the churning TTL preset rewards epoch re-planning (lru, oracle) and the");
    println!("3-tier hierarchy beats 2-tier on cost-efficiency whenever the cold tail");
    println!("tolerates the SSD. Degraded rows show which policies lean on the faulted tier.");

    let mut outcome = SuiteOutcome {
        items: requests_total,
        ..SuiteOutcome::default()
    };
    outcome.counter("cells", cells.len() as u64);
    outcome.counter("trace_requests", requests_total);
    outcome.counter("moved_keys", moved_total);
    outcome.counter("csv_fnv", super::csv_fnv(CSV_HEADER, &csv));
    Ok(outcome)
}
