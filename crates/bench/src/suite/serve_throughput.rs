//! Serving-layer throughput (extension experiment).
//!
//! Drives the `mnemo-serve` engine with N concurrent tenant streams and
//! measures sustained ingest throughput (requests/s through admission,
//! the bounded queues, the sharded drain, drift-triggered advising, and
//! the periodic shared-capacity re-plan) plus bounded-latency advising
//! quantiles (p50/p99 of `span.serve.advise.wall_ns`, straight from the
//! daemon's own telemetry histograms).
//!
//! A second pass measures write-ahead journal overhead: the same
//! single-tenant stream ingested with and without appending every
//! request to a group-committed journal (`sync_every` 64), the way the
//! daemon's socket loop journals admitted frames.
//!
//! Emits one machine-readable JSON row per tenant count; the repo-root
//! `BENCH_SERVE.json` pins the first recorded baseline. Quantiles are
//! reported as `null` (table: `-`) below [`MIN_QUANTILE_SAMPLES`]
//! consultations — a p99 of a one-sample histogram is just that sample,
//! and printing it equal to the p50 misreads as a suspiciously perfect
//! latency distribution.

use super::SuiteOutcome;
use crate::{print_table, HarnessError};
use mnemo_serve::engine::{ServeConfig, ServeEngine};
use mnemo_serve::proto::EventV1;
use mnemo_stream::StreamConfig;
use mnemo_telemetry::MetricHistogram;
use ycsb::WorkloadSpec;

/// Minimum histogram samples before p50/p99 are considered meaningful.
pub const MIN_QUANTILE_SAMPLES: u64 = 10;

/// Run the tenant sweep at scale divisor `d`, emitting
/// `serve_throughput.json` and `timing-serve_throughput.csv`.
pub fn run(d: u64) -> Result<SuiteOutcome, HarnessError> {
    let d = d.max(1);
    let per_tenant = (200_000usize / d as usize).max(2_000);
    let keys = (20_000u64 / d).max(200);

    let mut timer = mnemo_par::SweepTimer::new("serve_throughput");
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut requests = 0u64;
    let mut advice_rows = 0u64;
    let mut consultations = 0u64;
    for &tenants in &[1usize, 2, 4, 8] {
        // One deterministic stream per tenant, round-robin interleaved —
        // the daemon's worst case: every tick touches every tenant.
        let streams: Vec<Vec<ycsb::AccessEvent>> = (0..tenants)
            .map(|t| {
                WorkloadSpec::trending()
                    .scaled(keys, per_tenant)
                    .generate(42 + t as u64)
                    .events()
                    .collect()
            })
            .collect();
        let names: Vec<String> = (0..tenants).map(|t| format!("tenant-{t}")).collect();

        let mut stream_config = StreamConfig::with_budget_bytes(32 * 1024);
        stream_config.drift.epoch_len = 20_000;
        let mut engine = ServeEngine::new(ServeConfig {
            stream: stream_config,
            tick_events: 4_096,
            ..ServeConfig::default()
        })
        .map_err(|e| format!("cannot build serve engine: {e}"))?;

        let total = per_tenant * tenants;
        let label = format!("ingest-{tenants}t");
        let advice: Result<u64, String> = timer.stage(&label, total, || {
            let mut advice = 0u64;
            for i in 0..per_tenant {
                for (t, stream) in streams.iter().enumerate() {
                    let e = &stream[i];
                    let emitted = engine
                        .ingest(EventV1 {
                            tenant: names[t].clone(),
                            key: e.key,
                            op: e.op,
                            bytes: e.bytes,
                        })
                        .map_err(|err| format!("ingest failed: {err}"))?;
                    advice += emitted
                        .iter()
                        .filter(|r| r.contains("\"row\":\"advise\""))
                        .count() as u64;
                }
            }
            advice += engine
                .finish()
                .iter()
                .filter(|r| r.contains("\"row\":\"advise\""))
                .count() as u64;
            Ok(advice)
        });
        let advice = advice?;

        let stages = timer.stages();
        let wall = stages
            .iter()
            .rev()
            .find(|s| s.name == label)
            .map(|s| s.wall.as_secs_f64())
            .unwrap_or(0.0);
        let req_s = if wall > 0.0 { total as f64 / wall } else { 0.0 };
        let snap = engine.folded_snapshot();
        let (p50_us, p99_us, consults) = snap
            .histogram("span.serve.advise.wall_ns")
            .map(|h| {
                (
                    h.quantile_value(0.50) / 1e3,
                    h.quantile_value(0.99) / 1e3,
                    h.samples(),
                )
            })
            .unwrap_or((0.0, 0.0, 0));
        // Below the sample floor the quantiles are not a distribution —
        // p50 == p99 == the lone sample — so withhold them.
        let quantiles = (consults >= MIN_QUANTILE_SAMPLES).then_some((p50_us, p99_us));

        requests += total as u64;
        advice_rows += advice;
        consultations += consults;
        let (p50_cell, p99_cell, p50_json, p99_json) = match quantiles {
            Some((p50, p99)) => (
                format!("{p50:.0}"),
                format!("{p99:.0}"),
                format!("{p50:.1}"),
                format!("{p99:.1}"),
            ),
            None => (
                "-".to_string(),
                "-".to_string(),
                "null".to_string(),
                "null".to_string(),
            ),
        };
        rows.push(vec![
            format!("{tenants}"),
            format!("{total}"),
            format!("{:.0}", req_s / 1e3),
            format!("{advice}"),
            p50_cell,
            p99_cell,
        ]);
        json_rows.push(format!(
            "{{\"bench\":\"serve_throughput\",\"tenants\":{tenants},\"requests\":{total},\
             \"req_per_s\":{req_s:.0},\"advice_rows\":{advice},\"consultations\":{consults},\
             \"advise_p50_us\":{p50_json},\"advise_p99_us\":{p99_json}}}"
        ));
    }

    // Journal overhead: the same single-tenant stream ingested twice —
    // once plain, once appending every request to a write-ahead journal
    // first (group commit, `sync_every` 64), the way the daemon's
    // socket loop does. The ratio is what durability costs the ingest
    // path.
    let j_events = (50_000usize / d as usize).max(2_000);
    let j_keys = (5_000u64 / d).max(200);
    let j_stream: Vec<ycsb::AccessEvent> = WorkloadSpec::trending()
        .scaled(j_keys, j_events)
        .generate(7)
        .events()
        .collect();
    let journal_dir = crate::out_dir()?.join("journal-bench");
    let mut journal_rows = Vec::new();
    let mut journal_appended = 0u64;
    let mut mode_req_s = [0.0f64; 2];
    for (m, mode) in ["journal-off", "journal-on"].iter().enumerate() {
        let mut stream_config = StreamConfig::with_budget_bytes(32 * 1024);
        stream_config.drift.epoch_len = 20_000;
        let mut engine = ServeEngine::new(ServeConfig {
            stream: stream_config,
            tick_events: 4_096,
            ..ServeConfig::default()
        })
        .map_err(|e| format!("cannot build serve engine: {e}"))?;
        let mut writer = if *mode == "journal-on" {
            // A fresh journal directory per run; overhead is append +
            // checksum + group-commit fsync, not replay.
            if journal_dir.exists() {
                std::fs::remove_dir_all(&journal_dir)
                    .map_err(|e| format!("cannot clear {}: {e}", journal_dir.display()))?;
            }
            let config = mnemo_serve::JournalConfig {
                segment_bytes: 4 * 1024 * 1024,
                sync_every: 64,
            };
            Some(
                mnemo_serve::journal::JournalWriter::open(&journal_dir, config, 1, None)
                    .map_err(|e| format!("cannot open journal: {e}"))?,
            )
        } else {
            None
        };
        let label = format!("ingest-{mode}");
        timer.stage(&label, j_events, || -> Result<(), String> {
            for (i, e) in j_stream.iter().enumerate() {
                if let Some(w) = writer.as_mut() {
                    let op = match e.op {
                        ycsb::Op::Read => "read",
                        ycsb::Op::Update => "update",
                    };
                    let frame = format!(
                        "{{\"v\":1,\"tenant\":\"tenant-0\",\"key\":{},\"op\":\"{op}\",\
                         \"bytes\":{}}}",
                        e.key, e.bytes
                    );
                    w.append(i as u128, &frame)
                        .map_err(|err| format!("journal append failed: {err}"))?;
                }
                engine
                    .ingest(EventV1 {
                        tenant: "tenant-0".to_string(),
                        key: e.key,
                        op: e.op,
                        bytes: e.bytes,
                    })
                    .map_err(|err| format!("ingest failed: {err}"))?;
            }
            engine.finish();
            if let Some(w) = writer.as_mut() {
                w.sync(j_events as u128)
                    .map_err(|err| format!("journal sync failed: {err}"))?;
            }
            Ok(())
        })?;
        if let Some(w) = &writer {
            journal_appended += w.stats().appended;
        }
        let wall = timer
            .stages()
            .iter()
            .rev()
            .find(|s| s.name == label)
            .map(|s| s.wall.as_secs_f64())
            .unwrap_or(0.0);
        mode_req_s[m] = if wall > 0.0 {
            j_events as f64 / wall
        } else {
            0.0
        };
        journal_rows.push(vec![
            mode.to_string(),
            format!("{j_events}"),
            format!("{:.0}", mode_req_s[m] / 1e3),
        ]);
        json_rows.push(format!(
            "{{\"bench\":\"serve_throughput\",\"mode\":\"{mode}\",\"requests\":{j_events},\
             \"req_per_s\":{:.0},\"journal_sync_every\":64}}",
            mode_req_s[m]
        ));
    }
    if journal_dir.exists() {
        let _ = std::fs::remove_dir_all(&journal_dir);
    }
    let overhead = if mode_req_s[1] > 0.0 {
        mode_req_s[0] / mode_req_s[1]
    } else {
        0.0
    };

    print_table(
        "serve engine ingest throughput (drift-triggered advising enabled)",
        &[
            "tenants",
            "requests",
            "kreq/s",
            "advice",
            "advise p50 us",
            "advise p99 us",
        ],
        &rows,
    );
    println!();
    print_table(
        &format!("write-ahead journal overhead (single tenant, {overhead:.2}x)"),
        &["mode", "requests", "kreq/s"],
        &journal_rows,
    );
    println!();
    for row in &json_rows {
        println!("{row}");
    }

    let out = crate::out_dir()?.join("serve_throughput.json");
    let mut doc = json_rows.join("\n");
    doc.push('\n');
    std::fs::write(&out, doc).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    eprintln!("json rows -> {}", out.display());
    crate::write_timing(&timer)?;

    let mut outcome = SuiteOutcome {
        items: requests,
        stages: timer.stages(),
        ..SuiteOutcome::default()
    };
    outcome.counter("requests", requests);
    outcome.counter("advice_rows", advice_rows);
    outcome.counter("consultations", consultations);
    outcome.counter("journal_appended", journal_appended);
    Ok(outcome)
}
