//! Shared experiment-harness utilities.
//!
//! Every `src/bin/<experiment>` binary regenerates one of the paper's
//! tables or figures (see DESIGN.md's per-experiment index); this library
//! holds what they share: the paper-scale workload set, the measurement
//! configuration, the bounded parallel sweep helpers (`--jobs N` /
//! `MNEMO_JOBS`, see [`harness_args`]), per-stage [`SweepTimer`]
//! instrumentation and plain-text table/CSV output.

#![deny(unsafe_code)]
#![warn(missing_docs)]

// The one unsafe item in the harness: the counting global allocator the
// perf trajectory reports allocation counts through (GlobalAlloc is an
// unsafe trait). Everything else stays unsafe-free under the deny above.
#[allow(unsafe_code)]
pub mod alloc_track;
pub mod perf;
pub mod suite;

use hybridmem::clock::NoiseConfig;
use hybridmem::HybridSpec;
use kvsim::StoreKind;
use mnemo::accuracy::EvalPoint;
use mnemo::advisor::{Advisor, AdvisorConfig, Consultation, OrderingKind};
use mnemo::ModelKind;
pub use mnemo_par::SweepTimer;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;
use ycsb::{Trace, WorkloadSpec};

/// Harness-level error: a human-readable message. Experiment mains
/// return `Result<(), HarnessError>` so failures exit nonzero through
/// `main`'s `Termination` instead of panicking mid-run.
pub type HarnessError = String;

static TELEMETRY_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Paper scale: Table III uses 10,000 keys and 100,000 requests. The
/// harness honours `MNEMO_SCALE` (a divisor, default 1) so CI can run a
/// reduced sweep: scale 10 → 1,000 keys / 10,000 requests.
pub fn scale_divisor() -> u64 {
    std::env::var("MNEMO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&d| d >= 1)
        .unwrap_or(1)
}

/// The Table III workloads at harness scale.
pub fn paper_workloads() -> Vec<WorkloadSpec> {
    paper_workloads_at(scale_divisor())
}

/// The Table III workloads at an explicit scale divisor. The perf
/// harness pins its suites to fixed divisors through this entry point
/// instead of mutating `MNEMO_SCALE` process-wide.
pub fn paper_workloads_at(d: u64) -> Vec<WorkloadSpec> {
    WorkloadSpec::table3()
        .into_iter()
        .map(|w| {
            let keys = (w.keys / d.max(1)).max(10);
            let requests = (w.requests / d.max(1) as usize).max(100);
            w.scaled(keys, requests)
        })
        .collect()
}

/// One named workload at harness scale. Unknown names report the
/// available set instead of panicking, so experiment binaries can fail
/// with an actionable message.
pub fn paper_workload(name: &str) -> Result<WorkloadSpec, String> {
    paper_workload_at(scale_divisor(), name)
}

/// One named workload at an explicit scale divisor.
pub fn paper_workload_at(d: u64, name: &str) -> Result<WorkloadSpec, String> {
    let all = paper_workloads_at(d);
    if let Some(w) = all.iter().find(|w| w.name == name) {
        return Ok(w.clone());
    }
    let available: Vec<&str> = all.iter().map(|w| w.name.as_str()).collect();
    Err(format!(
        "unknown workload '{name}' (available: {})",
        available.join(", ")
    ))
}

/// The measurement testbed: the paper's Table I spec with the LLC scaled
/// to keep the paper's cache:dataset proportion when `MNEMO_SCALE`
/// shrinks the dataset.
pub fn testbed_for(trace: &Trace) -> HybridSpec {
    let mut spec = HybridSpec::paper_testbed();
    let dataset = trace.dataset_bytes();
    // Paper proportion: 12 MB LLC for a ~1 GB dataset (ratio ~85).
    spec.cache.capacity_bytes = spec.cache.capacity_bytes.min((dataset / 85).max(1 << 16));
    spec
}

/// Default measurement jitter (the paper reports means of repeated runs;
/// the jitter stands in for run-to-run variability).
pub fn measurement_noise(seed: u64) -> NoiseConfig {
    NoiseConfig::default_jitter(seed)
}

/// The advisor configured as the paper runs it.
pub fn paper_advisor(trace: &Trace, ordering: OrderingKind, model: ModelKind) -> Advisor {
    Advisor::new(AdvisorConfig {
        spec: testbed_for(trace),
        noise: measurement_noise(7),
        price_factor: 0.2,
        model,
        ordering,
        cache_correction: None,
        fault_plan: None,
    })
}

/// Consult with the standard configuration.
pub fn consult(
    store: StoreKind,
    trace: &Trace,
    ordering: OrderingKind,
) -> Result<Consultation, HarnessError> {
    paper_advisor(trace, ordering, ModelKind::GlobalAverage)
        .consult(store, trace)
        .map_err(|e| format!("consultation failed: {e}"))
}

/// Measured-vs-estimated points along a consultation's curve.
pub fn eval_points(
    store: StoreKind,
    trace: &Trace,
    consultation: &Consultation,
    points: usize,
) -> Result<Vec<EvalPoint>, HarnessError> {
    mnemo::accuracy::evaluate(
        store,
        trace,
        consultation,
        &testbed_for(trace),
        measurement_noise(1234),
        points,
    )
    .map_err(|e| format!("evaluation failed: {e}"))
}

/// Run `jobs` closures as coarse jobs on the bounded worker pool and
/// return their results in order. Unlike the old one-thread-per-job
/// helper, a 64-point sweep on a 4-worker pool runs 4 threads, not 64;
/// results are byte-identical for any `--jobs` value.
pub fn parallel<T: Send, F: Fn(usize) -> T + Sync>(jobs: usize, f: F) -> Vec<T> {
    mnemo_par::Pool::current().run_jobs(jobs, f)
}

/// Experiment-binary startup: honour the shared `--jobs N` flag (also
/// `--jobs=N`; `MNEMO_JOBS` is the environment-variable equivalent) and
/// the shared `--telemetry DIR` flag (`MNEMO_TELEMETRY` equivalent),
/// and return the remaining command-line arguments in order, so
/// binaries with positional arguments (e.g. `fig5 [a|b|c]`) keep
/// working.
pub fn harness_args() -> Result<Vec<String>, HarnessError> {
    let (jobs, rest) = strip_jobs_flag(std::env::args().skip(1).collect())?;
    if let Some(n) = jobs {
        mnemo_par::set_jobs(n);
    }
    let (telemetry, rest) = strip_telemetry_flag(rest)?;
    if let Some(dir) = telemetry {
        *lock_telemetry_dir() = Some(PathBuf::from(dir));
    }
    Ok(rest)
}

/// The telemetry-directory override cell; poison recovery keeps the
/// harness total even if a panicking test held the lock.
fn lock_telemetry_dir() -> std::sync::MutexGuard<'static, Option<PathBuf>> {
    TELEMETRY_DIR
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Split the `--telemetry DIR` / `--telemetry=DIR` flag out of an
/// argument vector (last occurrence wins), mirroring
/// [`strip_jobs_flag`].
pub fn strip_telemetry_flag(
    mut args: Vec<String>,
) -> Result<(Option<String>, Vec<String>), HarnessError> {
    let mut dir = None;
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix("--telemetry=") {
            dir = Some(v.to_string());
            args.remove(i);
        } else if args[i] == "--telemetry" {
            dir = Some(
                args.get(i + 1)
                    .ok_or("--telemetry needs a directory")?
                    .clone(),
            );
            args.drain(i..=i + 1);
        } else {
            i += 1;
        }
    }
    Ok((dir, args))
}

/// Where telemetry exports land, if enabled: the `--telemetry DIR`
/// flag (stripped by [`harness_args`]) or, failing that, the
/// `MNEMO_TELEMETRY` environment variable. `None` means telemetry
/// export is off.
pub fn telemetry_dir() -> Option<PathBuf> {
    if let Some(dir) = lock_telemetry_dir().clone() {
        return Some(dir);
    }
    std::env::var("MNEMO_TELEMETRY")
        .ok()
        .filter(|s| !s.is_empty())
        .map(PathBuf::from)
}

/// Export an experiment's telemetry snapshots to
/// `<telemetry-dir>/telemetry-<label>/` when telemetry export is
/// enabled; a no-op otherwise. Sim-domain artifacts in the export are
/// byte-deterministic; wall-clock files carry the `timing-` filename
/// prefix the CI determinism/golden gates exclude.
pub fn export_telemetry(
    label: &str,
    snaps: &[mnemo_telemetry::Snapshot],
) -> Result<(), HarnessError> {
    let Some(base) = telemetry_dir() else {
        return Ok(());
    };
    let dir = base.join(format!("telemetry-{label}"));
    mnemo_telemetry::export::write_dir(&dir, snaps)
        .map_err(|e| format!("cannot write telemetry export to {}: {e}", dir.display()))?;
    println!("  [telemetry] {}", dir.display());
    Ok(())
}

/// Split the `--jobs N` / `--jobs=N` flag out of an argument vector.
/// Returns the requested worker count (last occurrence wins) and the
/// remaining arguments in their original order.
pub fn strip_jobs_flag(
    mut args: Vec<String>,
) -> Result<(Option<usize>, Vec<String>), HarnessError> {
    let parse = |v: &str| -> Result<usize, HarnessError> {
        v.parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("--jobs needs a positive integer, got '{v}'"))
    };
    let mut jobs = None;
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix("--jobs=") {
            jobs = Some(parse(v)?);
            args.remove(i);
        } else if args[i] == "--jobs" {
            let v = args.get(i + 1).ok_or("--jobs needs a value")?.clone();
            jobs = Some(parse(&v)?);
            args.drain(i..=i + 1);
        } else {
            i += 1;
        }
    }
    Ok((jobs, args))
}

/// Write a [`SweepTimer`]'s per-stage wall-clock summary as
/// `timing-<label>.csv` in the experiment output dir and log a one-line
/// summary to stderr. Timing artifacts are intentionally prefixed so the
/// CI determinism/golden gates can exclude them — wall-clock values are
/// not byte-stable.
pub fn write_timing(timer: &SweepTimer) -> Result<(), HarnessError> {
    let path = out_dir()?.join(format!("timing-{}.csv", timer.label()));
    fs::write(&path, timer.to_csv())
        .map_err(|e| format!("cannot write timing csv {}: {e}", path.display()))?;
    eprintln!("{} -> {}", timer.summary(), path.display());
    Ok(())
}

/// Where experiment CSVs land.
pub fn out_dir() -> Result<PathBuf, HarnessError> {
    let dir =
        PathBuf::from(std::env::var("MNEMO_OUT").unwrap_or_else(|_| "target/experiments".into()));
    fs::create_dir_all(&dir)
        .map_err(|e| format!("cannot create experiment output dir {}: {e}", dir.display()))?;
    Ok(dir)
}

/// Write a CSV artifact and report its path on stdout.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> Result<(), HarnessError> {
    let path = out_dir()?.join(name);
    let err = |e: std::io::Error| format!("cannot write csv {}: {e}", path.display());
    let mut f = fs::File::create(&path).map_err(err)?;
    writeln!(f, "{header}").map_err(err)?;
    for row in rows {
        writeln!(f, "{row}").map_err(err)?;
    }
    println!("  [csv] {}", path.display());
    Ok(())
}

/// Print an aligned plain-text table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// The three stores in presentation order.
pub fn stores() -> [StoreKind; 3] {
    [StoreKind::Redis, StoreKind::Dynamo, StoreKind::Memcached]
}

/// Deterministic per-workload seed.
pub fn seed_for(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workloads_have_five_entries() {
        assert_eq!(paper_workloads().len(), 5);
    }

    #[test]
    fn unknown_workload_lists_the_available_names() {
        let err = paper_workload("frobnicate").unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");
        assert!(err.contains("available:"), "{err}");
        assert!(err.contains("trending"), "{err}");
    }

    #[test]
    fn testbed_keeps_cache_proportion() {
        let t = paper_workload("trending")
            .unwrap()
            .scaled(100, 500)
            .generate(1);
        let spec = testbed_for(&t);
        assert!(spec.cache.capacity_bytes <= t.dataset_bytes() / 85 + (1 << 16));
    }

    #[test]
    fn parallel_preserves_order() {
        let out = parallel(8, |i| i * i);
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn parallel_is_bounded_and_deterministic() {
        // Regardless of pool width, job results land in index order.
        let a = parallel(64, |i| i as u64 * 3);
        let b: Vec<u64> = (0..64).map(|i| i * 3).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn jobs_flag_is_stripped_in_both_forms() {
        let argv = |parts: &[&str]| parts.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let (jobs, rest) = strip_jobs_flag(argv(&["a", "--jobs", "3", "b"])).unwrap();
        assert_eq!(jobs, Some(3));
        assert_eq!(rest, argv(&["a", "b"]));
        let (jobs, rest) = strip_jobs_flag(argv(&["--jobs=7"])).unwrap();
        assert_eq!(jobs, Some(7));
        assert!(rest.is_empty());
        let (jobs, rest) = strip_jobs_flag(argv(&["fig5", "a"])).unwrap();
        assert_eq!(jobs, None);
        assert_eq!(rest, argv(&["fig5", "a"]));
    }

    #[test]
    fn jobs_flag_rejects_garbage() {
        let err = strip_jobs_flag(vec!["--jobs=zero".to_string()]).unwrap_err();
        assert!(err.contains("positive integer"), "{err}");
    }

    #[test]
    fn telemetry_flag_is_stripped_in_both_forms() {
        let argv = |parts: &[&str]| parts.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let (dir, rest) = strip_telemetry_flag(argv(&["a", "--telemetry", "out", "b"])).unwrap();
        assert_eq!(dir.as_deref(), Some("out"));
        assert_eq!(rest, argv(&["a", "b"]));
        let (dir, rest) = strip_telemetry_flag(argv(&["--telemetry=x/y"])).unwrap();
        assert_eq!(dir.as_deref(), Some("x/y"));
        assert!(rest.is_empty());
        let (dir, rest) = strip_telemetry_flag(argv(&["fig5", "a"])).unwrap();
        assert_eq!(dir, None);
        assert_eq!(rest, argv(&["fig5", "a"]));
    }

    #[test]
    fn export_telemetry_writes_under_the_configured_dir() {
        let base = std::env::temp_dir().join(format!("mnemo-bench-tel-{}", std::process::id()));
        *lock_telemetry_dir() = Some(base.clone());
        let mut tel = mnemo_telemetry::Recorder::new();
        tel.count("x", 3);
        export_telemetry("unit", &[tel.snapshot(0)]).unwrap();
        *lock_telemetry_dir() = None;
        let exported = base.join("telemetry-unit");
        assert!(exported.join("telemetry.jsonl").exists());
        assert!(exported.join("schema.csv").exists());
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(seed_for("trending"), seed_for("trending"));
        assert_ne!(seed_for("trending"), seed_for("timeline"));
    }
}
