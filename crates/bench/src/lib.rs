//! Shared experiment-harness utilities.
//!
//! Every `src/bin/<experiment>` binary regenerates one of the paper's
//! tables or figures (see DESIGN.md's per-experiment index); this library
//! holds what they share: the paper-scale workload set, the measurement
//! configuration, parallel sweep helpers and plain-text table/CSV output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hybridmem::clock::NoiseConfig;
use hybridmem::HybridSpec;
use kvsim::StoreKind;
use mnemo::accuracy::EvalPoint;
use mnemo::advisor::{Advisor, AdvisorConfig, Consultation, OrderingKind};
use mnemo::ModelKind;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use ycsb::{Trace, WorkloadSpec};

/// Paper scale: Table III uses 10,000 keys and 100,000 requests. The
/// harness honours `MNEMO_SCALE` (a divisor, default 1) so CI can run a
/// reduced sweep: scale 10 → 1,000 keys / 10,000 requests.
pub fn scale_divisor() -> u64 {
    std::env::var("MNEMO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&d| d >= 1)
        .unwrap_or(1)
}

/// The Table III workloads at harness scale.
pub fn paper_workloads() -> Vec<WorkloadSpec> {
    let d = scale_divisor();
    WorkloadSpec::table3()
        .into_iter()
        .map(|w| {
            let keys = (w.keys / d).max(10);
            let requests = (w.requests / d as usize).max(100);
            w.scaled(keys, requests)
        })
        .collect()
}

/// One named workload at harness scale. Unknown names report the
/// available set instead of panicking, so experiment binaries can fail
/// with an actionable message.
pub fn paper_workload(name: &str) -> Result<WorkloadSpec, String> {
    let all = paper_workloads();
    if let Some(w) = all.iter().find(|w| w.name == name) {
        return Ok(w.clone());
    }
    let available: Vec<&str> = all.iter().map(|w| w.name.as_str()).collect();
    Err(format!(
        "unknown workload '{name}' (available: {})",
        available.join(", ")
    ))
}

/// The measurement testbed: the paper's Table I spec with the LLC scaled
/// to keep the paper's cache:dataset proportion when `MNEMO_SCALE`
/// shrinks the dataset.
pub fn testbed_for(trace: &Trace) -> HybridSpec {
    let mut spec = HybridSpec::paper_testbed();
    let dataset = trace.dataset_bytes();
    // Paper proportion: 12 MB LLC for a ~1 GB dataset (ratio ~85).
    spec.cache.capacity_bytes = spec.cache.capacity_bytes.min((dataset / 85).max(1 << 16));
    spec
}

/// Default measurement jitter (the paper reports means of repeated runs;
/// the jitter stands in for run-to-run variability).
pub fn measurement_noise(seed: u64) -> NoiseConfig {
    NoiseConfig::default_jitter(seed)
}

/// The advisor configured as the paper runs it.
pub fn paper_advisor(trace: &Trace, ordering: OrderingKind, model: ModelKind) -> Advisor {
    Advisor::new(AdvisorConfig {
        spec: testbed_for(trace),
        noise: measurement_noise(7),
        price_factor: 0.2,
        model,
        ordering,
        cache_correction: None,
    })
}

/// Consult with the standard configuration.
pub fn consult(store: StoreKind, trace: &Trace, ordering: OrderingKind) -> Consultation {
    paper_advisor(trace, ordering, ModelKind::GlobalAverage)
        .consult(store, trace)
        .expect("consultation failed")
}

/// Measured-vs-estimated points along a consultation's curve.
pub fn eval_points(
    store: StoreKind,
    trace: &Trace,
    consultation: &Consultation,
    points: usize,
) -> Vec<EvalPoint> {
    mnemo::accuracy::evaluate(
        store,
        trace,
        consultation,
        &testbed_for(trace),
        measurement_noise(1234),
        points,
    )
    .expect("evaluation failed")
}

/// Run `jobs` closures on worker threads (one per job, crossbeam-scoped)
/// and return their results in order.
pub fn parallel<T: Send, F: Fn(usize) -> T + Sync>(jobs: usize, f: F) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    crossbeam::scope(|scope| {
        for (i, slot) in out.iter_mut().enumerate() {
            let f = &f;
            scope.spawn(move |_| *slot = Some(f(i)));
        }
    })
    .expect("experiment job panicked");
    out.into_iter()
        .map(|o| o.expect("job produced no result"))
        .collect()
}

/// Where experiment CSVs land.
pub fn out_dir() -> PathBuf {
    let dir =
        PathBuf::from(std::env::var("MNEMO_OUT").unwrap_or_else(|_| "target/experiments".into()));
    fs::create_dir_all(&dir).expect("cannot create experiment output dir");
    dir
}

/// Write a CSV artifact and report its path on stdout.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = out_dir().join(name);
    let mut f = fs::File::create(&path).expect("cannot create csv");
    writeln!(f, "{header}").unwrap();
    for row in rows {
        writeln!(f, "{row}").unwrap();
    }
    println!("  [csv] {}", path.display());
}

/// Print an aligned plain-text table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// The three stores in presentation order.
pub fn stores() -> [StoreKind; 3] {
    [StoreKind::Redis, StoreKind::Dynamo, StoreKind::Memcached]
}

/// Deterministic per-workload seed.
pub fn seed_for(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workloads_have_five_entries() {
        assert_eq!(paper_workloads().len(), 5);
    }

    #[test]
    fn unknown_workload_lists_the_available_names() {
        let err = paper_workload("frobnicate").unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");
        assert!(err.contains("available:"), "{err}");
        assert!(err.contains("trending"), "{err}");
    }

    #[test]
    fn testbed_keeps_cache_proportion() {
        let t = paper_workload("trending")
            .unwrap()
            .scaled(100, 500)
            .generate(1);
        let spec = testbed_for(&t);
        assert!(spec.cache.capacity_bytes <= t.dataset_bytes() / 85 + (1 << 16));
    }

    #[test]
    fn parallel_preserves_order() {
        let out = parallel(8, |i| i * i);
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(seed_for("trending"), seed_for("trending"));
        assert_ne!(seed_for("trending"), seed_for("timeline"));
    }
}
