//! Dense-keyed map for the per-request hot paths.
//!
//! The simulator's three per-request indexes — the engines' key table,
//! the object table and the LLC model's residency map — are all keyed
//! by small dense integers: trace keys run `0..keys` and [`ObjectId`]s
//! are handed out sequentially. A hash probe per lookup (FNV mixing
//! plus a random-access bucket load) is the single largest per-request
//! cost, and it buys nothing for keys that are already valid indices.
//!
//! [`DenseU64Map`] stores values for keys below a fixed dense bound in
//! a plain vector indexed by key and spills larger keys into a
//! [`DetHashMap`], so arbitrary `u64` keys still work. Lookup order is
//! never exposed (there is deliberately no iterator), so swapping this
//! in for a hash map cannot perturb any deterministic output.
//!
//! [`ObjectId`]: crate::alloc::ObjectId

use crate::det::DetHashMap;
use crate::num;

/// Keys below this bound are stored in the dense vector; the vector
/// grows to the largest such key actually inserted, so the bound caps
/// worst-case slack at `LIMIT * size_of::<Option<V>>()` only for
/// workloads that really use keys that large.
const DENSE_LIMIT: u64 = 1 << 24;

/// A `u64 -> V` map that is a vector for dense keys and a hash map for
/// sparse ones. See the module docs for why the hot paths want this.
#[derive(Debug, Clone)]
pub struct DenseU64Map<V> {
    dense: Vec<Option<V>>,
    spill: DetHashMap<u64, V>,
    len: usize,
}

impl<V> Default for DenseU64Map<V> {
    fn default() -> DenseU64Map<V> {
        DenseU64Map {
            dense: Vec::new(),
            spill: DetHashMap::default(),
            len: 0,
        }
    }
}

impl<V> DenseU64Map<V> {
    /// Empty map.
    pub fn new() -> DenseU64Map<V> {
        DenseU64Map::default()
    }

    /// Value stored under `key`, if any.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        if key < DENSE_LIMIT {
            match self.dense.get(num::usize_from_u64(key)) {
                Some(slot) => slot.as_ref(),
                None => None,
            }
        } else {
            self.spill.get(&key)
        }
    }

    /// Mutable value stored under `key`, if any.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        if key < DENSE_LIMIT {
            match self.dense.get_mut(num::usize_from_u64(key)) {
                Some(slot) => slot.as_mut(),
                None => None,
            }
        } else {
            self.spill.get_mut(&key)
        }
    }

    /// Is `key` present?
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Insert `value` under `key`, returning the previous value if the
    /// key was already present.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        let old = if key < DENSE_LIMIT {
            let idx = num::usize_from_u64(key);
            if idx >= self.dense.len() {
                self.dense.resize_with(idx + 1, || None);
            }
            self.dense[idx].replace(value)
        } else {
            self.spill.insert(key, value)
        };
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Remove `key`, returning its value if it was present.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let old = if key < DENSE_LIMIT {
            match self.dense.get_mut(num::usize_from_u64(key)) {
                Some(slot) => slot.take(),
                None => None,
            }
        } else {
            self.spill.remove(&key)
        };
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every entry, keeping the dense allocation for reuse.
    pub fn clear(&mut self) {
        self.dense.clear();
        self.spill.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = DenseU64Map::new();
        assert_eq!(m.insert(3, "a"), None);
        assert_eq!(m.insert(3, "b"), Some("a"));
        assert_eq!(m.get(3), Some(&"b"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(3), Some("b"));
        assert_eq!(m.remove(3), None);
        assert!(m.is_empty());
    }

    #[test]
    fn sparse_keys_spill_and_behave_identically() {
        let mut m = DenseU64Map::new();
        let sparse = DENSE_LIMIT + 12_345;
        m.insert(7, 1u32);
        m.insert(sparse, 2u32);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(7), Some(&1));
        assert_eq!(m.get(sparse), Some(&2));
        assert!(m.contains_key(sparse));
        assert_eq!(m.remove(sparse), Some(2));
        assert_eq!(m.len(), 1);
        // The dense side never allocated for the sparse key.
        assert!(m.dense.len() <= 8);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut m = DenseU64Map::new();
        m.insert(5, 10u64);
        if let Some(v) = m.get_mut(5) {
            *v += 1;
        }
        assert_eq!(m.get(5), Some(&11));
        assert_eq!(m.get_mut(99), None);
    }

    #[test]
    fn clear_resets_everything() {
        let mut m = DenseU64Map::new();
        m.insert(1, 1u8);
        m.insert(DENSE_LIMIT + 1, 2u8);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(1), None);
        assert_eq!(m.get(DENSE_LIMIT + 1), None);
    }

    #[test]
    fn missing_keys_report_absent_without_growing() {
        let m: DenseU64Map<u8> = DenseU64Map::new();
        assert_eq!(m.get(1_000_000), None);
        assert!(!m.contains_key(0));
        assert_eq!(m.len(), 0);
    }
}
