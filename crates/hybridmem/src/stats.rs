//! Access statistics and service-time histograms.

use crate::num;
use crate::spec::AccessKind;
use serde::{Deserialize, Serialize};

/// Flat counters for accesses against one device or system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AccessStats {
    /// Number of read accesses.
    pub reads: u64,
    /// Number of write accesses.
    pub writes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Total nanoseconds spent in reads.
    pub read_ns: f64,
    /// Total nanoseconds spent in writes.
    pub write_ns: f64,
}

impl AccessStats {
    /// Record one access.
    pub fn record(&mut self, kind: AccessKind, bytes: u64, ns: f64) {
        match kind {
            AccessKind::Read => {
                self.reads += 1;
                self.read_bytes += bytes;
                self.read_ns += ns;
            }
            AccessKind::Write => {
                self.writes += 1;
                self.write_bytes += bytes;
                self.write_ns += ns;
            }
        }
    }

    /// Record `n` identical accesses of `bytes` bytes at `ns` each. The
    /// nanosecond totals accumulate by repeated addition so the result
    /// is bit-identical to `n` separate [`AccessStats::record`] calls
    /// (f64 addition is not distributive over multiplication).
    pub fn record_n(&mut self, kind: AccessKind, bytes: u64, ns: f64, n: u64) {
        match kind {
            AccessKind::Read => {
                self.reads += n;
                self.read_bytes += bytes * n;
                for _ in 0..n {
                    self.read_ns += ns;
                }
            }
            AccessKind::Write => {
                self.writes += n;
                self.write_bytes += bytes * n;
                for _ in 0..n {
                    self.write_ns += ns;
                }
            }
        }
    }

    /// Total accesses.
    pub fn total_accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Mean read service time (ns); 0 when no reads happened.
    pub fn mean_read_ns(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_ns / self.reads as f64
        }
    }

    /// Mean write service time (ns); 0 when no writes happened.
    pub fn mean_write_ns(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.write_ns / self.writes as f64
        }
    }

    /// The counters accumulated since `earlier`, an older snapshot of
    /// the same device's stats. Saturating, so a stats reset between the
    /// two snapshots yields zeros rather than wrapping. This is what
    /// per-epoch telemetry records: window deltas of the cumulative
    /// device counters.
    pub fn since(&self, earlier: &AccessStats) -> AccessStats {
        AccessStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            read_bytes: self.read_bytes.saturating_sub(earlier.read_bytes),
            write_bytes: self.write_bytes.saturating_sub(earlier.write_bytes),
            read_ns: (self.read_ns - earlier.read_ns).max(0.0),
            write_ns: (self.write_ns - earlier.write_ns).max(0.0),
        }
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &AccessStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
        self.read_ns += other.read_ns;
        self.write_ns += other.write_ns;
    }
}

/// Log-scaled latency histogram (HdrHistogram-style, power-of-two buckets
/// subdivided linearly) for service times in nanoseconds.
///
/// Supports the tail-latency reporting of the paper's Figs. 8d/8e: average,
/// p50, p95, p99, p99.9 over millions of samples in O(1) memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// bucket index -> count. Bucket b covers
    /// `[lower(b), lower(b+1))` with `lower = sub * 2^(exp)` layout.
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    max: f64,
    min: f64,
    subdivisions: u32,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Default resolution: 32 linear subdivisions per power of two
    /// (~3% relative error on quantiles).
    pub fn new() -> Histogram {
        Histogram::with_subdivisions(32)
    }

    /// Custom resolution.
    pub fn with_subdivisions(subdivisions: u32) -> Histogram {
        assert!(
            subdivisions.is_power_of_two(),
            "subdivisions must be a power of two"
        );
        Histogram {
            counts: Vec::new(),
            total: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
            min: f64::INFINITY,
            subdivisions,
        }
    }

    fn bucket_of(&self, value_ns: f64) -> usize {
        let v = num::u64_from_f64(value_ns.max(0.0));
        if v < u64::from(self.subdivisions) {
            return num::usize_from_u64(v);
        }
        let exp = 63 - v.leading_zeros(); // floor(log2 v)
        let shift = exp - self.subdivisions.trailing_zeros();
        let sub = (v >> shift) - u64::from(self.subdivisions); // 0..subdivisions
        num::usize_from_u64(
            u64::from(exp - self.subdivisions.trailing_zeros() + 1) * u64::from(self.subdivisions)
                + sub,
        )
    }

    fn bucket_lower(&self, bucket: usize) -> f64 {
        let subs = u64::from(self.subdivisions);
        let b = num::u64_from_usize(bucket);
        if b < subs {
            return b as f64;
        }
        let tier = b / subs; // >= 1
        let sub = b % subs;
        ((subs + sub) as f64) * 2f64.powi(num::i32_exp_from_u64(tier) - 1)
    }

    /// Record one sample (nanoseconds).
    pub fn record(&mut self, value_ns: f64) {
        assert!(
            value_ns.is_finite() && value_ns >= 0.0,
            "invalid sample {value_ns}"
        );
        let b = self.bucket_of(value_ns);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.sum += value_ns;
        self.max = self.max.max(value_ns);
        self.min = self.min.min(value_ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of all samples; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Largest recorded sample; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Smallest recorded sample; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Approximate quantile `q` in [0, 1]; 0 when empty. The returned value
    /// is the lower bound of the bucket containing the q-th sample, i.e.
    /// accurate to the bucket resolution.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.total == 0 {
            return 0.0;
        }
        let rank = num::u64_from_f64((q * self.total as f64).ceil()).clamp(1, self.total);
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bucket_lower(b);
            }
        }
        self.max
    }

    /// Merge another histogram (same subdivisions) into this one.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.subdivisions, other.subdivisions, "resolution mismatch");
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (b, &c) in other.counts.iter().enumerate() {
            self.counts[b] += c;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stats_record_and_means() {
        let mut s = AccessStats::default();
        s.record(AccessKind::Read, 100, 50.0);
        s.record(AccessKind::Read, 100, 150.0);
        s.record(AccessKind::Write, 10, 30.0);
        assert_eq!(s.total_accesses(), 3);
        assert_eq!(s.mean_read_ns(), 100.0);
        assert_eq!(s.mean_write_ns(), 30.0);
    }

    #[test]
    fn record_n_is_bit_identical_to_n_records() {
        let mut looped = AccessStats::default();
        let mut batched = AccessStats::default();
        // 0.1 is inexact in binary, so repeated addition diverges from
        // multiplication — exactly the case record_n must reproduce.
        for _ in 0..7 {
            looped.record(AccessKind::Read, 64, 0.1);
            looped.record(AccessKind::Write, 32, 0.3);
        }
        batched.record_n(AccessKind::Read, 64, 0.1, 7);
        batched.record_n(AccessKind::Write, 32, 0.3, 7);
        assert_eq!(looped, batched);
        assert_eq!(looped.read_ns.to_bits(), batched.read_ns.to_bits());
        assert_eq!(looped.write_ns.to_bits(), batched.write_ns.to_bits());
    }

    #[test]
    fn stats_merge() {
        let mut a = AccessStats::default();
        a.record(AccessKind::Read, 1, 1.0);
        let mut b = AccessStats::default();
        b.record(AccessKind::Write, 2, 2.0);
        a.merge(&b);
        assert_eq!(a.reads, 1);
        assert_eq!(a.writes, 1);
        assert_eq!(a.write_bytes, 2);
    }

    #[test]
    fn empty_stats_have_zero_means() {
        let s = AccessStats::default();
        assert_eq!(s.mean_read_ns(), 0.0);
        assert_eq!(s.mean_write_ns(), 0.0);
    }

    #[test]
    fn histogram_mean_and_extremes() {
        let mut h = Histogram::new();
        for v in [10.0, 20.0, 30.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.min(), 10.0);
        assert_eq!(h.max(), 30.0);
    }

    #[test]
    fn histogram_quantiles_on_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=10_000 {
            h.record(v as f64);
        }
        for (q, expect) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q);
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.05, "q={q}: got {got}, want ~{expect}");
        }
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn histogram_merge_equals_combined() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..1000 {
            let x = (v * 37 % 5000) as f64;
            if v % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.quantile(0.5), whole.quantile(0.5));
        assert_eq!(a.quantile(0.99), whole.quantile(0.99));
    }

    #[test]
    #[should_panic(expected = "invalid sample")]
    fn histogram_rejects_nan() {
        Histogram::new().record(f64::NAN);
    }

    proptest! {
        #[test]
        fn histogram_quantile_within_resolution(samples in proptest::collection::vec(0.0f64..1e9, 1..300)) {
            let mut h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            let mut sorted = samples.clone();
            sorted.sort_by(f64::total_cmp);
            for q in [0.0, 0.5, 0.9, 1.0] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let exact = sorted[rank - 1];
                let got = h.quantile(q);
                // Bucket lower bound: within ~2x/32 relative below, never above exact by more than resolution.
                prop_assert!(got <= exact + 1.0, "q={q} got {got} exact {exact}");
                prop_assert!(got >= exact / 1.05 - 2.0, "q={q} got {got} exact {exact}");
            }
        }

        #[test]
        fn histogram_quantiles_monotone(samples in proptest::collection::vec(0.0f64..1e6, 1..200)) {
            let mut h = Histogram::new();
            for &s in &samples { h.record(s); }
            let qs = [0.0, 0.1, 0.5, 0.9, 0.99, 1.0];
            for w in qs.windows(2) {
                prop_assert!(h.quantile(w[0]) <= h.quantile(w[1]));
            }
        }
    }
}
